"""Schedule-choice strategies.

A strategy answers one question, repeatedly: *given the sorted set of
runnable logical threads at a branching decision point, which one runs
next?*  Everything else — blocking, waking, deadlock detection — is the
scheduler's job, so a run is fully determined by the strategy's answers
(the *choice sequence*), which is what traces record and replays feed back.

* :class:`DefaultStrategy` — run-to-completion: stick with the current
  thread until it blocks, then take the first runnable in sorted order.
  This is the canonical "default schedule" a single (lucky) run explores.
* :class:`RandomStrategy` — seeded uniform sampling, optionally preemption
  bounded; distinct seeds give distinct reproducible schedules.
* :class:`ScriptedStrategy` — replay a recorded choice sequence; after it
  is exhausted (or a choice is infeasible in lenient mode) fall back to the
  default.  Divergences are counted, never raised, so a partially-stale
  trace still produces a verdict.
* :func:`dfs_prefixes` — the driver loop for exhaustive DFS enumeration
  with a preemption bound (iterative-context-bounding style): each executed
  schedule's decision log is expanded into untried sibling prefixes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Decision:
    """One branching scheduling decision (≥ 2 runnable candidates)."""

    index: int
    point: str          # SchedPoint kind plus detail, e.g. "collective:MPI_Bcast@r0"
    current: Optional[str]  # thread that was running (None = forced switch)
    runnable: Tuple[str, ...]  # sorted candidates
    chosen: str

    @property
    def preemptive(self) -> bool:
        """True when the running thread could have continued but was not
        chosen — the context switches that cost against the bound."""
        return (self.current is not None and self.current in self.runnable
                and self.chosen != self.current)


class Strategy:
    name = "base"

    def choose(self, index: int, candidates: Sequence[str],
               current: Optional[str], point: str) -> str:
        raise NotImplementedError


class DefaultStrategy(Strategy):
    """Run-to-completion: never preempt voluntarily."""

    name = "default"

    def choose(self, index, candidates, current, point):
        if current is not None and current in candidates:
            return current
        return candidates[0]


class RandomStrategy(Strategy):
    """Seeded uniform choice, optionally preemption-bounded."""

    name = "random"

    def __init__(self, seed: int = 0, preemption_bound: Optional[int] = None) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.preemption_bound = preemption_bound
        self.preemptions = 0

    def choose(self, index, candidates, current, point):
        voluntary = current is not None and current in candidates
        if (voluntary and self.preemption_bound is not None
                and self.preemptions >= self.preemption_bound):
            return current
        chosen = self.rng.choice(list(candidates))
        if voluntary and chosen != current:
            self.preemptions += 1
        return chosen


class ScriptedStrategy(Strategy):
    """Replay a recorded choice sequence, then fall back to the default."""

    name = "scripted"

    def __init__(self, choices: Sequence[str],
                 fallback: Optional[Strategy] = None) -> None:
        self.choices = list(choices)
        self.fallback = fallback or DefaultStrategy()
        #: Scripted choices that were not runnable when their turn came.
        self.divergences = 0

    def choose(self, index, candidates, current, point):
        if index < len(self.choices):
            want = self.choices[index]
            if want in candidates:
                return want
            self.divergences += 1
        return self.fallback.choose(index, candidates, current, point)


def preemption_counts(decisions: Sequence[Decision]) -> List[int]:
    """``result[i]`` = preemptions spent strictly before decision ``i``."""
    counts, used = [], 0
    for d in decisions:
        counts.append(used)
        if d.preemptive:
            used += 1
    return counts


def dfs_prefixes(
    run_fn: Callable[[List[str]], Sequence[Decision]],
    max_runs: int,
    preemption_bound: int,
) -> Iterator[int]:
    """Systematic DFS over the schedule tree.

    ``run_fn(prefix)`` must execute one run whose first branching decisions
    are forced to ``prefix`` and return the full decision log.  Yields the
    number of runs executed so far after each run.  Each feasible schedule
    (within the preemption bound) is executed at most once: alternatives are
    only expanded at decision indices at or past the forced prefix, so the
    prefix tree *is* the schedule tree.
    """
    stack: List[List[str]] = [[]]
    runs = 0
    while stack and runs < max_runs:
        prefix = stack.pop()
        decisions = run_fn(prefix)
        runs += 1
        yield runs
        spent = preemption_counts(decisions)
        # Reverse order so the deepest alternatives are explored first.
        for i in range(len(decisions) - 1, len(prefix) - 1, -1):
            d = decisions[i]
            for alt in reversed(d.runnable):
                if alt == d.chosen:
                    continue
                cost = spent[i] + (1 if (d.current is not None
                                         and d.current in d.runnable
                                         and alt != d.current) else 0)
                if cost > preemption_bound:
                    continue
                stack.append([dd.chosen for dd in decisions[:i]] + [alt])
