"""Compact JSON schedule traces — record, save, load, replay.

A trace is everything needed to reproduce one scheduled run byte for byte:
the program configuration (ranks, team size, thread level, entry,
instrumented or not) and the choice sequence of every *branching* decision
(points with a single runnable thread are forced and not recorded).  The
verdict block is carried along so a replay can be validated against what
the recorded run reported.

JSON schema (``version`` 2)::

    {
      "version": 2,
      "mode": "full" | "minimized",
      "config": {"nprocs": 2, "num_threads": 2, "thread_level": "multiple",
                 "entry": "main", "instrument": false},
      "strategy": {"name": "random", "seed": 7},
      "verdict": {"line": "DeadlockError[simulator] rank=0 line=12: ...",
                  "class": "DeadlockError", "detected_by": "simulator"},
      "choices": [
        {"i": 0, "p": "start", "u": null, "r": ["r0", "r1"], "c": "r1",
         "f": ["comm/c:MPI_Bcast"], "sf": "9f86d081884c7d65"},
        ...
      ]
    }

``choices[*]``: ``i`` decision index, ``p`` schedule point (kind:detail),
``u`` the thread that was running (``null`` = forced switch), ``r`` the
sorted runnable set, ``c`` the chosen thread.  Version 2 adds the pruning
metadata that dynamic partial-order reduction works from: ``f`` is the
access footprint of the step the chosen thread actually executed after the
decision (canonical sorted ``object/mode`` strings, see
:mod:`repro.explore.footprint`) and ``sf`` is the state fingerprint of the
quiescent state at the decision (present only when the recording scheduler
ran with ``fingerprints=True``).  Only ``c`` is required to replay; the
rest make traces self-describing and drive DFS/DPOR expansion.  Version-1
traces (no ``f``/``sf``) load and replay unchanged.  ``mode: "minimized"``
marks a delta-debugged choice sequence that relies on the deterministic
run-to-completion fallback once exhausted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..mpi.thread_levels import ThreadLevel
from ..runtime.simmpi.world import RunResult
from .footprint import footprint_to_list
from .strategies import Decision

TRACE_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def verdict_line(result: RunResult) -> str:
    """Canonical one-line verdict used for byte-for-byte comparisons."""
    if result.error is None:
        return "clean"
    err = result.error
    return (f"{type(err).__name__}[{err.detected_by}] "
            f"rank={err.rank} line={err.line}: {err}")


@dataclass
class ScheduleTrace:
    config: Dict[str, object]
    choices: List[Decision] = field(default_factory=list)
    verdict: str = "clean"
    verdict_class: str = ""
    detected_by: str = ""
    mode: str = "full"
    strategy: Dict[str, object] = field(default_factory=dict)
    #: Per choice: the executed step's footprint (sorted "object/mode"
    #: strings) or None when unknown (v1 traces, truncated runs).
    step_footprints: List[Optional[List[str]]] = field(default_factory=list)
    #: Per choice: quiescent-state fingerprint or None.
    state_fingerprints: List[Optional[str]] = field(default_factory=list)

    @property
    def choice_names(self) -> List[str]:
        return [d.chosen for d in self.choices]

    # -- construction -----------------------------------------------------------

    @classmethod
    def record(cls, scheduler, config: Dict[str, object], result: RunResult,
               strategy_info: Optional[Dict[str, object]] = None,
               mode: str = "full") -> "ScheduleTrace":
        events = getattr(scheduler, "events", [])
        event_index = getattr(scheduler, "decision_event_index", [])
        state_fps = list(getattr(scheduler, "state_fingerprints", []))
        footprints: List[Optional[List[str]]] = []
        for i in range(len(scheduler.decisions)):
            ei = event_index[i] if i < len(event_index) else None
            if ei is not None and ei < len(events):
                footprints.append(footprint_to_list(events[ei][1]))
            else:
                footprints.append(None)
        state_fps += [None] * (len(scheduler.decisions) - len(state_fps))
        return cls(
            config=dict(config),
            choices=list(scheduler.decisions),
            verdict=verdict_line(result),
            verdict_class=type(result.error).__name__ if result.error else "",
            detected_by=result.detected_by,
            mode=mode,
            strategy=dict(strategy_info or {}),
            step_footprints=footprints,
            state_fingerprints=state_fps,
        )

    # -- (de)serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        choices = []
        for i, d in enumerate(self.choices):
            entry = {"i": d.index, "p": d.point, "u": d.current,
                     "r": list(d.runnable), "c": d.chosen}
            fp = (self.step_footprints[i]
                  if i < len(self.step_footprints) else None)
            if fp is not None:
                entry["f"] = list(fp)
            sf = (self.state_fingerprints[i]
                  if i < len(self.state_fingerprints) else None)
            if sf is not None:
                entry["sf"] = sf
            choices.append(entry)
        return {
            "version": TRACE_VERSION,
            "mode": self.mode,
            "config": self.config,
            "strategy": self.strategy,
            "verdict": {
                "line": self.verdict,
                "class": self.verdict_class,
                "detected_by": self.detected_by,
            },
            "choices": choices,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleTrace":
        version = data.get("version", TRACE_VERSION)
        if version not in _READABLE_VERSIONS:
            raise ValueError(f"unsupported trace version {version}")
        verdict = data.get("verdict", {})
        raw_choices = data.get("choices", [])
        choices = [
            Decision(
                index=c.get("i", i),
                point=c.get("p", ""),
                current=c.get("u"),
                runnable=tuple(c.get("r", ())),
                chosen=c["c"],
            )
            for i, c in enumerate(raw_choices)
        ]
        return cls(
            config=dict(data.get("config", {})),
            choices=choices,
            verdict=verdict.get("line", "clean"),
            verdict_class=verdict.get("class", ""),
            detected_by=verdict.get("detected_by", ""),
            mode=data.get("mode", "full"),
            strategy=dict(data.get("strategy", {})),
            step_footprints=[c.get("f") for c in raw_choices],
            state_fingerprints=[c.get("sf") for c in raw_choices],
        )

    @classmethod
    def from_json(cls, text: str) -> "ScheduleTrace":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ScheduleTrace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- config helpers ---------------------------------------------------------

    def thread_level(self) -> ThreadLevel:
        name = str(self.config.get("thread_level", "multiple")).upper()
        return ThreadLevel[name]
