"""The cooperative scheduler — deterministic execution of the simulator.

Installed as an :class:`~repro.runtime.schedpoint.ExecutionHooks` on an
:class:`~repro.runtime.simmpi.world.MpiWorld`, it serializes every logical
thread of the run (rank main threads and all OpenMP team workers) onto a
single token: exactly one thread executes at a time, and control changes
hands only at SchedPoint hooks — entering a collective/recv/send, claiming
a ``single``, team barriers, check enters, blocking waits, thread exits.
A run is therefore *fully determined* by the sequence of answers the
installed :class:`~repro.explore.strategies.Strategy` gives at branching
decisions, which the scheduler records for trace replay.

Logical threads get deterministic hierarchical names: rank main threads are
``r0, r1, ...``; the ``tid``-th worker of the ``k``-th team spawned by
parent ``P`` is ``P/k.t``.  Candidate sets are always sorted, so equal
choice sequences reproduce equal runs bit for bit.

Time is virtual — one tick per scheduling operation — and deadlock
detection is structural: the moment a decision finds no runnable thread
while some are blocked, the run aborts *immediately* with the full wait-for
state (every blocked thread's self-description), with no wall-clock
timeout involved.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from ..runtime.errors import DeadlockError
from ..runtime.schedpoint import ExecutionHooks, SchedPoint
from .strategies import Decision, DefaultStrategy, Strategy

_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"


class _Logical:
    __slots__ = ("name", "state", "sem", "cond", "predicate", "describe")

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = _READY
        self.sem = threading.Semaphore(0)
        self.cond: Optional[threading.Condition] = None
        self.predicate: Optional[Callable[[], bool]] = None
        self.describe = ""


class ScheduleStall(RuntimeError):
    """A spawned logical thread never attached (scheduler wiring bug)."""


class Scheduler(ExecutionHooks):
    """One run's cooperative schedule: strategy in, decision log out."""

    cooperative = True

    def __init__(self, strategy: Optional[Strategy] = None,
                 wall_guard: float = 120.0) -> None:
        self.strategy = strategy or DefaultStrategy()
        self.wall_guard = wall_guard
        self._lock = threading.RLock()
        self._threads: Dict[str, _Logical] = {}
        self._attach_events: Dict[str, threading.Event] = {}
        self._spawn_counts: Dict[Optional[str], int] = {}
        self._tls = threading.local()
        self._current: Optional[str] = None
        self._started = False
        self._world = None
        self._vtime = 0.0
        #: Branching decisions, in order — the run's schedule trace.
        self.decisions: List[Decision] = []
        #: Wait-for description when structural deadlock was detected.
        self.deadlock_state: Optional[str] = None

    # -- time ----------------------------------------------------------------

    def clock(self) -> float:
        return self._vtime

    def join_timeout(self, timeout: float) -> float:
        return self.wall_guard

    # -- logical-thread lifecycle -------------------------------------------

    def _me(self) -> Optional[str]:
        return getattr(self._tls, "name", None)

    def _attach_event(self, name: str) -> threading.Event:
        with self._lock:
            return self._attach_events.setdefault(name, threading.Event())

    def child_names(self, size: int) -> List[Optional[str]]:
        parent = self._me()
        with self._lock:
            seq = self._spawn_counts.get(parent, 0)
            self._spawn_counts[parent] = seq + 1
        return [None] + [f"{parent}/{seq}.{tid}" for tid in range(1, size)]

    def attach(self, name: str) -> None:
        lt = _Logical(name)
        with self._lock:
            self._threads[name] = lt
        self._tls.name = name
        self._attach_event(name).set()
        lt.sem.acquire()  # parked until first scheduled

    def await_children(self, names) -> None:
        for name in names:
            if name is None:
                continue
            if not self._attach_event(name).wait(timeout=30.0):
                raise ScheduleStall(f"logical thread {name} never attached")

    def detach(self) -> None:
        me = self._me()
        self._tls.name = None
        with self._lock:
            self._threads.pop(me, None)
            if self._current == me:
                self._current = None
                if self._world is not None:
                    self._schedule_next_locked(self._world, SchedPoint.EXIT, me)

    def start(self, world) -> None:
        with self._lock:
            self._world = world
            self._started = True
            self._schedule_next_locked(world, SchedPoint.START, "")

    def on_abort(self, world) -> None:
        with self._lock:
            for lt in self._threads.values():
                if lt.state == _BLOCKED:
                    lt.state = _READY
                    lt.cond = None
                    lt.predicate = None

    # -- decision points ------------------------------------------------------

    def yield_point(self, world, kind: str, detail: str = "") -> None:
        me = self._me()
        if me is None or not self._started:
            return
        with self._lock:
            lt = self._threads[me]
            candidates = self._ready_locked(include=me)
            chosen = self._choose_locked(kind, detail, me, candidates)
            if chosen == me:
                self._vtime += 1
                return
            lt.state = _READY
            self._grant_locked(chosen)
        lt.sem.acquire()

    def wait(self, world, cond, describe="", predicate=None):
        me = self._me()
        if me is None:  # not a scheduled thread (defensive): threaded wait
            cond.wait(0.05)
            return
        lt = self._threads[me]
        with self._lock:
            if world.aborted.is_set():
                return  # caller's loop re-checks the abort flag first
            lt.state = _BLOCKED
            lt.cond = cond
            lt.predicate = predicate
            lt.describe = describe or me
        # Fully release the caller-held condition while parked, exactly like
        # Condition.wait does, so the thread we hand the token to can enter.
        saved = cond._release_save()
        try:
            with self._lock:
                # Hand the token over (may wake us straight back up if the
                # handoff detects a structural deadlock and aborts).
                self._schedule_next_locked(world, SchedPoint.BLOCK, describe)
            lt.sem.acquire()
        finally:
            cond._acquire_restore(saved)

    def notify(self, world, cond):
        with self._lock:
            for name in sorted(self._threads):
                lt = self._threads[name]
                if lt.state == _BLOCKED and lt.cond is cond:
                    if lt.predicate is None or lt.predicate():
                        lt.state = _READY
                        lt.cond = None
                        lt.predicate = None

    # -- internals -------------------------------------------------------------

    def _ready_locked(self, include: Optional[str] = None) -> List[str]:
        names = [n for n, lt in self._threads.items()
                 if lt.state == _READY or n == include]
        return sorted(names)

    def _choose_locked(self, kind: str, detail: str, current: Optional[str],
                       candidates: List[str]) -> str:
        point = f"{kind}:{detail}" if detail else kind
        if len(candidates) == 1:
            return candidates[0]
        index = len(self.decisions)
        chosen = self.strategy.choose(index, candidates, current, point)
        if chosen not in candidates:
            chosen = candidates[0]
        self.decisions.append(Decision(index, point, current,
                                       tuple(candidates), chosen))
        return chosen

    def _grant_locked(self, name: str) -> None:
        lt = self._threads[name]
        lt.state = _RUNNING
        self._current = name
        self._vtime += 1
        lt.sem.release()

    def _schedule_next_locked(self, world, kind: str, detail: str) -> None:
        self._current = None
        ready = self._ready_locked()
        if not ready:
            blocked = sorted(n for n, lt in self._threads.items()
                             if lt.state == _BLOCKED)
            if not blocked:
                return  # every logical thread has exited: the run is over
            if not world.aborted.is_set():
                state = "; ".join(self._threads[n].describe or n
                                  for n in blocked)
                self.deadlock_state = state
                world.abort(DeadlockError(
                    f"deadlock: every logical thread is blocked — {state}"
                ))  # on_abort marked them ready so they can unwind
            else:
                self.on_abort(world)
            ready = self._ready_locked()
            if not ready:
                return
        chosen = self._choose_locked(kind, detail, None, ready)
        self._grant_locked(chosen)
