"""The cooperative scheduler — deterministic execution of the simulator.

Installed as an :class:`~repro.runtime.schedpoint.ExecutionHooks` on an
:class:`~repro.runtime.simmpi.world.MpiWorld`, it serializes every logical
thread of the run (rank main threads and all OpenMP team workers) onto a
single token: exactly one thread executes at a time, and control changes
hands only at SchedPoint hooks — entering a collective/recv/send, claiming
a ``single``, team barriers, check enters, blocking waits, thread exits.
A run is therefore *fully determined* by the sequence of answers the
installed :class:`~repro.explore.strategies.Strategy` gives at branching
decisions, which the scheduler records for trace replay.

Logical threads get deterministic hierarchical names: rank main threads are
``r0, r1, ...``; the ``tid``-th worker of the ``k``-th team spawned by
parent ``P`` is ``P/k.t``.  Candidate sets are always sorted, so equal
choice sequences reproduce equal runs bit for bit.

Beyond the decision log the scheduler also records the run's *event* list
for partial-order reduction: one event per executed segment (everything a
thread does between two parks), carrying the access footprint of the
operation it resumed into (see :mod:`repro.explore.footprint`) unioned with
every shared-state access the runtime reported via :meth:`note_access`
while the segment ran.  ``decision_event_index[i]`` maps decision ``i`` to
the index of the first event executed after it, so
``events[decision_event_index[i]]`` is exactly the step taken by the chosen
thread.  With ``fingerprints=True`` each branching decision additionally
hashes the quiescent global state (thread positions + observation hashes,
mailbox contents, collective-round state, shared cells) so drivers can
prune revisited states.

Time is virtual — one tick per scheduling operation — and deadlock
detection is structural: the moment a decision finds no runnable thread
while some are blocked, the run aborts *immediately* with the full wait-for
state (every blocked thread's self-description), with no wall-clock
timeout involved.
"""

from __future__ import annotations

import hashlib
import threading
import zlib
from bisect import bisect_left, insort
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..runtime.errors import DeadlockError
from ..runtime.schedpoint import ExecutionHooks, SchedPoint
from ..util.brepr import bounded_repr
from .footprint import Footprint, footprint_to_list, point_footprint
from .strategies import Decision, DefaultStrategy, Strategy

_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"

_EMPTY_FP: Footprint = frozenset()


class _Logical:
    __slots__ = ("name", "state", "sem", "cond", "predicate", "describe",
                 "pending_fp", "accesses", "obs")

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = _READY
        self.sem = threading.Semaphore(0)
        self.cond: Optional[threading.Condition] = None
        self.predicate: Optional[Callable[[], bool]] = None
        self.describe = ""
        #: Base footprint of the operation the next segment resumes into.
        self.pending_fp: Footprint = _EMPTY_FP
        #: Shared-state accesses reported while the current segment runs.
        self.accesses: Set[Tuple[str, str]] = set()
        #: Rolling hash of everything this thread has observed (shared
        #: reads, collective/recv results, claim outcomes) — a sound proxy
        #: for its local state, since thread locals are a deterministic
        #: function of the observation sequence.
        self.obs = 0


class ScheduleStall(RuntimeError):
    """A spawned logical thread never attached (scheduler wiring bug)."""


class Scheduler(ExecutionHooks):
    """One run's cooperative schedule: strategy in, decision log out."""

    cooperative = True

    def __init__(self, strategy: Optional[Strategy] = None,
                 wall_guard: float = 120.0,
                 fingerprints: bool = False) -> None:
        self.strategy = strategy or DefaultStrategy()
        self.wall_guard = wall_guard
        self.fingerprints = fingerprints
        self._lock = threading.RLock()
        self._threads: Dict[str, _Logical] = {}
        self._ready_list: List[str] = []  # sorted; maintained incrementally
        self._attach_events: Dict[str, threading.Event] = {}
        self._spawn_counts: Dict[Optional[str], int] = {}
        self._tls = threading.local()
        self._current: Optional[str] = None
        self._started = False
        self._world = None
        self._vtime = 0.0
        #: Branching decisions, in order — the run's schedule trace.
        self.decisions: List[Decision] = []
        #: Executed segments, in order: ``(thread, footprint)``.
        self.events: List[Tuple[str, Footprint]] = []
        #: ``decision_event_index[i]`` = index into :attr:`events` of the
        #: first event executed after decision ``i``.
        self.decision_event_index: List[int] = []
        #: Per-decision state fingerprint (None unless ``fingerprints``).
        self.state_fingerprints: List[Optional[str]] = []
        #: Decision count at the moment the run aborted, if it did —
        #: decisions past this index only reorder the unwinding.
        self.abort_decision: Optional[int] = None
        #: Wait-for description when structural deadlock was detected.
        self.deadlock_state: Optional[str] = None

    # -- time ----------------------------------------------------------------

    def clock(self) -> float:
        return self._vtime

    def join_timeout(self, timeout: float) -> float:
        return self.wall_guard

    # -- logical-thread lifecycle -------------------------------------------

    def _me(self) -> Optional[str]:
        return getattr(self._tls, "name", None)

    def _attach_event(self, name: str) -> threading.Event:
        with self._lock:
            return self._attach_events.setdefault(name, threading.Event())

    def child_names(self, size: int) -> List[Optional[str]]:
        parent = self._me()
        with self._lock:
            seq = self._spawn_counts.get(parent, 0)
            self._spawn_counts[parent] = seq + 1
        return [None] + [f"{parent}/{seq}.{tid}" for tid in range(1, size)]

    def attach(self, name: str) -> None:
        lt = _Logical(name)
        with self._lock:
            self._threads[name] = lt
            insort(self._ready_list, name)
        self._tls.name = name
        self._attach_event(name).set()
        lt.sem.acquire()  # parked until first scheduled

    def await_children(self, names) -> None:
        for name in names:
            if name is None:
                continue
            if not self._attach_event(name).wait(timeout=30.0):
                raise ScheduleStall(f"logical thread {name} never attached")

    def detach(self) -> None:
        me = self._me()
        self._tls.name = None
        with self._lock:
            lt = self._threads.pop(me, None)
            if lt is not None:
                if "/" not in me:
                    # A rank main exiting mutates world-level accounting
                    # (finished_ranks, open-round deadlock checks).
                    lt.accesses.add(("procs", "w"))
                self._close_segment_locked(lt, None)
                self._ready_remove_locked(me)
            if self._current == me:
                self._current = None
                if self._world is not None:
                    self._schedule_next_locked(self._world, SchedPoint.EXIT, me)

    def start(self, world) -> None:
        with self._lock:
            self._world = world
            self._started = True
            self._schedule_next_locked(world, SchedPoint.START, "")

    def on_abort(self, world) -> None:
        with self._lock:
            if self.abort_decision is None:
                self.abort_decision = len(self.decisions)
            me = self._me()
            aborter = self._threads.get(me) if me is not None else None
            if aborter is not None:
                # First-writer-wins on the verdict: whichever segment aborts
                # first fixes it, so aborting segments never commute.
                aborter.accesses.add(("abort", "w"))
            for lt in self._threads.values():
                if lt.state == _BLOCKED:
                    lt.cond = None
                    lt.predicate = None
                    self._mark_ready_locked(lt)

    # -- footprint / observation hooks ----------------------------------------

    def note_access(self, obj: str, mode: str = "w") -> None:
        """The running segment touched shared object ``obj`` (mode r/w)."""
        me = self._me()
        if me is None:
            return
        lt = self._threads.get(me)
        if lt is not None:
            lt.accesses.add((obj, mode))

    def note_observation(self, value: object) -> None:
        """The running thread observed ``value`` (shared read, collective or
        recv result, claim outcome) — folds into its local-state hash."""
        me = self._me()
        if me is None:
            return
        lt = self._threads.get(me)
        if lt is not None:
            # bounded_repr: a fuzzed ``x = x * x`` loop mints ints past
            # CPython's 4300-digit str limit; plain repr would kill the
            # rank thread mid-observation (found by the fuzz campaign).
            lt.obs = zlib.crc32(
                bounded_repr(value).encode("utf-8", "replace"), lt.obs)

    # -- decision points ------------------------------------------------------

    def yield_point(self, world, kind: str, detail: str = "") -> None:
        me = self._me()
        if me is None or not self._started:
            return
        point = f"{kind}:{detail}" if detail else kind
        with self._lock:
            lt = self._threads[me]
            # The yield ends the current segment; the next one (whoever runs
            # it first) begins by executing this point's operation.
            self._close_segment_locked(lt, point_footprint(point))
            candidates = self._ready_locked(include=me)
            chosen = self._choose_locked(kind, detail, me, candidates, world)
            if chosen == me:
                self._vtime += 1
                return
            self._mark_ready_locked(lt)
            self._grant_locked(chosen)
        lt.sem.acquire()

    def wait(self, world, cond, describe="", predicate=None):
        me = self._me()
        if me is None:  # not a scheduled thread (defensive): threaded wait
            cond.wait(0.05)
            return
        lt = self._threads[me]
        with self._lock:
            if world.aborted.is_set():
                return  # caller's loop re-checks the abort flag first
            lt.state = _BLOCKED
            lt.cond = cond
            lt.predicate = predicate
            lt.describe = describe or me
            # Park ends the segment; keep pending_fp — on wake the thread
            # resumes *inside* the same logical operation (e.g. the recv
            # loop re-checking and popping the queue).
            self._close_segment_locked(lt, None)
        # Fully release the caller-held condition while parked, exactly like
        # Condition.wait does, so the thread we hand the token to can enter.
        saved = cond._release_save()
        try:
            with self._lock:
                # Hand the token over (may wake us straight back up if the
                # handoff detects a structural deadlock and aborts).
                self._schedule_next_locked(world, SchedPoint.BLOCK, describe)
            lt.sem.acquire()
        finally:
            cond._acquire_restore(saved)

    def notify(self, world, cond):
        with self._lock:
            for name in sorted(self._threads):
                lt = self._threads[name]
                if lt.state == _BLOCKED and lt.cond is cond:
                    if lt.predicate is None or lt.predicate():
                        lt.cond = None
                        lt.predicate = None
                        self._mark_ready_locked(lt)

    # -- internals -------------------------------------------------------------

    def _close_segment_locked(self, lt: _Logical,
                              next_fp: Optional[Footprint]) -> None:
        fp = lt.pending_fp
        if lt.accesses:
            fp = fp | frozenset(lt.accesses)
            lt.accesses.clear()
        self.events.append((lt.name, fp))
        if next_fp is not None:
            lt.pending_fp = next_fp

    def _mark_ready_locked(self, lt: _Logical) -> None:
        if lt.state != _READY:
            lt.state = _READY
            insort(self._ready_list, lt.name)

    def _ready_remove_locked(self, name: str) -> None:
        i = bisect_left(self._ready_list, name)
        if i < len(self._ready_list) and self._ready_list[i] == name:
            self._ready_list.pop(i)

    def _ready_locked(self, include: Optional[str] = None) -> List[str]:
        names = list(self._ready_list)
        if include is not None:
            i = bisect_left(names, include)
            if i >= len(names) or names[i] != include:
                names.insert(i, include)
        return names

    def _choose_locked(self, kind: str, detail: str, current: Optional[str],
                       candidates: List[str], world=None) -> str:
        point = f"{kind}:{detail}" if detail else kind
        if len(candidates) == 1:
            return candidates[0]
        index = len(self.decisions)
        chosen = self.strategy.choose(index, candidates, current, point)
        if chosen not in candidates:
            chosen = candidates[0]
        self.decision_event_index.append(len(self.events))
        if self.fingerprints and world is not None:
            self.state_fingerprints.append(self._fingerprint_locked(world))
        else:
            self.state_fingerprints.append(None)
        self.decisions.append(Decision(index, point, current,
                                       tuple(candidates), chosen))
        return chosen

    def _fingerprint_locked(self, world) -> str:
        """Canonical hash of the quiescent state at a branching decision.

        All logical threads are parked here (single token), so the state is
        fully described by: each thread's park position (pending footprint +
        blocked/ready + wait description) and observation hash, plus the
        world's shared state (mailbox queues, collective-round progress,
        shared interpreter cells, finished ranks) as reported by
        ``world.fingerprint_state()``.
        """
        parts = []
        for name in sorted(self._threads):
            lt = self._threads[name]
            parts.append((name, lt.state,
                          lt.describe if lt.state == _BLOCKED else "",
                          lt.obs, footprint_to_list(lt.pending_fp)))
        state = getattr(world, "fingerprint_state", None)
        world_state = state() if state is not None else "?"
        blob = repr((parts, world_state)).encode("utf-8", "replace")
        return hashlib.sha256(blob).hexdigest()[:16]

    def _grant_locked(self, name: str) -> None:
        lt = self._threads[name]
        lt.state = _RUNNING
        self._ready_remove_locked(name)
        self._current = name
        self._vtime += 1
        lt.sem.release()

    def _schedule_next_locked(self, world, kind: str, detail: str) -> None:
        self._current = None
        ready = self._ready_locked()
        if not ready:
            blocked = sorted(n for n, lt in self._threads.items()
                             if lt.state == _BLOCKED)
            if not blocked:
                return  # every logical thread has exited: the run is over
            if not world.aborted.is_set():
                state = "; ".join(self._threads[n].describe or n
                                  for n in blocked)
                self.deadlock_state = state
                world.abort(DeadlockError(
                    f"deadlock: every logical thread is blocked — {state}"
                ))  # on_abort marked them ready so they can unwind
            else:
                self.on_abort(world)
            ready = self._ready_locked()
            if not ready:
                return
        chosen = self._choose_locked(kind, detail, None, ready, world)
        self._grant_locked(chosen)
