"""Greedy schedule-trace minimization (delta debugging the choice sequence).

Given a failing schedule's choice sequence, ``ddmin`` finds a (1-minimal,
budget permitting) subsequence that still reproduces the *same* verdict
line.  Replays run the candidate choices leniently: once the shortened
script is exhausted (or a choice is infeasible in the mutated schedule) the
deterministic run-to-completion fallback takes over, so every candidate
still yields a well-defined run — the verdict comparison decides whether
the reduction kept the bug.

The reduction core itself lives in :mod:`repro.util.ddmin` (it is shared
with the fuzzer's program reducer); this module keeps the historical import
path ``repro.explore.minimize.ddmin`` working.
"""

from __future__ import annotations

from ..util.ddmin import ddmin

__all__ = ["ddmin"]
