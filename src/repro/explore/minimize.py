"""Greedy schedule-trace minimization (delta debugging the choice sequence).

Given a failing schedule's choice sequence, ``ddmin`` finds a (1-minimal,
budget permitting) subsequence that still reproduces the *same* verdict
line.  Replays run the candidate choices leniently: once the shortened
script is exhausted (or a choice is infeasible in the mutated schedule) the
deterministic run-to-completion fallback takes over, so every candidate
still yields a well-defined run — the verdict comparison decides whether
the reduction kept the bug.
"""

from __future__ import annotations

from typing import Callable, List, Sequence


def ddmin(
    failing: Callable[[List[str]], bool],
    choices: Sequence[str],
    budget: int = 200,
) -> List[str]:
    """Classic ddmin over ``choices``; ``failing(candidate)`` replays the
    candidate sequence and reports whether the target verdict reproduced.
    At most ``budget`` replays are spent."""
    spent = 0

    def test(candidate: List[str]) -> bool:
        nonlocal spent
        if spent >= budget:
            return False
        spent += 1
        return failing(candidate)

    current = list(choices)
    if test([]):  # the deterministic default schedule already fails
        return []
    granularity = 2
    while len(current) >= 2 and spent < budget:
        chunk = max(1, len(current) // granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            candidate = current[:start] + current[start + chunk:]
            if candidate and test(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current
