"""Access footprints and the commutativity relation over schedule steps.

A *footprint* describes what one schedule step (a logical thread's segment
of execution between two SchedPoint parks) touches: the mailbox of the rank
it sends to, the communicator it enters a collective on, the team barrier
it arrives at, the ``single`` claim it races for, the critical-section
lock, the per-rank check counters, and every shared interpreter variable it
read or wrote along the way.  Two steps *commute* when executing them in
either order reaches the same state — which is exactly when dynamic
partial-order reduction may prune one of the two orders.

Representation: a ``frozenset`` of ``(object, mode)`` pairs where ``mode``
is

* ``"r"`` — read; two reads of the same object commute;
* ``"w"`` — write; conflicts with every other access of the object;
* ``"c:<tag>"`` — a *symmetric arrival* (collective round entry, team
  barrier arrival): two arrivals with the **same** tag commute (the engine
  state they build is keyed by rank / counted, so order is irrelevant),
  while arrivals with different tags — e.g. ``MPI_Bcast`` racing
  ``MPI_Barrier`` into one round — conflict, because whichever arrives
  second triggers the mismatch;
* object ``"*"`` — wildcard: conflicts with every non-empty footprint
  (used for steps we cannot classify, keeping the reduction sound).

Base footprints are derived purely from the ``kind:detail`` strings of
:class:`~repro.runtime.schedpoint.SchedPoint` hooks; the scheduler unions
in the shared-variable accesses observed at runtime (see
``Scheduler.note_access``).
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, Tuple

from ..runtime.schedpoint import SchedPoint

#: One access: ``(object label, mode)``.
Access = Tuple[str, str]
Footprint = FrozenSet[Access]

EMPTY: Footprint = frozenset()
#: Conservative fallback: conflicts with everything.
WILDCARD: Footprint = frozenset({("*", "w")})

_CLAIM_RE = re.compile(r"^(r\d+)t\d+(u\d+)$")


def point_footprint(point: str) -> Footprint:
    """Base footprint of one SchedPoint, from its ``kind:detail`` string."""
    kind, _, detail = point.partition(":")
    if kind == SchedPoint.COLLECTIVE:
        # "MPI_Bcast@r0" — one communicator object; same-op arrivals are
        # symmetric (rank-keyed), different ops racing into a round are not.
        op = detail.split("@", 1)[0]
        return frozenset({("comm", f"c:{op}")})
    if kind == SchedPoint.SEND:
        # "r0->r1" — the destination queue is the shared object.
        dest = detail.split("->", 1)[-1]
        return frozenset({(f"mbox:{dest}", "w")})
    if kind == SchedPoint.RECV:
        # "r1<-0" — receives mutate the destination queue.
        dest = detail.split("<-", 1)[0]
        return frozenset({(f"mbox:{dest}", "w")})
    if kind == SchedPoint.OMP_BARRIER:
        # "r0" — barrier arrivals of one rank's teams are symmetric.
        return frozenset({(f"bar:{detail}", "c:arrive")})
    if kind == SchedPoint.CLAIM:
        # "r0t1u5" — the (rank, construct) claim: first arrival wins, so
        # order matters; the tid is the contender, not the object.
        match = _CLAIM_RE.match(detail)
        if match:
            return frozenset({(f"claim:{match.group(1)}{match.group(2)}", "w")})
        return WILDCARD
    if kind == SchedPoint.CRITICAL:
        # "r0:name" — per-process named lock.
        return frozenset({(f"crit:{detail}", "w")})
    if kind == SchedPoint.CHECK:
        # "enter:r0:<what>" / "exit:r0:<group>" — the rank's concurrency
        # counters; whichever thread enters second raises, so order matters.
        parts = detail.split(":")
        if len(parts) >= 2 and parts[1].startswith("r"):
            return frozenset({(f"check:{parts[1]}", "w")})
        return WILDCARD
    if kind == SchedPoint.START:
        return EMPTY
    # BLOCK / JOIN / EXIT / unknown kinds: unclassified — stay conservative.
    return WILDCARD


def conflicts(a: Footprint, b: Footprint) -> bool:
    """True when the two steps do **not** commute."""
    if not a or not b:
        return False
    by_obj = {}
    for obj, mode in b:
        if obj == "*":
            return True
        by_obj.setdefault(obj, []).append(mode)
    for obj, mode in a:
        if obj == "*":
            return True
        for other in by_obj.get(obj, ()):
            if mode == "r" and other == "r":
                continue
            if mode.startswith("c:") and mode == other:
                continue
            return True
    return False


def footprint_to_list(fp: Footprint) -> list:
    """Canonical JSON form: sorted ``"object/mode"`` strings."""
    return sorted(f"{obj}/{mode}" for obj, mode in fp)


def footprint_from_list(items: Iterable[str]) -> Footprint:
    return frozenset(tuple(item.rsplit("/", 1)) for item in items)
