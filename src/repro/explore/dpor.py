"""Dynamic partial-order reduction over recorded schedule trees.

:func:`~repro.explore.strategies.dfs_prefixes` expands *every* untried
sibling at every branching decision — most of which are commutative
permutations of independent steps that provably reach the same state.
:class:`DporStrategy` replaces that blind expansion with three classic
prunings driven by the scheduler's recorded event footprints
(:mod:`repro.explore.footprint`):

* **race reversal** (Flanagan/Godefroid backtrack sets): after each run,
  every pair of conflicting steps by different threads is a detected race;
  the decision that scheduled the *earlier* step gets a backtrack entry for
  the *later* step's thread (or, when that thread is not schedulable there,
  conservatively for every alternative).  Only backtrack entries are
  explored — an alternative no race asks for commutes into a schedule the
  sweep already has;
* **sleep sets**: after exploring choice ``c`` at a node, ``c`` is put to
  sleep in every sibling subtree and stays asleep until some executed step
  conflicts with its next step — schedules that begin with a sleeping
  thread are permutations of already-explored ones;
* **state fingerprinting** (optional): when the scheduler hashes the
  quiescent state at every decision, a node whose fingerprint was already
  visited with a sleep set no larger than the current one is not expanded
  at all — its subtree was explored from the earlier visit.

The driver enumerates prefixes in FIFO (breadth-first) wave order and all
pruning state lives in the driver, so executing a wave's runs on worker
processes (``explore --jobs N``) yields *byte-identical* results to the
serial sweep: expansion order, run order and counts never depend on how
many workers raced through a wave.

Aborted runs stop expanding at the abort decision: once the verdict is
fixed (first abort wins), later decisions only reorder the unwinding.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .footprint import Footprint, conflicts
from .strategies import Decision, preemption_counts


@dataclass
class RunRecord:
    """Everything DPOR needs from one executed run (picklable)."""

    decisions: List[Decision]
    events: List[Tuple[str, Footprint]]
    event_index: List[int]          # per decision: first event after it
    fingerprints: List[Optional[str]]
    abort_decision: Optional[int]

    @classmethod
    def from_scheduler(cls, scheduler) -> "RunRecord":
        return cls(
            decisions=list(scheduler.decisions),
            events=list(scheduler.events),
            event_index=list(scheduler.decision_event_index),
            fingerprints=list(scheduler.state_fingerprints),
            abort_decision=scheduler.abort_decision,
        )


@dataclass
class DporStats:
    """Why the reduced tree is smaller than the raw one."""

    runs: int = 0
    expanded: int = 0           # children actually pushed
    sleep_skips: int = 0        # siblings skipped: thread was asleep
    independent_skips: int = 0  # siblings skipped: no race requires them
    fingerprint_prunes: int = 0  # nodes cut: state already visited
    bound_skips: int = 0        # siblings skipped: preemption bound

    def as_dict(self) -> Dict[str, int]:
        return {
            "runs": self.runs,
            "expanded": self.expanded,
            "sleep_skips": self.sleep_skips,
            "independent_skips": self.independent_skips,
            "fingerprint_prunes": self.fingerprint_prunes,
            "bound_skips": self.bound_skips,
        }


@dataclass
class _Node:
    prefix: Tuple[str, ...]
    sleep: FrozenSet[str] = frozenset()


class DporStrategy:
    """Driver for the reduced enumeration; see the module docstring.

    ``explore(execute_wave, max_runs, wave_size)`` pulls up to ``wave_size``
    pending prefixes per iteration, hands them to ``execute_wave`` (which
    runs each — serially or on a pool — and returns their
    :class:`RunRecord` s *in order*, ``None`` for a run that could not be
    executed), then expands each record in FIFO order.  Yields the run
    count after every wave.
    """

    name = "dpor"

    def __init__(self, preemption_bound: int = 2,
                 use_fingerprints: bool = True) -> None:
        self.preemption_bound = preemption_bound
        self.use_fingerprints = use_fingerprints
        self.stats = DporStats()
        #: fingerprint -> smallest sleep set it was ever expanded with.
        self._visited: Dict[str, FrozenSet[str]] = {}
        #: every prefix ever scheduled — two runs may detect the same race.
        self._pushed: set = {()}

    # -- enumeration ----------------------------------------------------------

    def explore(
        self,
        execute_wave: Callable[[List[List[str]]], Sequence[Optional[RunRecord]]],
        max_runs: int,
        wave_size: int = 1,
    ):
        frontier = deque([_Node(())])
        while frontier and self.stats.runs < max_runs:
            take = min(len(frontier), max(1, wave_size),
                       max_runs - self.stats.runs)
            nodes = [frontier.popleft() for _ in range(take)]
            records = execute_wave([list(n.prefix) for n in nodes])
            for node, record in zip(nodes, records):
                self.stats.runs += 1
                if record is not None:
                    self._expand(node, record, frontier)
            yield self.stats.runs

    # -- expansion ------------------------------------------------------------

    def _expand(self, node: _Node, record: RunRecord, frontier: deque) -> None:
        decisions = record.decisions
        events = record.events
        eb = record.event_index
        start = len(node.prefix)
        limit = len(decisions)
        if record.abort_decision is not None:
            # The verdict is already fixed; deeper decisions only permute
            # the unwinding of the abort.
            limit = min(limit, record.abort_decision)
        choices = [d.chosen for d in decisions]
        spent = preemption_counts(decisions)

        positions: Dict[str, List[int]] = {}
        for k, (thread, _) in enumerate(events):
            positions.setdefault(thread, []).append(k)

        def next_event(thread: str, k: int):
            """Thread's first recorded event at index >= k, or None."""
            idxs = positions.get(thread)
            if idxs:
                j = bisect_left(idxs, k)
                if j < len(idxs):
                    return events[idxs[j]][1], idxs[j]
            return None

        # -- race detection (Flanagan/Godefroid) ------------------------------
        # Every pair of conflicting steps by different threads is a race the
        # sweep must try to reverse: revisit the decision that scheduled the
        # earlier step with the later step's thread instead.  A reordering
        # no race asks for commutes into this very schedule — skip it.
        dec_of_event = {eb[i]: i for i in range(min(limit, len(eb)))}
        backtrack: Dict[int, set] = {}
        for k in range(1, len(events)):
            tk, fpk = events[k]
            if not fpk:
                continue
            for j in range(k):
                tj, fpj = events[j]
                if tj == tk or not fpj or not conflicts(fpj, fpk):
                    continue
                i = dec_of_event.get(j)
                if i is None:
                    continue
                d = decisions[i]
                alts = [a for a in d.runnable if a != d.chosen]
                if not alts:
                    continue
                # The racing thread itself when schedulable there; otherwise
                # conservatively every alternative ("add all enabled").
                targets = [tk] if tk in alts else alts
                backtrack.setdefault(i, set()).update(targets)

        def push(i: int, alt: str, child_sleep) -> None:
            prefix = tuple(choices[:i]) + (alt,)
            if prefix in self._pushed:
                return
            self._pushed.add(prefix)
            frontier.append(_Node(prefix, frozenset(child_sleep)))
            self.stats.expanded += 1

        def cost_ok(i: int, alt: str) -> bool:
            d = decisions[i]
            voluntary = d.current is not None and d.current in d.runnable
            return spent[i] + (1 if voluntary and alt != d.current else 0) \
                <= self.preemption_bound

        # Races whose earlier step sits inside the inherited prefix: the
        # parent could not have seen them (the later step may exist only in
        # this branch), so push them from here; ``_pushed`` dedupes the many
        # runs that re-detect the same race.
        for i in sorted(b for b in backtrack if b < start):
            for alt in sorted(backtrack[i]):
                if cost_ok(i, alt):
                    push(i, alt, set())
                else:
                    self.stats.bound_skips += 1

        sleep = set(node.sleep)

        def advance(k: int) -> None:
            """Executed step ``events[k]`` — wake every sleeper whose next
            step it conflicts with (a sleeper with no recorded next step is
            conservatively woken)."""
            thread, fp = events[k]
            sleep.discard(thread)
            for u in list(sleep):
                info = next_event(u, k)
                if info is None or conflicts(info[0], fp):
                    sleep.discard(u)

        # node.sleep is the sleep set in effect right after the prefix's
        # last forced choice executed its step; advance it over everything
        # that ran since (including non-branching segments).
        q = eb[start - 1] + 1 if start > 0 else 0

        for i in range(start, limit):
            while q < eb[i]:
                advance(q)
                q += 1
            d = decisions[i]

            if self.use_fingerprints:
                fp = record.fingerprints[i] if i < len(record.fingerprints) \
                    else None
                if fp is not None:
                    prev = self._visited.get(fp)
                    here = frozenset(sleep)
                    if prev is not None and prev <= here:
                        # This state was already expanded with at least as
                        # much freedom — the whole subtree is covered.
                        self.stats.fingerprint_prunes += 1
                        return
                    self._visited[fp] = prev & here if prev is not None \
                        else here

            wanted = backtrack.get(i, ())
            pushed_here: List[str] = []
            for alt in d.runnable:
                if alt == d.chosen:
                    continue
                if alt not in wanted:
                    self.stats.independent_skips += 1
                    continue
                if alt in sleep:
                    self.stats.sleep_skips += 1
                    continue
                if not cost_ok(i, alt):
                    self.stats.bound_skips += 1
                    continue
                info = next_event(alt, eb[i])
                child_sleep = set()
                if info is not None:
                    alt_fp = info[0]
                    # Transitions already explored from this node (the run's
                    # own choice plus earlier-pushed siblings) go to sleep in
                    # this child — unless their step conflicts with alt's.
                    for u in sleep | {d.chosen} | set(pushed_here):
                        if u == alt:
                            continue
                        uinfo = next_event(u, eb[i])
                        if uinfo is not None and \
                                not conflicts(uinfo[0], alt_fp):
                            child_sleep.add(u)
                push(i, alt, child_sleep)
                pushed_here.append(alt)
