"""High-level exploration driver: schedules × configurations → verdicts.

``explore_config`` systematically executes one program configuration
(ranks, team size, thread level) under many schedules — exhaustive DFS with
a preemption bound, the partial-order-reduced sweep (``dpor``), or
seeded-random sampling — and aggregates the verdict of every interleaving.
The first failing schedule is delta-debugged into a minimized trace.
``explore_program`` cross-products configurations.  ``replay`` re-executes
a recorded (or minimized) trace and reports whether it reproduced the
recorded verdict byte for byte.

The ``dpor`` strategy accepts ``jobs > 1``: waves of pending prefixes fan
out to a process pool (the same pool/ordered-merge idiom the fuzz campaign
uses) while all pruning state stays in the driver, so the report is
byte-identical to the serial sweep.  ``budget`` caps any strategy's wall
clock; the report is then a clean partial summary with
``budget_exhausted`` set.
"""

from __future__ import annotations

import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..minilang import ast_nodes as A
from ..mpi.thread_levels import ThreadLevel
from ..runtime.run import run_program
from ..runtime.simmpi.world import RunResult
from .dpor import DporStrategy, RunRecord
from .minimize import ddmin
from .sched import Scheduler
from .strategies import (
    DefaultStrategy,
    RandomStrategy,
    ScriptedStrategy,
    dfs_prefixes,
)
from .trace import ScheduleTrace, verdict_line

#: Bounded resampling when random sampling draws an already-seen schedule.
_DEDUPE_RETRIES = 5


@dataclass(frozen=True)
class ExploreConfig:
    """One point of the (nprocs, num_threads, thread_level) cross product."""

    nprocs: int = 2
    num_threads: int = 2
    thread_level: ThreadLevel = ThreadLevel.MULTIPLE
    entry: str = "main"
    instrument: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "nprocs": self.nprocs,
            "num_threads": self.num_threads,
            "thread_level": self.thread_level.name.lower(),
            "entry": self.entry,
            "instrument": self.instrument,
        }

    def describe(self) -> str:
        return (f"np={self.nprocs} nt={self.num_threads} "
                f"level={self.thread_level.name.lower()}")


@dataclass
class ScheduleOutcome:
    """Verdict of one explored interleaving."""

    index: int
    verdict: str            # canonical verdict line
    verdict_class: str      # "" when clean
    detected_by: str
    trace: ScheduleTrace


@dataclass
class ConfigReport:
    """Aggregate over every schedule explored for one configuration."""

    config: ExploreConfig
    strategy: str
    schedules: int = 0
    verdict_counts: Counter = field(default_factory=Counter)
    failures: List[ScheduleOutcome] = field(default_factory=list)
    minimized: Optional[ScheduleTrace] = None
    minimize_replays: int = 0
    #: Random sampling: duplicate schedules that were discarded+resampled.
    duplicates_skipped: int = 0
    #: DPOR pruning counters (see :class:`repro.explore.dpor.DporStats`).
    dpor_stats: Optional[Dict[str, int]] = None
    #: True when a wall-clock ``budget`` cut the sweep short.
    budget_exhausted: bool = False
    #: Full choice-name sequence of every executed schedule, in order —
    #: only populated with ``collect_schedules=True`` (property tests).
    schedule_choices: List[Tuple[str, ...]] = field(default_factory=list)

    @property
    def clean(self) -> int:
        return self.verdict_counts.get("clean", 0)

    @property
    def failed(self) -> int:
        return self.schedules - self.clean

    def summary(self) -> str:
        counts = ", ".join(
            f"{cls} {n}" for cls, n in sorted(self.verdict_counts.items())
            if cls != "clean"
        )
        line = (f"{self.config.describe()} · {self.strategy}: "
                f"{self.schedules} schedules — clean {self.clean}"
                + (f", {counts}" if counts else ""))
        if self.duplicates_skipped:
            line += f" · {self.duplicates_skipped} duplicates resampled"
        if self.budget_exhausted:
            line += " · budget exhausted (partial)"
        if self.dpor_stats:
            s = self.dpor_stats
            line += (f"\n  dpor: pushed {s['expanded']}, skipped "
                     f"{s['independent_skips']} independent + "
                     f"{s['sleep_skips']} sleeping, "
                     f"{s['fingerprint_prunes']} state prunes")
        if self.failures:
            first = self.failures[0]
            line += (f"\n  first failure at schedule #{first.index}: "
                     f"{first.verdict}")
            if self.minimized is not None:
                line += (f"\n  minimized: {len(first.trace.choices)} -> "
                         f"{len(self.minimized.choices)} choices "
                         f"({self.minimize_replays} replays)")
        return line


def _run_with_scheduler(
    program: A.Program,
    config: ExploreConfig,
    strategy,
    group_kinds: Optional[Dict[int, str]],
    strategy_info: Optional[Dict[str, object]],
    mode: str,
    fingerprints: bool,
) -> Tuple[RunResult, ScheduleTrace, Scheduler]:
    scheduler = Scheduler(strategy or DefaultStrategy(),
                          fingerprints=fingerprints)
    result = run_program(
        program,
        nprocs=config.nprocs,
        num_threads=config.num_threads,
        thread_level=config.thread_level,
        group_kinds=group_kinds,
        entry=config.entry,
        scheduler=scheduler,
    )
    trace = ScheduleTrace.record(scheduler, config.as_dict(), result,
                                 strategy_info=strategy_info, mode=mode)
    return result, trace, scheduler


def run_scheduled(
    program: A.Program,
    config: ExploreConfig,
    strategy=None,
    group_kinds: Optional[Dict[int, str]] = None,
    strategy_info: Optional[Dict[str, object]] = None,
    mode: str = "full",
    fingerprints: bool = False,
) -> Tuple[RunResult, ScheduleTrace]:
    """Execute one deterministic scheduled run; return result + its trace."""
    result, trace, _ = _run_with_scheduler(
        program, config, strategy, group_kinds, strategy_info, mode,
        fingerprints)
    return result, trace


def replay(
    program: A.Program,
    trace: ScheduleTrace,
    group_kinds: Optional[Dict[int, str]] = None,
) -> Tuple[RunResult, ScheduleTrace, int]:
    """Re-execute a trace.  Returns ``(result, new_trace, divergences)`` —
    ``divergences`` counts scripted choices that were not runnable when
    their turn came (always 0 when replaying a full trace of a
    deterministic run; minimized traces legitimately rely on the fallback
    only after their shortened script is exhausted)."""
    config = ExploreConfig(
        nprocs=int(trace.config.get("nprocs", 2)),
        num_threads=int(trace.config.get("num_threads", 2)),
        thread_level=trace.thread_level(),
        entry=str(trace.config.get("entry", "main")),
        instrument=bool(trace.config.get("instrument", False)),
    )
    strategy = ScriptedStrategy(trace.choice_names)
    result, new_trace = run_scheduled(
        program, config, strategy, group_kinds,
        strategy_info={"name": "replay", "of": trace.mode}, mode=trace.mode)
    return result, new_trace, strategy.divergences


def _minimize_failure(program, config, group_kinds, outcome: ScheduleOutcome,
                      budget: int) -> Tuple[ScheduleTrace, int]:
    """Delta-debug a failing schedule's choice sequence."""
    target = outcome.verdict
    replays = 0

    def failing(candidate: List[str]) -> bool:
        nonlocal replays
        replays += 1
        result, _ = run_scheduled(program, config, ScriptedStrategy(candidate),
                                  group_kinds)
        return verdict_line(result) == target

    minimal = ddmin(failing, outcome.trace.choice_names, budget=budget)
    result, trace = run_scheduled(
        program, config, ScriptedStrategy(minimal), group_kinds,
        strategy_info={"name": "minimized", "from_choices":
                       len(outcome.trace.choices)}, mode="minimized")
    replays += 1
    # Keep exactly the choices the minimized schedule actually consumed.
    trace.choices = trace.choices[:len(minimal)]
    trace.step_footprints = trace.step_footprints[:len(minimal)]
    trace.state_fingerprints = trace.state_fingerprints[:len(minimal)]
    return trace, replays


def _dpor_worker(payload) -> Tuple[ScheduleTrace, RunRecord]:
    """Pool entry: execute one forced-prefix run, ship trace + record back."""
    program, config, group_kinds, prefix, preemptions, fingerprints = payload
    _, trace, scheduler = _run_with_scheduler(
        program, config, ScriptedStrategy(prefix), group_kinds,
        {"name": "dpor", "prefix": len(prefix), "preemptions": preemptions},
        "full", fingerprints)
    return trace, RunRecord.from_scheduler(scheduler)


def explore_config(
    program: A.Program,
    config: ExploreConfig,
    strategy: str = "dfs",
    runs: int = 100,
    preemptions: int = 2,
    seed: int = 0,
    group_kinds: Optional[Dict[int, str]] = None,
    minimize: bool = True,
    minimize_budget: int = 150,
    max_failures: int = 25,
    jobs: int = 1,
    budget: Optional[float] = None,
    fingerprints: bool = True,
    collect_schedules: bool = False,
) -> ConfigReport:
    """Explore one configuration's schedule space."""
    report = ConfigReport(config=config, strategy=strategy)
    deadline = time.monotonic() + budget if budget is not None else None

    def out_of_time() -> bool:
        return deadline is not None and time.monotonic() >= deadline

    def note(trace: ScheduleTrace) -> None:
        report.schedules += 1
        if collect_schedules:
            report.schedule_choices.append(tuple(trace.choice_names))
        key = trace.verdict_class or "clean"
        report.verdict_counts[key] += 1
        if trace.verdict != "clean" and len(report.failures) < max_failures:
            report.failures.append(ScheduleOutcome(
                index=report.schedules,
                verdict=trace.verdict,
                verdict_class=trace.verdict_class,
                detected_by=trace.detected_by,
                trace=trace,
            ))

    if strategy == "dfs":
        def run_fn(prefix: List[str]):
            result, trace = run_scheduled(
                program, config, ScriptedStrategy(prefix), group_kinds,
                strategy_info={"name": "dfs", "prefix": len(prefix),
                               "preemptions": preemptions})
            note(trace)
            return trace.choices

        for _ in dfs_prefixes(run_fn, max_runs=runs,
                              preemption_bound=preemptions):
            if out_of_time():
                report.budget_exhausted = True
                break
    elif strategy == "dpor":
        _explore_dpor(program, config, group_kinds, runs, preemptions,
                      jobs, fingerprints, note, out_of_time, report)
    elif strategy == "random":
        seen: set = set()
        for slot in range(runs):
            if out_of_time():
                report.budget_exhausted = True
                break
            trace = None
            for retry in range(_DEDUPE_RETRIES + 1):
                # Resampling perturbs the seed deterministically, far away
                # from the base seed range.
                s = seed + slot + retry * 1_000_003
                _, trace = run_scheduled(
                    program, config,
                    RandomStrategy(seed=s, preemption_bound=preemptions),
                    group_kinds,
                    strategy_info={"name": "random", "seed": s})
                key = tuple(trace.choice_names)
                if key not in seen or not trace.choices:
                    break  # fresh schedule (or the only schedule there is)
                report.duplicates_skipped += 1
                if out_of_time():
                    break
            # Retries exhausted: accept the duplicate so `runs` schedules
            # are always reported.
            seen.add(tuple(trace.choice_names))
            note(trace)
    else:
        raise ValueError(f"unknown strategy {strategy!r} (dfs|dpor|random)")

    if minimize and report.failures:
        report.minimized, report.minimize_replays = _minimize_failure(
            program, config, group_kinds, report.failures[0], minimize_budget)
    return report


def _explore_dpor(program, config, group_kinds, runs, preemptions, jobs,
                  fingerprints, note, out_of_time, report) -> None:
    """DPOR sweep, optionally fanning waves out to a process pool.

    Workers only *execute* runs; every expansion/pruning decision happens
    here, in FIFO wave order, so output is byte-identical for any ``jobs``.
    """
    driver = DporStrategy(preemption_bound=preemptions,
                          use_fingerprints=fingerprints)

    def run_serial(prefix: List[str]) -> Tuple[ScheduleTrace, RunRecord]:
        return _dpor_worker((program, config, group_kinds, prefix,
                             preemptions, fingerprints))

    pool: Optional[ProcessPoolExecutor] = None
    pool_broken = False
    if jobs > 1:
        try:
            pool = ProcessPoolExecutor(max_workers=jobs)
        except OSError:
            pool = None

    def execute_wave(prefixes: List[List[str]]):
        nonlocal pool, pool_broken
        pairs: Optional[List[Tuple[ScheduleTrace, RunRecord]]] = None
        if pool is not None and not pool_broken and len(prefixes) > 1:
            payloads = [(program, config, group_kinds, p, preemptions,
                         fingerprints) for p in prefixes]
            try:
                pairs = list(pool.map(_dpor_worker, payloads))
            except (BrokenProcessPool, OSError):
                pool_broken = True  # sandboxed: finish serially
                pairs = None
        if pairs is None:
            pairs = [run_serial(p) for p in prefixes]
        for trace, _ in pairs:
            note(trace)
        return [record for _, record in pairs]

    try:
        for _ in driver.explore(execute_wave, max_runs=runs,
                                wave_size=max(1, jobs)):
            if out_of_time():
                report.budget_exhausted = True
                break
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
    report.dpor_stats = driver.stats.as_dict()


def explore_program(
    program: A.Program,
    configs: Sequence[ExploreConfig],
    **kwargs,
) -> List[ConfigReport]:
    """Cross-product exploration: one :class:`ConfigReport` per config."""
    return [explore_config(program, config, **kwargs) for config in configs]
