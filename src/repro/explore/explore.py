"""High-level exploration driver: schedules × configurations → verdicts.

``explore_config`` systematically executes one program configuration
(ranks, team size, thread level) under many schedules — exhaustive DFS with
a preemption bound, or seeded-random sampling — and aggregates the verdict
of every interleaving.  The first failing schedule is delta-debugged into a
minimized trace.  ``explore_program`` cross-products configurations.
``replay`` re-executes a recorded (or minimized) trace and reports whether
it reproduced the recorded verdict byte for byte.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..minilang import ast_nodes as A
from ..mpi.thread_levels import ThreadLevel
from ..runtime.run import run_program
from ..runtime.simmpi.world import RunResult
from .minimize import ddmin
from .sched import Scheduler
from .strategies import (
    DefaultStrategy,
    RandomStrategy,
    ScriptedStrategy,
    dfs_prefixes,
)
from .trace import ScheduleTrace, verdict_line


@dataclass(frozen=True)
class ExploreConfig:
    """One point of the (nprocs, num_threads, thread_level) cross product."""

    nprocs: int = 2
    num_threads: int = 2
    thread_level: ThreadLevel = ThreadLevel.MULTIPLE
    entry: str = "main"
    instrument: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "nprocs": self.nprocs,
            "num_threads": self.num_threads,
            "thread_level": self.thread_level.name.lower(),
            "entry": self.entry,
            "instrument": self.instrument,
        }

    def describe(self) -> str:
        return (f"np={self.nprocs} nt={self.num_threads} "
                f"level={self.thread_level.name.lower()}")


@dataclass
class ScheduleOutcome:
    """Verdict of one explored interleaving."""

    index: int
    verdict: str            # canonical verdict line
    verdict_class: str      # "" when clean
    detected_by: str
    trace: ScheduleTrace


@dataclass
class ConfigReport:
    """Aggregate over every schedule explored for one configuration."""

    config: ExploreConfig
    strategy: str
    schedules: int = 0
    verdict_counts: Counter = field(default_factory=Counter)
    failures: List[ScheduleOutcome] = field(default_factory=list)
    minimized: Optional[ScheduleTrace] = None
    minimize_replays: int = 0

    @property
    def clean(self) -> int:
        return self.verdict_counts.get("clean", 0)

    @property
    def failed(self) -> int:
        return self.schedules - self.clean

    def summary(self) -> str:
        counts = ", ".join(
            f"{cls} {n}" for cls, n in sorted(self.verdict_counts.items())
            if cls != "clean"
        )
        line = (f"{self.config.describe()} · {self.strategy}: "
                f"{self.schedules} schedules — clean {self.clean}"
                + (f", {counts}" if counts else ""))
        if self.failures:
            first = self.failures[0]
            line += (f"\n  first failure at schedule #{first.index}: "
                     f"{first.verdict}")
            if self.minimized is not None:
                line += (f"\n  minimized: {len(first.trace.choices)} -> "
                         f"{len(self.minimized.choices)} choices "
                         f"({self.minimize_replays} replays)")
        return line


def run_scheduled(
    program: A.Program,
    config: ExploreConfig,
    strategy=None,
    group_kinds: Optional[Dict[int, str]] = None,
    strategy_info: Optional[Dict[str, object]] = None,
    mode: str = "full",
) -> Tuple[RunResult, ScheduleTrace]:
    """Execute one deterministic scheduled run; return result + its trace."""
    scheduler = Scheduler(strategy or DefaultStrategy())
    result = run_program(
        program,
        nprocs=config.nprocs,
        num_threads=config.num_threads,
        thread_level=config.thread_level,
        group_kinds=group_kinds,
        entry=config.entry,
        scheduler=scheduler,
    )
    trace = ScheduleTrace.record(scheduler, config.as_dict(), result,
                                 strategy_info=strategy_info, mode=mode)
    return result, trace


def replay(
    program: A.Program,
    trace: ScheduleTrace,
    group_kinds: Optional[Dict[int, str]] = None,
) -> Tuple[RunResult, ScheduleTrace, int]:
    """Re-execute a trace.  Returns ``(result, new_trace, divergences)`` —
    ``divergences`` counts scripted choices that were not runnable when
    their turn came (always 0 when replaying a full trace of a
    deterministic run; minimized traces legitimately rely on the fallback
    only after their shortened script is exhausted)."""
    config = ExploreConfig(
        nprocs=int(trace.config.get("nprocs", 2)),
        num_threads=int(trace.config.get("num_threads", 2)),
        thread_level=trace.thread_level(),
        entry=str(trace.config.get("entry", "main")),
        instrument=bool(trace.config.get("instrument", False)),
    )
    strategy = ScriptedStrategy(trace.choice_names)
    result, new_trace = run_scheduled(
        program, config, strategy, group_kinds,
        strategy_info={"name": "replay", "of": trace.mode}, mode=trace.mode)
    return result, new_trace, strategy.divergences


def _minimize_failure(program, config, group_kinds, outcome: ScheduleOutcome,
                      budget: int) -> Tuple[ScheduleTrace, int]:
    """Delta-debug a failing schedule's choice sequence."""
    target = outcome.verdict
    replays = 0

    def failing(candidate: List[str]) -> bool:
        nonlocal replays
        replays += 1
        result, _ = run_scheduled(program, config, ScriptedStrategy(candidate),
                                  group_kinds)
        return verdict_line(result) == target

    minimal = ddmin(failing, outcome.trace.choice_names, budget=budget)
    result, trace = run_scheduled(
        program, config, ScriptedStrategy(minimal), group_kinds,
        strategy_info={"name": "minimized", "from_choices":
                       len(outcome.trace.choices)}, mode="minimized")
    replays += 1
    # Keep exactly the choices the minimized schedule actually consumed.
    trace.choices = trace.choices[:len(minimal)]
    return trace, replays


def explore_config(
    program: A.Program,
    config: ExploreConfig,
    strategy: str = "dfs",
    runs: int = 100,
    preemptions: int = 2,
    seed: int = 0,
    group_kinds: Optional[Dict[int, str]] = None,
    minimize: bool = True,
    minimize_budget: int = 150,
    max_failures: int = 25,
) -> ConfigReport:
    """Explore one configuration's schedule space."""
    report = ConfigReport(config=config, strategy=strategy)

    def note(result: RunResult, trace: ScheduleTrace) -> None:
        report.schedules += 1
        key = trace.verdict_class or "clean"
        report.verdict_counts[key] += 1
        if result.error is not None and len(report.failures) < max_failures:
            report.failures.append(ScheduleOutcome(
                index=report.schedules,
                verdict=trace.verdict,
                verdict_class=trace.verdict_class,
                detected_by=trace.detected_by,
                trace=trace,
            ))

    if strategy == "dfs":
        def run_fn(prefix: List[str]):
            result, trace = run_scheduled(
                program, config, ScriptedStrategy(prefix), group_kinds,
                strategy_info={"name": "dfs", "prefix": len(prefix),
                               "preemptions": preemptions})
            note(result, trace)
            return trace.choices

        for _ in dfs_prefixes(run_fn, max_runs=runs,
                              preemption_bound=preemptions):
            pass
    elif strategy == "random":
        for i in range(runs):
            result, trace = run_scheduled(
                program, config,
                RandomStrategy(seed=seed + i, preemption_bound=preemptions),
                group_kinds,
                strategy_info={"name": "random", "seed": seed + i})
            note(result, trace)
    else:
        raise ValueError(f"unknown strategy {strategy!r} (dfs|random)")

    if minimize and report.failures:
        report.minimized, report.minimize_replays = _minimize_failure(
            program, config, group_kinds, report.failures[0], minimize_budget)
    return report


def explore_program(
    program: A.Program,
    configs: Sequence[ExploreConfig],
    **kwargs,
) -> List[ConfigReport]:
    """Cross-product exploration: one :class:`ConfigReport` per config."""
    return [explore_config(program, config, **kwargs) for config in configs]
