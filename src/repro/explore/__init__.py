"""repro.explore — deterministic schedule exploration for the simulator.

The dynamic-side subsystem: a cooperative :class:`Scheduler` serializes
every logical thread of a simulated run onto one token (so a run is fully
determined by its schedule choice sequence), traces record/replay those
choices as compact JSON, and exploration strategies (bounded-preemption
DFS, seeded random sampling) sweep the interleaving space per
``(nprocs, num_threads, thread_level)`` configuration — with greedy
delta-debugging of any failing schedule.  Surfaced as ``parcoach explore``.
"""

from .explore import (
    ConfigReport,
    ExploreConfig,
    ScheduleOutcome,
    explore_config,
    explore_program,
    replay,
    run_scheduled,
)
from .minimize import ddmin
from .sched import Scheduler
from .strategies import (
    Decision,
    DefaultStrategy,
    RandomStrategy,
    ScriptedStrategy,
    Strategy,
    dfs_prefixes,
)
from .trace import ScheduleTrace, verdict_line

__all__ = [
    "ConfigReport",
    "ExploreConfig",
    "ScheduleOutcome",
    "explore_config",
    "explore_program",
    "replay",
    "run_scheduled",
    "ddmin",
    "Scheduler",
    "Decision",
    "DefaultStrategy",
    "RandomStrategy",
    "ScriptedStrategy",
    "Strategy",
    "dfs_prefixes",
    "ScheduleTrace",
    "verdict_line",
]
