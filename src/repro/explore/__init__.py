"""repro.explore — deterministic schedule exploration for the simulator.

The dynamic-side subsystem: a cooperative :class:`Scheduler` serializes
every logical thread of a simulated run onto one token (so a run is fully
determined by its schedule choice sequence), traces record/replay those
choices as compact JSON, and exploration strategies (bounded-preemption
DFS, dynamic partial-order reduction with sleep sets and state
fingerprints, seeded random sampling with duplicate resampling) sweep the
interleaving space per ``(nprocs, num_threads, thread_level)``
configuration — with greedy delta-debugging of any failing schedule.
Surfaced as ``parcoach explore``.
"""

from .dpor import DporStats, DporStrategy, RunRecord
from .explore import (
    ConfigReport,
    ExploreConfig,
    ScheduleOutcome,
    explore_config,
    explore_program,
    replay,
    run_scheduled,
)
from .footprint import conflicts, point_footprint
from .minimize import ddmin
from .sched import Scheduler
from .strategies import (
    Decision,
    DefaultStrategy,
    RandomStrategy,
    ScriptedStrategy,
    Strategy,
    dfs_prefixes,
)
from .trace import ScheduleTrace, verdict_line

__all__ = [
    "ConfigReport",
    "DporStats",
    "DporStrategy",
    "ExploreConfig",
    "RunRecord",
    "ScheduleOutcome",
    "explore_config",
    "explore_program",
    "replay",
    "run_scheduled",
    "conflicts",
    "point_footprint",
    "ddmin",
    "Scheduler",
    "Decision",
    "DefaultStrategy",
    "RandomStrategy",
    "ScriptedStrategy",
    "Strategy",
    "dfs_prefixes",
    "ScheduleTrace",
    "verdict_line",
]
