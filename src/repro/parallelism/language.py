"""Membership tests for the paper's language ``L = (S | P B* S)*``.

``in_language`` is the strict regular language of the paper.  The analysis
uses :func:`is_monothreaded`, which ignores *all* barrier tokens (the paper:
"Bs are ignored as barriers do not influence the level of thread
parallelism") — equivalent to ``L`` on every word the word-builder produces,
but robust to ``B`` tokens appearing after a nested region closes inside a
single region (e.g. ``P S B S``), which are monothreaded contexts too.

Monothreadedness, barriers removed, is: the word is empty or ends with ``S``,
and no two ``P`` are adjacent (adjacent ``P`` = nested parallelism with no
serialization in between: one thread *per team* would execute the node).
"""

from __future__ import annotations

from .word import B, P, S, Word, strip_barriers


def in_language(word: Word) -> bool:
    """Strict DFA for ``(S | P B* S)*``."""
    state = 0  # 0 = accept / between factors; 1 = after P, reading B* then S
    for token in word:
        if state == 0:
            if isinstance(token, S):
                state = 0
            elif isinstance(token, P):
                state = 1
            else:  # B at factor boundary is not in the strict language
                return False
        else:
            if isinstance(token, B):
                state = 1
            elif isinstance(token, S):
                state = 0
            else:  # P after P — nested parallelism
                return False
    return state == 0


def is_monothreaded(word: Word) -> bool:
    """The analysis predicate: word ∈ L up to ignoring barrier tokens."""
    core = strip_barriers(word)
    if not core:
        return True
    if isinstance(core[-1], P):
        return False
    for a, b in zip(core, core[1:]):
        if isinstance(a, P) and isinstance(b, P):
            return False
    return True


def is_multithreaded(word: Word) -> bool:
    return not is_monothreaded(word)
