"""Parallelism words, the language ``L``, and the per-function word computation."""

from .compute import WordInfo, compute_words
from .language import in_language, is_monothreaded, is_multithreaded
from .word import (
    B,
    EMPTY,
    P,
    S,
    Token,
    Word,
    barrier,
    common_prefix,
    count_barriers,
    format_word,
    has_parallel,
    innermost_single,
    parse_word,
    strip_barriers,
)

__all__ = [
    "WordInfo",
    "compute_words",
    "in_language",
    "is_monothreaded",
    "is_multithreaded",
    "B",
    "EMPTY",
    "P",
    "S",
    "Token",
    "Word",
    "barrier",
    "common_prefix",
    "count_barriers",
    "format_word",
    "has_parallel",
    "innermost_single",
    "parse_word",
    "strip_barriers",
]
