"""Computation of parallelism words for every statement of a function.

The paper observes that with a perfectly nested fork/join model the control
flow has no impact on the parallelism word, so the word is computed by a
single structural walk of the AST (the region tree), not by a CFG fixpoint:
sequential control flow (``if``/``while``/``for``) passes the word through,
barriers inside them are appended in traversal order, loop bodies contribute
once.

Results are keyed by AST node uid and can be transferred onto CFG blocks via
the builder's ``ast_block`` map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..minilang import ast_nodes as A
from .word import EMPTY, B, P, S, Word, append, barrier


@dataclass
class WordInfo:
    """Per-function parallelism-word facts.

    Attributes
    ----------
    words:
        AST uid → parallelism word in effect *at* that node.
    enclosing:
        AST uid → tuple of enclosing OpenMP construct uids, outermost first
        (used to locate the ``Sipw`` instrumentation points).
    construct_kinds:
        OpenMP construct uid → kind string
        (``parallel``/``single``/``master``/``section``/``task``/…).
    construct_nodes:
        OpenMP construct uid → the AST node itself.
    """

    words: Dict[int, Word] = field(default_factory=dict)
    enclosing: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    construct_kinds: Dict[int, str] = field(default_factory=dict)
    construct_nodes: Dict[int, A.Node] = field(default_factory=dict)

    def word_of(self, node: A.Node) -> Word:
        return self.words[node.uid]


class _WordWalker:
    def __init__(self, initial: Word) -> None:
        self.word: List = list(initial)
        self.enclosing: List[int] = []
        self.info = WordInfo()

    # -- helpers ------------------------------------------------------------

    def _record(self, node: A.Node) -> None:
        self.info.words[node.uid] = tuple(self.word)
        self.info.enclosing[node.uid] = tuple(self.enclosing)

    def _append_barrier(self) -> None:
        """Append ``B`` only when a region is open (top-level joins reset to
        the empty — monothreaded — context)."""
        if self.word:
            self.word.append(barrier())

    def _push(self, token, node: A.Node, kind: str) -> int:
        self.word.append(token)
        self.enclosing.append(node.uid)
        self.info.construct_kinds[node.uid] = kind
        self.info.construct_nodes[node.uid] = node
        return len(self.word) - 1

    def _pop(self, depth: int) -> None:
        del self.word[depth:]
        self.enclosing.pop()

    # -- walk ------------------------------------------------------------------

    def walk_block(self, block: A.Block) -> None:
        self._record(block)
        for stmt in block.stmts:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: A.Stmt) -> None:
        self._record(stmt)

        if isinstance(stmt, A.Block):
            for inner in stmt.stmts:
                self.walk_stmt(inner)
        elif isinstance(stmt, A.If):
            self.walk_block(stmt.then_body)
            if stmt.else_body is not None:
                self.walk_block(stmt.else_body)
        elif isinstance(stmt, A.While):
            self.walk_block(stmt.body)
        elif isinstance(stmt, A.For):
            if stmt.init is not None:
                self._record(stmt.init)
            if stmt.step is not None:
                self._record(stmt.step)
            self.walk_block(stmt.body)
        elif isinstance(stmt, A.OmpParallel):
            depth = self._push(P(stmt.uid), stmt, "parallel")
            self.walk_block(stmt.body)
            self._pop(depth)
            self._append_barrier()  # join barrier of the parallel region
        elif isinstance(stmt, A.OmpSingle):
            depth = self._push(S(stmt.uid, "single"), stmt, "single")
            self.walk_block(stmt.body)
            self._pop(depth)
            if not stmt.nowait:
                self._append_barrier()
        elif isinstance(stmt, A.OmpMaster):
            depth = self._push(S(stmt.uid, "master"), stmt, "master")
            self.walk_block(stmt.body)
            self._pop(depth)
            # master has no implicit barrier
        elif isinstance(stmt, A.OmpCritical):
            # critical serializes but *every* thread executes the body: the
            # level of thread parallelism is unchanged.
            self.info.construct_kinds[stmt.uid] = "critical"
            self.info.construct_nodes[stmt.uid] = stmt
            self.walk_block(stmt.body)
        elif isinstance(stmt, A.OmpTask):
            # Outside the paper's model; conservatively multithreaded.
            depth = self._push(P(stmt.uid), stmt, "task")
            self.walk_block(stmt.body)
            self._pop(depth)
        elif isinstance(stmt, A.OmpBarrier):
            self._append_barrier()
        elif isinstance(stmt, A.OmpFor):
            # Worksharing keeps the multithreaded level; iterations are
            # spread over the team.
            self.info.construct_kinds[stmt.uid] = "for"
            self.info.construct_nodes[stmt.uid] = stmt
            loop = stmt.loop
            self.info.words[loop.uid] = tuple(self.word)
            self.info.enclosing[loop.uid] = tuple(self.enclosing)
            if loop.init is not None:
                self._record(loop.init)
            if loop.step is not None:
                self._record(loop.step)
            self.walk_block(loop.body)
            if not stmt.nowait:
                self._append_barrier()
        elif isinstance(stmt, A.OmpSections):
            self.info.construct_kinds[stmt.uid] = "sections"
            self.info.construct_nodes[stmt.uid] = stmt
            for section in stmt.sections:
                depth = self._push(S(section.uid, "section"), section, "section")
                for inner in section.stmts:
                    self.walk_stmt(inner)
                self._pop(depth)
            if not stmt.nowait:
                self._append_barrier()
        # Simple statements (VarDecl/Assign/ExprStmt/Return/...) carry no
        # sub-structure relevant to the word; _record above suffices.


def compute_words(func: A.FuncDef, initial: Word = EMPTY) -> WordInfo:
    """Parallelism words for all statements of ``func``.

    ``initial`` is the paper's "initial prefix" option: the thread context the
    function is assumed to be called from (empty = monothreaded main context).
    """
    walker = _WordWalker(initial)
    walker.info.words[func.uid] = tuple(initial)
    walker.info.enclosing[func.uid] = ()
    walker.walk_block(func.body)
    return walker.info
