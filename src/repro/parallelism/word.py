"""Parallelism words — the paper's per-node abstraction of thread context.

A word is a tuple of tokens over the alphabet {``P<i>``, ``S<i>``, ``B``}:

* ``P(i)`` — a parallel-creating construct (``parallel``, conservatively
  ``task``), ``i`` the AST uid of the construct;
* ``S(i)`` — a single-threaded construct (``single``, ``master``, one
  ``section`` of a ``sections``), ``i`` the AST uid;
* ``B`` — a thread barrier (explicit ``#pragma omp barrier`` or the implicit
  barrier ending ``single``/``for``/``sections`` without ``nowait`` and the
  join of ``parallel``).

Simplification rule (paper §2): when an OpenMP region ends, its token *and
everything after it* is removed from the word; the implicit barrier of the
region end is then appended **in the enclosing context** (only when some
region is still open — at top level a join leaves the empty word, which is
the monothreaded initial context).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple, Union


@dataclass(frozen=True)
class P:
    """Parallel-construct token."""

    region_id: int

    def __str__(self) -> str:
        return f"P{self.region_id}"


@dataclass(frozen=True)
class S:
    """Single-threaded-construct token; ``kind`` ∈ {single, master, section}."""

    region_id: int
    kind: str = "single"

    def __str__(self) -> str:
        return f"S{self.region_id}"


@dataclass(frozen=True)
class B:
    """Barrier token (all barriers are indistinguishable in the word)."""

    def __str__(self) -> str:
        return "B"


Token = Union[P, S, B]
Word = Tuple[Token, ...]

EMPTY: Word = ()
_B = B()


def barrier() -> B:
    """The (unique) barrier token."""
    return _B


def format_word(word: Word) -> str:
    """Human-readable rendering, e.g. ``"P3 B S7"`` (``"ε"`` when empty)."""
    return " ".join(str(t) for t in word) if word else "ε"


def count_barriers(word: Word) -> int:
    return sum(1 for t in word if isinstance(t, B))


def strip_barriers(word: Word) -> Word:
    """The word with all ``B`` tokens removed (barriers do not change the
    level of thread parallelism, paper §2)."""
    return tuple(t for t in word if not isinstance(t, B))


def has_parallel(word: Word) -> bool:
    return any(isinstance(t, P) for t in word)


def common_prefix(w1: Word, w2: Word) -> Word:
    """Longest common prefix of two words."""
    out = []
    for a, b in zip(w1, w2):
        if a != b:
            break
        out.append(a)
    return tuple(out)


def append(word: Word, token: Token) -> Word:
    return word + (token,)


def pop_region(word: Word, region_token: Token) -> Word:
    """Remove the last occurrence of ``region_token`` and everything after it
    (the paper's end-of-region simplification)."""
    for i in range(len(word) - 1, -1, -1):
        if word[i] == region_token:
            return word[:i]
    raise ValueError(f"token {region_token} not in word {format_word(word)}")


def innermost_single(word: Word) -> Union[S, None]:
    """The last ``S`` token of the word if the word ends with it (ignoring
    trailing barriers), else None."""
    for t in reversed(word):
        if isinstance(t, B):
            continue
        return t if isinstance(t, S) else None
    return None


def parse_word(text: str) -> Word:
    """Parse a compact spec like ``"P1 B S2"`` (used by tests and the CLI's
    ``--initial-context`` option).  ``"ε"`` or ``""`` is the empty word."""
    text = text.strip()
    if text in ("", "ε"):
        return EMPTY
    tokens: list = []
    for part in text.split():
        if part == "B":
            tokens.append(_B)
        elif part[0] in ("P", "p") and part[1:].isdigit():
            tokens.append(P(int(part[1:])))
        elif part[0] in ("S", "s") and part[1:].isdigit():
            tokens.append(S(int(part[1:])))
        elif part in ("P", "p"):
            tokens.append(P(-1))
        elif part in ("S", "s"):
            tokens.append(S(-1))
        else:
            raise ValueError(f"bad parallelism-word token {part!r}")
    return tuple(tokens)
