"""repro — reproduction of *Static/Dynamic Validation of MPI Collective
Communications in Multi-threaded Context* (Saillard, Carribault, Barthou,
PPoPP 2015): the PARCOACH MPI+OpenMP extension, with all substrates built
from scratch (minilang front end, CFG middle end, MPI simulator, OpenMP-like
runtime, interpreter) so the full static + dynamic pipeline runs anywhere.

Typical use::

    from repro import parse_program, analyze_program, instrument_program, run_program

    program = parse_program(source)
    analysis = analyze_program(program)
    print(analysis.diagnostics.render())
    instrumented, report = instrument_program(analysis)
    result = run_program(instrumented, nprocs=4, num_threads=4,
                         group_kinds=analysis.group_kinds)
    print(result.verdict)
"""

from .core import (
    ProgramAnalysis,
    analyze_program,
    analysis_summary,
    instrument_program,
    render_report,
)
from .minilang import FuncBuilder, parse_program, pretty
from .mpi.thread_levels import ThreadLevel
from .runtime import run_program
from .runtime.errors import (
    CollectiveMismatchError,
    ConcurrentCollectiveError,
    DeadlockError,
    ThreadContextError,
    ThreadLevelError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "ProgramAnalysis",
    "analyze_program",
    "analysis_summary",
    "instrument_program",
    "render_report",
    "FuncBuilder",
    "parse_program",
    "pretty",
    "ThreadLevel",
    "run_program",
    "CollectiveMismatchError",
    "ConcurrentCollectiveError",
    "DeadlockError",
    "ThreadContextError",
    "ThreadLevelError",
    "ValidationError",
    "__version__",
]
