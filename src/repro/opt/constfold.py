"""Constant folding and algebraic simplification (AST → AST).

Part of the baseline middle end: the paper's overhead is measured against a
*full* compile, so the pipeline runs a realistic set of optimizations in
every mode.  Folding is pure and position-preserving; it never removes
statements (DCE is a separate concern) but simplifies branch conditions so
downstream passes see ``if (true)``/``if (false)`` explicitly.
"""

from __future__ import annotations

import copy
from typing import Optional, Union

from ..minilang import ast_nodes as A

Number = Union[int, float]


def _is_const(expr: A.Expr) -> bool:
    return isinstance(expr, (A.IntLit, A.FloatLit, A.BoolLit))


def _value(expr: A.Expr):
    return expr.value  # type: ignore[union-attr]


def _make_lit(value, like: A.Expr) -> A.Expr:
    if isinstance(value, bool):
        return A.BoolLit(value=value, line=like.line, col=like.col)
    if isinstance(value, int):
        return A.IntLit(value=value, line=like.line, col=like.col)
    return A.FloatLit(value=float(value), line=like.line, col=like.col)


def fold_expr(expr: A.Expr) -> A.Expr:
    """Return a (possibly) folded copy of ``expr``."""
    if isinstance(expr, A.BinOp):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        if _is_const(left) and _is_const(right):
            folded = _eval_binop(expr.op, _value(left), _value(right))
            if folded is not None:
                return _make_lit(folded, expr)
        simplified = _algebraic(expr.op, left, right, expr)
        if simplified is not None:
            return simplified
        return A.BinOp(op=expr.op, left=left, right=right, line=expr.line, col=expr.col)
    if isinstance(expr, A.UnaryOp):
        operand = fold_expr(expr.operand)
        if _is_const(operand):
            if expr.op == "-":
                return _make_lit(-_value(operand), expr)
            if expr.op == "!":
                return A.BoolLit(value=not _value(operand), line=expr.line, col=expr.col)
        if expr.op == "-" and isinstance(operand, A.UnaryOp) and operand.op == "-":
            return operand.operand  # --x = x
        return A.UnaryOp(op=expr.op, operand=operand, line=expr.line, col=expr.col)
    if isinstance(expr, A.Call):
        return A.Call(
            name=expr.name, args=[fold_expr(a) for a in expr.args],
            line=expr.line, col=expr.col,
        )
    if isinstance(expr, A.ArrayRef):
        return A.ArrayRef(name=expr.name, index=fold_expr(expr.index),
                          line=expr.line, col=expr.col)
    return expr


def _eval_binop(op: str, a, b) -> Optional[Number | bool]:
    try:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                return None  # keep the runtime error behaviour
            if isinstance(a, int) and isinstance(b, int):
                return int(a / b)
            return a / b
        if op == "%":
            if b == 0:
                return None
            if isinstance(a, int) and isinstance(b, int):
                import math
                return int(math.fmod(a, b))
            return None
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        if op == "<":
            return a < b
        if op == ">":
            return a > b
        if op == "<=":
            return a <= b
        if op == ">=":
            return a >= b
        if op == "&&":
            return bool(a) and bool(b)
        if op == "||":
            return bool(a) or bool(b)
    except TypeError:
        return None
    return None


def _algebraic(op: str, left: A.Expr, right: A.Expr, orig: A.BinOp) -> Optional[A.Expr]:
    """Identity simplifications that are safe for int/float alike."""
    def is_zero(e: A.Expr) -> bool:
        return isinstance(e, (A.IntLit, A.FloatLit)) and _value(e) == 0

    def is_one(e: A.Expr) -> bool:
        return isinstance(e, (A.IntLit, A.FloatLit)) and _value(e) == 1

    if op == "+":
        if is_zero(left):
            return right
        if is_zero(right):
            return left
    elif op == "-":
        if is_zero(right):
            return left
    elif op == "*":
        if is_one(left):
            return right
        if is_one(right):
            return left
    elif op == "/":
        if is_one(right):
            return left
    elif op == "&&":
        if isinstance(left, A.BoolLit):
            return right if left.value else A.BoolLit(value=False, line=orig.line, col=orig.col)
    elif op == "||":
        if isinstance(left, A.BoolLit):
            return A.BoolLit(value=True, line=orig.line, col=orig.col) if left.value else right
    return None


class _Folder:
    """Statement-level walker applying :func:`fold_expr` everywhere."""

    def fold_stmt(self, stmt: A.Stmt) -> A.Stmt:
        if isinstance(stmt, A.VarDecl):
            return A.VarDecl(
                type_name=stmt.type_name, name=stmt.name,
                init=fold_expr(stmt.init) if stmt.init is not None else None,
                array_size=fold_expr(stmt.array_size) if stmt.array_size is not None else None,
                line=stmt.line, col=stmt.col,
            )
        if isinstance(stmt, A.Assign):
            return A.Assign(target=fold_expr(stmt.target), op=stmt.op,
                            value=fold_expr(stmt.value), line=stmt.line, col=stmt.col)
        if isinstance(stmt, A.ExprStmt):
            return A.ExprStmt(expr=fold_expr(stmt.expr), line=stmt.line, col=stmt.col)
        if isinstance(stmt, A.Return):
            return A.Return(
                value=fold_expr(stmt.value) if stmt.value is not None else None,
                line=stmt.line, col=stmt.col,
            )
        if isinstance(stmt, A.Block):
            return self.fold_block(stmt)
        if isinstance(stmt, A.If):
            return A.If(cond=fold_expr(stmt.cond),
                        then_body=self.fold_block(stmt.then_body),
                        else_body=self.fold_block(stmt.else_body) if stmt.else_body else None,
                        line=stmt.line, col=stmt.col)
        if isinstance(stmt, A.While):
            return A.While(cond=fold_expr(stmt.cond), body=self.fold_block(stmt.body),
                           line=stmt.line, col=stmt.col)
        if isinstance(stmt, A.For):
            return A.For(
                init=self.fold_stmt(stmt.init) if stmt.init is not None else None,
                cond=fold_expr(stmt.cond) if stmt.cond is not None else None,
                step=self.fold_stmt(stmt.step) if stmt.step is not None else None,
                body=self.fold_block(stmt.body), line=stmt.line, col=stmt.col,
            )
        if isinstance(stmt, A.OmpParallel):
            return A.OmpParallel(
                body=self.fold_block(stmt.body),
                num_threads=fold_expr(stmt.num_threads) if stmt.num_threads is not None else None,
                private=list(stmt.private), shared=list(stmt.shared),
                line=stmt.line, col=stmt.col,
            )
        if isinstance(stmt, A.OmpSingle):
            return A.OmpSingle(body=self.fold_block(stmt.body), nowait=stmt.nowait,
                               line=stmt.line, col=stmt.col)
        if isinstance(stmt, A.OmpMaster):
            return A.OmpMaster(body=self.fold_block(stmt.body), line=stmt.line, col=stmt.col)
        if isinstance(stmt, A.OmpCritical):
            return A.OmpCritical(body=self.fold_block(stmt.body), name=stmt.name,
                                 line=stmt.line, col=stmt.col)
        if isinstance(stmt, A.OmpTask):
            return A.OmpTask(body=self.fold_block(stmt.body), line=stmt.line, col=stmt.col)
        if isinstance(stmt, A.OmpFor):
            folded_loop = self.fold_stmt(stmt.loop)
            assert isinstance(folded_loop, A.For)
            return A.OmpFor(loop=folded_loop, nowait=stmt.nowait, schedule=stmt.schedule,
                            line=stmt.line, col=stmt.col)
        if isinstance(stmt, A.OmpSections):
            return A.OmpSections(sections=[self.fold_block(s) for s in stmt.sections],
                                 nowait=stmt.nowait, line=stmt.line, col=stmt.col)
        return stmt  # Break/Continue/OmpBarrier

    def fold_block(self, block: A.Block) -> A.Block:
        return A.Block(stmts=[self.fold_stmt(s) for s in block.stmts],
                       line=block.line, col=block.col)


def fold_program(program: A.Program) -> A.Program:
    """Constant-fold a whole program (returns a new AST)."""
    folder = _Folder()
    funcs = [
        A.FuncDef(ret_type=f.ret_type, name=f.name, params=list(f.params),
                  body=folder.fold_block(f.body), line=f.line, col=f.col)
        for f in program.funcs
    ]
    return A.Program(funcs=funcs, filename=program.filename,
                     line=program.line, col=program.col)
