"""Baseline middle end: constant folding, dataflow analyses, TAC lowering.

``run_middle_end`` is what the compile pipeline's *base* mode executes —
the work a real compiler does with or without PARCOACH, against which the
verification overhead of Figure 1 is measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..cfg import build_program_cfgs, dominators, natural_loops, post_dominators
from ..minilang import ast_nodes as A
from .availexpr import AvailableExpressions, available_expressions, expr_key
from .constfold import fold_expr, fold_program
from .liveness import LivenessResult, liveness, stmt_use_def
from .tac import Instr, TacFunction, lower_function, lower_program


@dataclass
class MiddleEndResult:
    program: A.Program  # the folded program
    #: CFGs of the *original* program (PARCOACH reuses these, like it reuses
    #: GCC's CFG — the verification pass does not rebuild them).
    cfgs: Dict[str, tuple] = field(default_factory=dict)
    tac: List[TacFunction] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)


def run_middle_end(program: A.Program) -> MiddleEndResult:
    """Build CFGs + dataflow on the original AST, fold, lower to TAC."""
    cfgs = build_program_cfgs(program)
    folded = fold_program(program)
    blocks = 0
    dead_stores = 0
    redundant = 0
    loops = 0
    for name, (cfg, _) in cfgs.items():
        blocks += len(cfg)
        dominators(cfg)
        post_dominators(cfg)
        loops += len(natural_loops(cfg))
        live = liveness(cfg)
        dead_stores += len(live.dead_stores(cfg))
        avail = available_expressions(cfg)
        redundant += len(avail.redundant)
    tac = lower_program(folded)
    return MiddleEndResult(
        program=folded,
        cfgs=cfgs,
        tac=tac,
        stats={
            "functions": len(folded.funcs),
            "blocks": blocks,
            "loops": loops,
            "dead_stores": dead_stores,
            "redundant_exprs": redundant,
            "tac_instrs": sum(f.size for f in tac),
        },
    )


__all__ = [
    "AvailableExpressions",
    "available_expressions",
    "expr_key",
    "fold_expr",
    "fold_program",
    "LivenessResult",
    "liveness",
    "stmt_use_def",
    "Instr",
    "TacFunction",
    "lower_function",
    "lower_program",
    "MiddleEndResult",
    "run_middle_end",
]
