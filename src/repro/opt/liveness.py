"""Backward live-variable dataflow on the CFG.

Classic compiler analysis, part of the baseline middle end: per-block
``use``/``def`` sets, then the fixpoint

    live_out(b) = ∪ live_in(s) over successors s
    live_in(b)  = use(b) ∪ (live_out(b) − def(b))

Results feed the dead-store report and keep the baseline compile honest for
Figure 1's overhead measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..cfg import CFG
from ..minilang import ast_nodes as A


def expr_uses(expr: A.Expr, out: Set[str]) -> None:
    """Variable names read by ``expr``."""
    if isinstance(expr, A.VarRef):
        out.add(expr.name)
    elif isinstance(expr, A.ArrayRef):
        out.add(expr.name)
        expr_uses(expr.index, out)
    elif isinstance(expr, A.BinOp):
        expr_uses(expr.left, out)
        expr_uses(expr.right, out)
    elif isinstance(expr, A.UnaryOp):
        expr_uses(expr.operand, out)
    elif isinstance(expr, A.Call):
        for arg in expr.args:
            expr_uses(arg, out)


def stmt_use_def(stmt: A.Stmt) -> Tuple[Set[str], Set[str]]:
    """(uses, defs) of a simple statement."""
    uses: Set[str] = set()
    defs: Set[str] = set()
    if isinstance(stmt, A.VarDecl):
        if stmt.init is not None:
            expr_uses(stmt.init, uses)
        if stmt.array_size is not None:
            expr_uses(stmt.array_size, uses)
        defs.add(stmt.name)
    elif isinstance(stmt, A.Assign):
        expr_uses(stmt.value, uses)
        if isinstance(stmt.target, A.VarRef):
            if stmt.op != "=":
                uses.add(stmt.target.name)
            defs.add(stmt.target.name)
        elif isinstance(stmt.target, A.ArrayRef):
            # Array element stores read the index and (conservatively) the
            # array itself; the array stays live.
            uses.add(stmt.target.name)
            expr_uses(stmt.target.index, uses)
            defs.add(stmt.target.name)
    elif isinstance(stmt, A.ExprStmt):
        expr_uses(stmt.expr, uses)
        # MPI output buffers are written through their name: conservatively
        # treat the first lvalue-style argument as also defined.
        if isinstance(stmt.expr, A.Call):
            for arg in stmt.expr.args:
                if isinstance(arg, A.VarRef):
                    defs.add(arg.name)
    elif isinstance(stmt, A.Return):
        if stmt.value is not None:
            expr_uses(stmt.value, uses)
    return uses, defs


@dataclass
class LivenessResult:
    live_in: Dict[int, Set[str]] = field(default_factory=dict)
    live_out: Dict[int, Set[str]] = field(default_factory=dict)
    use: Dict[int, Set[str]] = field(default_factory=dict)
    defs: Dict[int, Set[str]] = field(default_factory=dict)
    iterations: int = 0

    def dead_stores(self, cfg: CFG) -> List[Tuple[int, str]]:
        """(block id, variable) pairs where the block defines a variable that
        is not live out and not used later in the same block — a heuristic
        dead-store report (arrays excluded by use/def conservatism)."""
        dead: List[Tuple[int, str]] = []
        for bid, block in cfg.blocks.items():
            live = set(self.live_out.get(bid, set()))
            for stmt in reversed(block.stmts):
                uses, defs = stmt_use_def(stmt)
                for d in defs:
                    if d not in live and isinstance(stmt, (A.Assign, A.VarDecl)):
                        dead.append((bid, d))
                live -= defs
                live |= uses
        return dead


def liveness(cfg: CFG) -> LivenessResult:
    result = LivenessResult()
    # Per-block use/def from the statement lists (branch conditions too).
    for bid, block in cfg.blocks.items():
        use: Set[str] = set()
        defs: Set[str] = set()
        for stmt in block.stmts:
            s_use, s_def = stmt_use_def(stmt)
            use |= s_use - defs
            defs |= s_def
        if block.cond is not None:
            cond_use: Set[str] = set()
            expr_uses(block.cond, cond_use)
            use |= cond_use - defs
        if block.pragma is not None and isinstance(block.pragma, A.OmpParallel):
            if block.pragma.num_threads is not None:
                nt_use: Set[str] = set()
                expr_uses(block.pragma.num_threads, nt_use)
                use |= nt_use - defs
        result.use[bid] = use
        result.defs[bid] = defs
        result.live_in[bid] = set()
        result.live_out[bid] = set()

    order = cfg.reverse_postorder()
    changed = True
    while changed:
        changed = False
        result.iterations += 1
        for bid in reversed(order):
            out: Set[str] = set()
            for succ in cfg.successors(bid):
                out |= result.live_in.get(succ, set())
            new_in = result.use[bid] | (out - result.defs[bid])
            if out != result.live_out[bid] or new_in != result.live_in[bid]:
                result.live_out[bid] = out
                result.live_in[bid] = new_in
                changed = True
    return result
