"""Available-expressions forward dataflow (redundancy analysis).

Second classic middle-end pass of the baseline pipeline: computes, per
block, which pure binary expressions are available on entry, and reports
locally redundant recomputations.  Expressions are keyed by a canonical
string; any expression containing a call is impure and never available;
a definition of a variable kills every expression mentioning it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..cfg import CFG
from ..minilang import ast_nodes as A
from .liveness import stmt_use_def


def expr_key(expr: A.Expr) -> Optional[str]:
    """Canonical key for a pure expression; None when impure/trivial."""
    if isinstance(expr, A.IntLit):
        return str(expr.value)
    if isinstance(expr, A.FloatLit):
        return repr(expr.value)
    if isinstance(expr, A.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, A.VarRef):
        return expr.name
    if isinstance(expr, A.ArrayRef):
        inner = expr_key(expr.index)
        return None if inner is None else f"{expr.name}[{inner}]"
    if isinstance(expr, A.UnaryOp):
        inner = expr_key(expr.operand)
        return None if inner is None else f"({expr.op}{inner})"
    if isinstance(expr, A.BinOp):
        left, right = expr_key(expr.left), expr_key(expr.right)
        if left is None or right is None:
            return None
        if expr.op in ("+", "*", "==", "!=") and right < left:
            left, right = right, left  # commutative canonicalization
        return f"({left}{expr.op}{right})"
    return None  # calls, strings


def _vars_of_key(expr: A.Expr, out: Set[str]) -> None:
    if isinstance(expr, A.VarRef):
        out.add(expr.name)
    elif isinstance(expr, A.ArrayRef):
        out.add(expr.name)
        _vars_of_key(expr.index, out)
    elif isinstance(expr, A.BinOp):
        _vars_of_key(expr.left, out)
        _vars_of_key(expr.right, out)
    elif isinstance(expr, A.UnaryOp):
        _vars_of_key(expr.operand, out)


def _interesting_exprs(stmt: A.Stmt) -> List[A.Expr]:
    """Non-trivial pure subexpressions computed by a simple statement."""
    roots: List[A.Expr] = []
    if isinstance(stmt, A.VarDecl) and stmt.init is not None:
        roots.append(stmt.init)
    elif isinstance(stmt, A.Assign):
        roots.append(stmt.value)
    elif isinstance(stmt, A.ExprStmt):
        roots.append(stmt.expr)
    elif isinstance(stmt, A.Return) and stmt.value is not None:
        roots.append(stmt.value)
    out: List[A.Expr] = []
    stack = list(roots)
    while stack:
        e = stack.pop()
        if isinstance(e, A.BinOp):
            out.append(e)
            stack.extend((e.left, e.right))
        elif isinstance(e, A.UnaryOp):
            stack.append(e.operand)
        elif isinstance(e, A.Call):
            stack.extend(e.args)
        elif isinstance(e, A.ArrayRef):
            stack.append(e.index)
    return out


@dataclass
class AvailableExpressions:
    avail_in: Dict[int, Set[str]] = field(default_factory=dict)
    avail_out: Dict[int, Set[str]] = field(default_factory=dict)
    #: (block id, expression key) recomputed while already available.
    redundant: List[Tuple[int, str]] = field(default_factory=list)
    iterations: int = 0


def available_expressions(cfg: CFG) -> AvailableExpressions:
    result = AvailableExpressions()

    # Per-block gen/kill over canonical keys.
    gen: Dict[int, Set[str]] = {}
    kill_vars: Dict[int, Set[str]] = {}
    universe: Set[str] = set()
    for bid, block in cfg.blocks.items():
        g: Set[str] = set()
        kv: Set[str] = set()
        for stmt in block.stmts:
            for expr in _interesting_exprs(stmt):
                key = expr_key(expr)
                if key is not None:
                    vars_used: Set[str] = set()
                    _vars_of_key(expr, vars_used)
                    if not (vars_used & kv):
                        g.add(key)
                        universe.add(key)
            _, defs = stmt_use_def(stmt)
            kv |= defs
            g = {k for k in g if not _key_mentions(k, defs)}
        gen[bid] = g
        kill_vars[bid] = kv

    for bid in cfg.blocks:
        result.avail_in[bid] = set() if bid == cfg.entry_id else set(universe)
        result.avail_out[bid] = set(universe)

    order = cfg.reverse_postorder()
    changed = True
    while changed:
        changed = False
        result.iterations += 1
        for bid in order:
            preds = cfg.predecessors(bid)
            if bid == cfg.entry_id or not preds:
                new_in: Set[str] = set()
            else:
                new_in = set(universe)
                for p in preds:
                    new_in &= result.avail_out[p]
            survived = {k for k in new_in if not _key_mentions(k, kill_vars[bid])}
            new_out = survived | gen[bid]
            if new_in != result.avail_in[bid] or new_out != result.avail_out[bid]:
                result.avail_in[bid] = new_in
                result.avail_out[bid] = new_out
                changed = True

    # Local redundancy report: expressions generated while already available.
    for bid, block in cfg.blocks.items():
        avail = set(result.avail_in[bid])
        killed: Set[str] = set()
        for stmt in block.stmts:
            for expr in _interesting_exprs(stmt):
                key = expr_key(expr)
                if key is not None and key in avail:
                    result.redundant.append((bid, key))
            for expr in _interesting_exprs(stmt):
                key = expr_key(expr)
                if key is not None and key not in killed:
                    avail.add(key)
            _, defs = stmt_use_def(stmt)
            killed |= defs
            avail = {k for k in avail if not _key_mentions(k, defs)}
    return result


def _key_mentions(key: str, names: Set[str]) -> bool:
    """Whether canonical key ``key`` mentions any of ``names`` (token scan)."""
    if not names:
        return False
    token = []
    for ch in key:
        if ch.isalnum() or ch == "_":
            token.append(ch)
        else:
            if token and "".join(token) in names:
                return True
            token = []
    return bool(token) and "".join(token) in names
