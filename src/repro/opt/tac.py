"""Lowering to three-address code (the pipeline's GIMPLE analogue).

The baseline compile lowers every function to a linear instruction stream —
temporaries for subexpressions, explicit labels and conditional jumps,
marker instructions for OpenMP region boundaries.  Nothing downstream
consumes the TAC yet (the analyses run on the CFG); its role is the same as
GCC's gimplification in the paper's measurement: work the compiler does in
*every* mode, verification or not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..minilang import ast_nodes as A

Operand = Union[str, int, float, bool]


@dataclass
class Instr:
    op: str
    dst: Optional[str] = None
    args: Tuple[Operand, ...] = ()
    label: Optional[str] = None

    def __str__(self) -> str:
        if self.op == "label":
            return f"{self.label}:"
        head = f"  {self.op}"
        if self.dst is not None:
            head += f" {self.dst} <-"
        if self.args:
            head += " " + ", ".join(str(a) for a in self.args)
        if self.label is not None:
            head += f" -> {self.label}"
        return head


@dataclass
class TacFunction:
    name: str
    params: List[str]
    instrs: List[Instr] = field(default_factory=list)

    def __str__(self) -> str:
        body = "\n".join(str(i) for i in self.instrs)
        return f"func {self.name}({', '.join(self.params)}):\n{body}\n"

    @property
    def size(self) -> int:
        return len(self.instrs)


class _Lowerer:
    def __init__(self, func: A.FuncDef) -> None:
        self.func = func
        self.out: List[Instr] = []
        self._temp = 0
        self._label = 0
        self._loop_stack: List[Tuple[str, str]] = []  # (continue, break)

    # -- helpers ------------------------------------------------------------

    def temp(self) -> str:
        self._temp += 1
        return f"%t{self._temp}"

    def label(self, hint: str) -> str:
        self._label += 1
        return f".L{self._label}_{hint}"

    def emit(self, op: str, dst: Optional[str] = None, args: Tuple[Operand, ...] = (),
             label: Optional[str] = None) -> None:
        self.out.append(Instr(op=op, dst=dst, args=args, label=label))

    def place(self, label: str) -> None:
        self.out.append(Instr(op="label", label=label))

    # -- expressions -------------------------------------------------------------

    def lower_expr(self, expr: A.Expr) -> Operand:
        if isinstance(expr, (A.IntLit, A.FloatLit, A.BoolLit)):
            return expr.value
        if isinstance(expr, A.StringLit):
            return f"${expr.value!r}"
        if isinstance(expr, A.VarRef):
            return expr.name
        if isinstance(expr, A.ArrayRef):
            idx = self.lower_expr(expr.index)
            dst = self.temp()
            self.emit("load", dst, (expr.name, idx))
            return dst
        if isinstance(expr, A.UnaryOp):
            val = self.lower_expr(expr.operand)
            dst = self.temp()
            self.emit("neg" if expr.op == "-" else "not", dst, (val,))
            return dst
        if isinstance(expr, A.BinOp):
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            dst = self.temp()
            self.emit(f"bin{expr.op}", dst, (left, right))
            return dst
        if isinstance(expr, A.Call):
            args = tuple(self.lower_expr(a) for a in expr.args)
            dst = self.temp()
            self.emit("call", dst, (expr.name,) + args)
            return dst
        raise TypeError(f"cannot lower {type(expr).__name__}")

    # -- statements -----------------------------------------------------------------

    def lower_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.VarDecl):
            if stmt.array_size is not None:
                size = self.lower_expr(stmt.array_size)
                self.emit("alloca", stmt.name, (size,))
            value: Operand = 0
            if stmt.init is not None:
                value = self.lower_expr(stmt.init)
            self.emit("copy", stmt.name, (value,))
        elif isinstance(stmt, A.Assign):
            value = self.lower_expr(stmt.value)
            if isinstance(stmt.target, A.VarRef):
                if stmt.op == "=":
                    self.emit("copy", stmt.target.name, (value,))
                else:
                    self.emit(f"bin{stmt.op[0]}", stmt.target.name,
                              (stmt.target.name, value))
            else:
                assert isinstance(stmt.target, A.ArrayRef)
                idx = self.lower_expr(stmt.target.index)
                if stmt.op == "=":
                    self.emit("store", None, (stmt.target.name, idx, value))
                else:
                    tmp = self.temp()
                    self.emit("load", tmp, (stmt.target.name, idx))
                    tmp2 = self.temp()
                    self.emit(f"bin{stmt.op[0]}", tmp2, (tmp, value))
                    self.emit("store", None, (stmt.target.name, idx, tmp2))
        elif isinstance(stmt, A.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, A.Block):
            for s in stmt.stmts:
                self.lower_stmt(s)
        elif isinstance(stmt, A.If):
            cond = self.lower_expr(stmt.cond)
            l_else = self.label("else")
            l_end = self.label("endif")
            self.emit("cjump_false", None, (cond,), label=l_else)
            self.lower_stmt(stmt.then_body)
            self.emit("jump", None, (), label=l_end)
            self.place(l_else)
            if stmt.else_body is not None:
                self.lower_stmt(stmt.else_body)
            self.place(l_end)
        elif isinstance(stmt, A.While):
            l_head = self.label("while")
            l_end = self.label("endwhile")
            self.place(l_head)
            cond = self.lower_expr(stmt.cond)
            self.emit("cjump_false", None, (cond,), label=l_end)
            self._loop_stack.append((l_head, l_end))
            self.lower_stmt(stmt.body)
            self._loop_stack.pop()
            self.emit("jump", None, (), label=l_head)
            self.place(l_end)
        elif isinstance(stmt, A.For):
            if stmt.init is not None:
                self.lower_stmt(stmt.init)
            l_head = self.label("for")
            l_step = self.label("step")
            l_end = self.label("endfor")
            self.place(l_head)
            if stmt.cond is not None:
                cond = self.lower_expr(stmt.cond)
                self.emit("cjump_false", None, (cond,), label=l_end)
            self._loop_stack.append((l_step, l_end))
            self.lower_stmt(stmt.body)
            self._loop_stack.pop()
            self.place(l_step)
            if stmt.step is not None:
                self.lower_stmt(stmt.step)
            self.emit("jump", None, (), label=l_head)
            self.place(l_end)
        elif isinstance(stmt, A.Return):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            self.emit("ret", None, (value,) if value is not None else ())
        elif isinstance(stmt, A.Break):
            if self._loop_stack:
                self.emit("jump", None, (), label=self._loop_stack[-1][1])
        elif isinstance(stmt, A.Continue):
            if self._loop_stack:
                self.emit("jump", None, (), label=self._loop_stack[-1][0])
        elif isinstance(stmt, A.OmpBarrier):
            self.emit("omp_barrier")
        elif isinstance(stmt, A.OmpParallel):
            nt: Tuple[Operand, ...] = ()
            if stmt.num_threads is not None:
                nt = (self.lower_expr(stmt.num_threads),)
            self.emit("omp_parallel_begin", None, nt)
            self.lower_stmt(stmt.body)
            self.emit("omp_parallel_end")
        elif isinstance(stmt, A.OmpSingle):
            self.emit("omp_single_begin", None, (int(stmt.nowait),))
            self.lower_stmt(stmt.body)
            self.emit("omp_single_end")
        elif isinstance(stmt, A.OmpMaster):
            self.emit("omp_master_begin")
            self.lower_stmt(stmt.body)
            self.emit("omp_master_end")
        elif isinstance(stmt, A.OmpCritical):
            self.emit("omp_critical_begin", None, (stmt.name,))
            self.lower_stmt(stmt.body)
            self.emit("omp_critical_end")
        elif isinstance(stmt, A.OmpTask):
            self.emit("omp_task_begin")
            self.lower_stmt(stmt.body)
            self.emit("omp_task_end")
        elif isinstance(stmt, A.OmpFor):
            self.emit("omp_for_begin", None, (int(stmt.nowait), stmt.schedule))
            self.lower_stmt(stmt.loop)
            self.emit("omp_for_end")
        elif isinstance(stmt, A.OmpSections):
            self.emit("omp_sections_begin", None, (int(stmt.nowait),))
            for section in stmt.sections:
                self.emit("omp_section_begin")
                self.lower_stmt(section)
                self.emit("omp_section_end")
            self.emit("omp_sections_end")
        else:
            raise TypeError(f"cannot lower {type(stmt).__name__}")

    def lower(self) -> TacFunction:
        for stmt in self.func.body.stmts:
            self.lower_stmt(stmt)
        self.emit("ret")
        return TacFunction(
            name=self.func.name,
            params=[p.name for p in self.func.params],
            instrs=self.out,
        )


def lower_function(func: A.FuncDef) -> TacFunction:
    return _Lowerer(func).lower()


def lower_program(program: A.Program) -> List[TacFunction]:
    return [lower_function(f) for f in program.funcs]
