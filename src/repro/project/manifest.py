"""Project manifests — what ``parcoach project DIR`` analyzes.

A project is a directory.  Its file set comes from, in priority order:

1. an explicit file list (the CLI's ``--file`` flags / library callers);
2. a ``parcoach.toml`` manifest in the directory (stdlib ``tomllib``)::

       [project]
       roots = ["src", "lib"]      # scanned recursively (default: ["."])
       exclude = ["*_gen.mc"]      # fnmatch patterns on relative paths
       entries = ["main"]          # entry functions for context seeding
       initial_context = ""        # parallelism word seeding the entries

       [store]
       enabled = true              # shared on-disk artifact store
       path = ".parcoach/store"    # relative to the project root

3. a bare recursive scan of the directory for ``*.mc`` / ``*.mini``.

File order — and therefore merged-program function order, diagnostic order
and report byte-identity — is the sorted relative path order, regardless of
scan order.
"""

from __future__ import annotations

import fnmatch
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from ..util.faultinject import fault_site

try:  # Python 3.11+ stdlib; gated so older interpreters still import us.
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - py<3.11
    tomllib = None  # type: ignore[assignment]

MANIFEST_NAME = "parcoach.toml"
SOURCE_EXTENSIONS = (".mc", ".mini")
#: Directory names never scanned for sources.
_SKIP_DIRS = {".git", ".parcoach", "__pycache__"}


class ManifestError(Exception):
    """An unreadable or invalid project manifest / file set."""


@dataclass(frozen=True)
class ProjectManifest:
    """The resolved file set and options of one project."""

    root: str
    #: Relative paths in deterministic (sorted) order.
    files: Tuple[str, ...]
    #: Entry functions whose contexts seed propagation ((), use defaults).
    entries: Tuple[str, ...] = ()
    #: Parallelism word (unparsed text) seeding the entry functions.
    initial_context: str = ""
    #: Shared artifact store directory (absolute), None = store disabled.
    store_path: Optional[str] = field(default=None)

    def abspath(self, rel: str) -> str:
        return os.path.join(self.root, rel)


def _scan(root: str, roots: Iterable[str],
          exclude: Tuple[str, ...]) -> List[str]:
    found: List[str] = []
    for sub in roots:
        base = os.path.normpath(os.path.join(root, sub))
        if not os.path.isdir(base):
            raise ManifestError(f"source root {sub!r} is not a directory "
                                f"under {root}")
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for name in filenames:
                if not name.endswith(SOURCE_EXTENSIONS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                if any(fnmatch.fnmatch(rel, pat) for pat in exclude):
                    continue
                found.append(rel)
    return sorted(set(found))


def _read_manifest(path: str) -> dict:
    if tomllib is None:
        raise ManifestError(
            f"{path}: manifest parsing needs Python 3.11+ (tomllib); "
            f"pass an explicit file list instead")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        # Fault site: an injected oserror is an unreadable manifest; an
        # injected truncate hands half a manifest to the TOML parser — both
        # must surface as a ManifestError, never a crash.
        text = fault_site("project.manifest_read", text)
    except OSError as exc:
        raise ManifestError(f"{path}: {exc}") from exc
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ManifestError(f"{path}: invalid TOML: {exc}") from exc


def _str_list(data: dict, table: str, key: str, default: List[str]) -> List[str]:
    value = data.get(key, default)
    if (not isinstance(value, list)
            or any(not isinstance(v, str) for v in value)):
        raise ManifestError(f"[{table}] {key} must be an array of strings")
    return value


def load_manifest(root: str,
                  files: Optional[Iterable[str]] = None) -> ProjectManifest:
    """Resolve the project rooted at ``root`` (see module docstring)."""
    root = os.path.abspath(root)
    if not os.path.isdir(root):
        raise ManifestError(f"project root {root!r} is not a directory")

    entries: Tuple[str, ...] = ()
    initial_context = ""
    store_enabled = True
    store_rel = os.path.join(".parcoach", "store")

    manifest_path = os.path.join(root, MANIFEST_NAME)
    data: dict = {}
    if os.path.isfile(manifest_path):
        data = _read_manifest(manifest_path)
        if not isinstance(data, dict):
            raise ManifestError(f"{manifest_path}: top level must be a table")

    project = data.get("project", {})
    if not isinstance(project, dict):
        raise ManifestError("[project] must be a table")
    entries = tuple(_str_list(project, "project", "entries", []))
    initial_context = project.get("initial_context", "")
    if not isinstance(initial_context, str):
        raise ManifestError("[project] initial_context must be a string")

    store = data.get("store", {})
    if not isinstance(store, dict):
        raise ManifestError("[store] must be a table")
    store_enabled = store.get("enabled", True)
    if not isinstance(store_enabled, bool):
        raise ManifestError("[store] enabled must be a boolean")
    store_rel = store.get("path", store_rel)
    if not isinstance(store_rel, str):
        raise ManifestError("[store] path must be a string")

    if files is not None:
        rels = []
        for f in files:
            rel = os.path.relpath(os.path.abspath(f), root)
            if not os.path.isfile(os.path.join(root, rel)):
                raise ManifestError(f"no such project file: {f}")
            rels.append(rel)
        resolved = sorted(set(rels))
    else:
        roots = _str_list(project, "project", "roots", ["."])
        exclude = tuple(_str_list(project, "project", "exclude", []))
        resolved = _scan(root, roots, exclude)
    if not resolved:
        raise ManifestError(f"no source files ({'/'.join(SOURCE_EXTENSIONS)})"
                            f" under {root}")

    return ProjectManifest(
        root=root, files=tuple(resolved), entries=entries,
        initial_context=initial_context,
        store_path=(os.path.normpath(os.path.join(root, store_rel))
                    if store_enabled else None),
    )


__all__ = ["MANIFEST_NAME", "ManifestError", "ProjectManifest",
           "load_manifest"]
