"""Project-scale analysis service — ``parcoach project``.

Lifts the single-file :class:`~repro.core.session.AnalysisSession` to a
whole project: a manifest (``parcoach.toml`` or an explicit file list)
declares the source files and entry points, a :class:`ProjectSession` folds
every file into **one merged program** fed to one shared
:class:`~repro.core.engine.AnalysisEngine`, so the cross-file call graph,
calling-context propagation and collective summaries fall out of the
existing interprocedural machinery — witness call chains span file
boundaries.  Insert-a-line edits take the **line-offset patch** path
(:meth:`~repro.core.engine.AnalysisEngine.patch_function_lines`): cached
line-addressed artifacts are shifted instead of re-analyzed.  Artifacts are
shared between parallel sessions through a sharded on-disk store
(:class:`~repro.project.store.ShardedStore`).  Protocol and manifest
format: ``docs/project-protocol.md``.
"""

from .manifest import MANIFEST_NAME, ManifestError, ProjectManifest, load_manifest
from .session import ProjectSession, ProjectUpdate, run_project_serve
from .store import ANALYSIS_VERSION, STORE_FORMAT, ShardedStore, store_generation

__all__ = [
    "ANALYSIS_VERSION",
    "MANIFEST_NAME",
    "ManifestError",
    "ProjectManifest",
    "ProjectSession",
    "ProjectUpdate",
    "STORE_FORMAT",
    "ShardedStore",
    "load_manifest",
    "run_project_serve",
    "store_generation",
]
