"""Sharded on-disk artifact store shared by parallel sessions.

The engine's in-memory cache is content-addressed: a key is the function's
structural fingerprint plus everything else the per-function pipeline reads
(context word, precision, resolved call sets, expression-call token).  This
module persists that store so *parallel* sessions on one machine — several
``parcoach project serve`` daemons, a one-shot ``project analyze`` next to
a warm daemon — share warm artifacts instead of re-analyzing the same
function bodies.

Layout: one directory per *generation* (``<root>/<generation>/``), one
directory per fingerprint prefix inside it (``.../<fp[:2]>/``), one pickle
file per cache key inside that.  The generation name encodes the payload
layout and the analysis semantics (``g<STORE_FORMAT>-<ANALYSIS_VERSION>``),
so sessions running different code versions never read each other's
entries: a version bump simply starts writing into a fresh generation
directory, and the stale generations sit untouched until
``parcoach project gc`` prunes them.  Entries additionally stamp both
versions into the payload — a mismatched entry (hand-copied across
generations, or written by a pre-generation layout) is unlinked and treated
as a miss.

Writes take a per-shard ``flock`` and go through a temp file + atomic
``os.replace``; reads are lock-free — a rename is atomic, so a reader sees
either the old bytes or the new bytes, never a torn file, and any
unpicklable/corrupt/mismatched entry is treated as a miss.  Content
addressing makes entries immutable: two sessions that race to write the
same key write the same artifacts, so last-writer-wins is correct.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import shutil
import tempfile
from typing import List, Optional, Tuple

from ..util.faultinject import fault_site

try:  # flock is POSIX-only; without it writes fall back to atomic rename.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Bump when the pickled payload layout changes; mismatched entries miss.
STORE_FORMAT = 1

#: Bump when the analysis *semantics* change — anything that would make a
#: cached ``FunctionArtifacts`` for an unchanged function body wrong (new
#: diagnostics, changed word algebra, different instrumentation rules).
#: Stale-version entries are never read; ``gc()`` reclaims their space.
ANALYSIS_VERSION = 1

#: Characters of the fingerprint used as the shard directory name.
SHARD_PREFIX_LEN = 2

#: Generation directory names: ``g<format>-<analysis>``.
_GENERATION_RE = re.compile(r"^g(\d+)-(\d+)$")

#: Legacy pre-generation shard dirs sat directly under the root.
_LEGACY_SHARD_RE = re.compile(r"^[0-9a-f]{%d}$" % SHARD_PREFIX_LEN)


def store_generation(store_format: int = STORE_FORMAT,
                     analysis_version: int = ANALYSIS_VERSION) -> str:
    """The generation directory name for a (format, analysis) pair."""
    return f"g{store_format}-{analysis_version}"


def _key_digest(key: tuple) -> str:
    """Stable file name for one engine cache key.

    The key's non-fingerprint parts (context word, precision, call-name
    tuples, expression-call token) have deterministic ``repr``s: canonical
    interprocedural words use stable negative region ids, tokens are
    structural positions.  Hashing fingerprint + repr therefore agrees
    across processes and sessions."""
    blob = key[0] + "|" + repr(key[1:])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ShardedStore:
    """Generation/prefix pickle store with atomic, shard-locked writes.

    Duck-typed to what :class:`~repro.core.engine.AnalysisEngine` expects
    from its ``store`` parameter: ``load(key)`` returning
    ``(FunctionArtifacts, uid_at_pos)`` or ``None``, and
    ``save(key, artifacts, uid_at_pos)``.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.generation = store_generation()

    # -- paths ---------------------------------------------------------------

    def _shard(self, key: tuple) -> str:
        return os.path.join(self.root, self.generation,
                            key[0][:SHARD_PREFIX_LEN])

    def _path(self, key: tuple) -> str:
        return os.path.join(self._shard(key), _key_digest(key) + ".pkl")

    # -- engine protocol -----------------------------------------------------

    def load(self, key: tuple) -> Optional[Tuple[object, tuple]]:
        """The stored ``(artifacts, uid_at_pos)`` for ``key`` — ``None`` on
        any miss, including a torn/corrupt/wrong-version entry."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            # Missing file, torn write, corrupt bytes (UnpicklingError,
            # ValueError, EOFError…), or a payload class that no longer
            # imports — all of them are misses, never errors.
            return None
        if (not isinstance(payload, tuple) or len(payload) != 4
                or payload[0] != STORE_FORMAT
                or payload[1] != ANALYSIS_VERSION):
            # A stale-version entry inside the current generation can only
            # mean manual copying or an old writer: reclaim it now so it
            # is not probed again.
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        return payload[2], tuple(payload[3])

    def save(self, key: tuple, artifacts: object, uid_at_pos: tuple) -> None:
        """Write one entry atomically under the shard lock."""
        shard = self._shard(key)
        os.makedirs(shard, exist_ok=True)
        lock_path = os.path.join(shard, ".lock")
        # Fault site: an injected oserror is a failed lock acquisition; the
        # engine's write-through swallows it (a shared store that cannot be
        # written must never fail the analysis itself).
        fault_site("project.shard_lock", lock_path)
        fd, tmp = tempfile.mkstemp(dir=shard, prefix=".tmp-")
        lock = None
        try:
            if fcntl is not None:
                lock = open(lock_path, "a+b")
                fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
            with os.fdopen(fd, "wb") as handle:
                pickle.dump((STORE_FORMAT, ANALYSIS_VERSION, artifacts,
                             tuple(uid_at_pos)),
                            handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        finally:
            if lock is not None:
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)
                lock.close()

    # -- maintenance ---------------------------------------------------------

    def _count_entries(self, gen_dir: str) -> int:
        count = 0
        try:
            shards = os.listdir(gen_dir)
        except OSError:
            return 0
        for shard in shards:
            try:
                names = os.listdir(os.path.join(gen_dir, shard))
            except OSError:
                continue
            count += sum(1 for n in names if n.endswith(".pkl"))
        return count

    def entries(self) -> int:
        """Number of stored artifacts in the *current* generation."""
        return self._count_entries(os.path.join(self.root, self.generation))

    def generations(self) -> List[str]:
        """Generation directory names present under the root (the current
        one included if it exists), oldest modification first.  Legacy
        pre-generation shard dirs are reported as the pseudo-generation
        ``"legacy"``."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        gens = []
        legacy = False
        for name in sorted(names):
            if _GENERATION_RE.match(name):
                gens.append(name)
            elif _LEGACY_SHARD_RE.match(name):
                legacy = True

        def mtime(gen: str) -> float:
            try:
                return os.path.getmtime(os.path.join(self.root, gen))
            except OSError:
                return 0.0

        gens.sort(key=lambda g: (mtime(g), g))
        if legacy:
            gens.insert(0, "legacy")
        return gens

    def gc(self, keep: int = 0) -> Tuple[int, int]:
        """Prune stale generations; returns ``(generations_removed,
        entries_removed)``.

        The current generation is always kept.  ``keep`` additionally
        retains that many of the most recently modified stale generations
        (useful while rolling back and forth between two builds).  Legacy
        pre-generation shard dirs at the root count as one stale
        generation — the oldest — and are pruned with it."""
        stale = [g for g in self.generations() if g != self.generation]
        if keep > 0:
            stale = stale[:-keep] if keep < len(stale) else []
        gens_removed = 0
        entries_removed = 0
        for gen in stale:
            if gen == "legacy":
                entries_removed += self._prune_legacy()
                gens_removed += 1
                continue
            gen_dir = os.path.join(self.root, gen)
            entries_removed += self._count_entries(gen_dir)
            try:
                shutil.rmtree(gen_dir)
            except OSError:
                continue
            gens_removed += 1
        return gens_removed, entries_removed

    def _prune_legacy(self) -> int:
        """Remove pre-generation shard dirs sitting directly at the root."""
        removed = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for name in names:
            if not _LEGACY_SHARD_RE.match(name):
                continue
            path = os.path.join(self.root, name)
            if not os.path.isdir(path):
                continue
            try:
                removed += sum(1 for n in os.listdir(path)
                               if n.endswith(".pkl"))
                shutil.rmtree(path)
            except OSError:
                continue
        return removed


__all__ = ["STORE_FORMAT", "ANALYSIS_VERSION", "SHARD_PREFIX_LEN",
           "ShardedStore", "store_generation"]
