"""Sharded on-disk artifact store shared by parallel sessions.

The engine's in-memory cache is content-addressed: a key is the function's
structural fingerprint plus everything else the per-function pipeline reads
(context word, precision, resolved call sets, expression-call token).  This
module persists that store so *parallel* sessions on one machine — several
``parcoach project serve`` daemons, a one-shot ``project analyze`` next to
a warm daemon — share warm artifacts instead of re-analyzing the same
function bodies.

Layout: one directory per fingerprint prefix (``<root>/<fp[:2]>/``), one
pickle file per cache key inside it.  Writes take a per-shard ``flock`` and
go through a temp file + atomic ``os.replace``; reads are lock-free — a
rename is atomic, so a reader sees either the old bytes or the new bytes,
never a torn file, and any unpicklable/corrupt/mismatched entry is treated
as a miss.  Content addressing makes entries immutable: two sessions that
race to write the same key write the same artifacts, so last-writer-wins
is correct.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Optional, Tuple

from ..util.faultinject import fault_site

try:  # flock is POSIX-only; without it writes fall back to atomic rename.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Bump when the pickled payload layout changes; mismatched entries miss.
STORE_FORMAT = 1

#: Characters of the fingerprint used as the shard directory name.
SHARD_PREFIX_LEN = 2


def _key_digest(key: tuple) -> str:
    """Stable file name for one engine cache key.

    The key's non-fingerprint parts (context word, precision, call-name
    tuples, expression-call token) have deterministic ``repr``s: canonical
    interprocedural words use stable negative region ids, tokens are
    structural positions.  Hashing fingerprint + repr therefore agrees
    across processes and sessions."""
    blob = key[0] + "|" + repr(key[1:])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ShardedStore:
    """Directory-per-prefix pickle store with atomic, shard-locked writes.

    Duck-typed to what :class:`~repro.core.engine.AnalysisEngine` expects
    from its ``store`` parameter: ``load(key)`` returning
    ``(FunctionArtifacts, uid_at_pos)`` or ``None``, and
    ``save(key, artifacts, uid_at_pos)``.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)

    # -- paths ---------------------------------------------------------------

    def _shard(self, key: tuple) -> str:
        return os.path.join(self.root, key[0][:SHARD_PREFIX_LEN])

    def _path(self, key: tuple) -> str:
        return os.path.join(self._shard(key), _key_digest(key) + ".pkl")

    # -- engine protocol -----------------------------------------------------

    def load(self, key: tuple) -> Optional[Tuple[object, tuple]]:
        """The stored ``(artifacts, uid_at_pos)`` for ``key`` — ``None`` on
        any miss, including a torn/corrupt/old-format entry."""
        try:
            with open(self._path(key), "rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            # Missing file, torn write, corrupt bytes (UnpicklingError,
            # ValueError, EOFError…), or a payload class that no longer
            # imports — all of them are misses, never errors.
            return None
        if (not isinstance(payload, tuple) or len(payload) != 3
                or payload[0] != STORE_FORMAT):
            return None
        return payload[1], tuple(payload[2])

    def save(self, key: tuple, artifacts: object, uid_at_pos: tuple) -> None:
        """Write one entry atomically under the shard lock."""
        shard = self._shard(key)
        os.makedirs(shard, exist_ok=True)
        lock_path = os.path.join(shard, ".lock")
        # Fault site: an injected oserror is a failed lock acquisition; the
        # engine's write-through swallows it (a shared store that cannot be
        # written must never fail the analysis itself).
        fault_site("project.shard_lock", lock_path)
        fd, tmp = tempfile.mkstemp(dir=shard, prefix=".tmp-")
        lock = None
        try:
            if fcntl is not None:
                lock = open(lock_path, "a+b")
                fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
            with os.fdopen(fd, "wb") as handle:
                pickle.dump((STORE_FORMAT, artifacts, tuple(uid_at_pos)),
                            handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        finally:
            if lock is not None:
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)
                lock.close()

    # -- maintenance ---------------------------------------------------------

    def entries(self) -> int:
        """Number of stored artifacts (walks the shard directories)."""
        count = 0
        try:
            shards = os.listdir(self.root)
        except OSError:
            return 0
        for shard in shards:
            try:
                names = os.listdir(os.path.join(self.root, shard))
            except OSError:
                continue
            count += sum(1 for n in names if n.endswith(".pkl"))
        return count


__all__ = ["STORE_FORMAT", "SHARD_PREFIX_LEN", "ShardedStore"]
