"""The multi-file incremental session — ``parcoach project serve``.

A :class:`ProjectSession` lifts :class:`~repro.core.session.AnalysisSession`
from one file to a project.  Every open file contributes its functions to
**one merged program** fed to one shared engine, so the call graph,
calling-context propagation and collective summaries are cross-file by
construction: a rank-guarded collective in ``helper()`` defined in
``util.mc`` is flagged at the call in ``main.mc`` with a witness chain
spanning both files — exactly the finding a per-file ``parcoach analyze``
of either file cannot produce.

Incrementality mirrors the single-file session (chunk reuse, fingerprint
diff, reverse-call-graph dependent closure, SCC-skipping summaries) with
three project-only additions:

* **Line-offset patching** — a chunk whose text is unchanged but whose
  start line moved (a line inserted/deleted above it) is *patched*, not
  re-parsed: the cached AST and every line-addressed artifact are shifted
  in place and the content-addressed store is re-keyed
  (:meth:`~repro.core.engine.AnalysisEngine.patch_function_lines`).  A
  whitespace/comment line inserted between functions re-answers with zero
  engine misses.

* **O(edit) assembly** — when an update touches known files without
  changing any function name or signature, the whole-program passes are
  *delta-maintained* instead of recomputed: the call graph is patched in
  place for the re-parsed functions (:func:`~repro.core.callgraph
  .update_call_graph`), the context fixpoint is reused verbatim when the
  changed functions' transfers replay identically
  (:func:`~repro.core.callgraph.contexts_reusable`), collective summaries
  walk only the dirty SCCs and their really-changed ancestors
  (:func:`~repro.core.callgraph.update_summaries`), the interprocedural
  plan is patched per dirty function (:func:`~repro.core.driver
  .update_plan`), and the engine analyzes a *scope* of exactly the
  functions whose artifacts could differ.  The Report IR document is
  re-assembled from a per-function cache, so a one-file edit costs
  O(size of edit + dependents), not O(project) — the
  ``assembly_reuses`` / ``edges_recomputed`` / ``graph_rebuilds`` engine
  counters surface how much was skipped.

* **Shared sharded store** — cache misses probe (and fresh analyses write
  through to) a per-project on-disk store
  (:class:`~repro.project.store.ShardedStore`), so parallel sessions on one
  machine share warm artifacts.

Findings are file-qualified: every finding carries the defining ``file`` of
its function plus ``call_path_files`` aligned with the witness chain, and
the finding fingerprint covers both.  Protocol details:
``docs/project-protocol.md``.
"""

from __future__ import annotations

import sys
import time
from collections import ChainMap, OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..minilang import ast_nodes as A
from ..minilang.semantics import Checker
from ..mpi.thread_levels import ThreadLevel
from ..parallelism import EMPTY, Word, format_word, parse_word
from ..util.faultinject import fault_site
from ..util.resilience import Deadline, DeadlineExceeded, Failure
from ..core.callgraph import (
    CallGraph,
    ContextMap,
    FunctionSummary,
    build_call_graph,
    collective_summaries,
    contexts_reusable,
    propagate_contexts,
    update_call_graph,
    update_summaries,
)
from ..core.diagnostics import Diagnostic, ErrorCode, SourceRef
from ..core.driver import InterproceduralPlan, build_plan, update_plan
from ..core.engine import AnalysisEngine
from ..core.report import (
    build_report,
    canonical_region_ids,
    diagnostic_finding,
    finding_fingerprint,
    render_json,
    report_from_analysis,
)
from ..core.session import SessionError, _parse_chunk, split_chunks
from ..core.sites import ProgramIndex, index_function, index_program
from .manifest import ManifestError, ProjectManifest, load_manifest
from .store import ShardedStore


@dataclass
class ProjectUpdate:
    """The delta produced by one project update (open/edit/close/analyze)."""

    #: Relative paths read from disk for this update.
    files: Tuple[str, ...]
    #: Monotonic project update counter (1 = first analysis).
    seq: int
    no_op: bool
    #: True when any read file fell back to a full parse.
    full_parse: bool
    #: Function names whose fingerprint moved or appeared.
    changed: Tuple[str, ...]
    #: Function names that disappeared.
    removed: Tuple[str, ...]
    #: Functions served by the line-offset patch pass (shifted, not
    #: re-parsed, not re-analyzed).
    patched: Tuple[str, ...]
    #: Reverse-call-graph closure of changed ∪ removed, minus the seeds —
    #: crosses file boundaries.
    dependents: Tuple[str, ...]
    #: Functions the engine actually re-analyzed.
    reanalyzed: Tuple[str, ...]
    invalidated_entries: int
    findings_added: Tuple[dict, ...]
    findings_removed: Tuple[str, ...]
    findings_total: int
    #: Project-flavoured Report IR document for this delta.
    report: dict = field(repr=False, default_factory=dict)


@dataclass
class _ProjectFile:
    """Per-file state inside the merged project."""

    rel: str
    source: str
    funcs: List[A.FuncDef]
    #: (sha256(text), start_line) -> FuncDef; None = chunking disabled for
    #: this file, every update of it full-parses.
    chunks: Optional[Dict[Tuple[str, int], A.FuncDef]]
    #: Function names in file order (the fast update path requires the name
    #: tuple and the signature map to be stable per file).
    names: Tuple[str, ...] = ()
    #: name -> (ret_type, arity) of this file's functions.
    sigs: Dict[str, tuple] = field(default_factory=dict)


@dataclass
class _ParsedFile:
    """One file's parse result, before it is committed to the session."""

    rel: str
    source: str
    funcs: List[A.FuncDef]
    chunks: Optional[Dict[Tuple[str, int], A.FuncDef]]
    #: (func, line delta) pairs to patch — applied only after the merged
    #: program passes the semantic check, so a rejected update mutates
    #: nothing.
    patches: List[Tuple[A.FuncDef, int]]
    full_parse: bool
    changed_text: bool


@dataclass
class _ReportCache:
    """Per-function pieces of the current Report IR document.

    The fast update path re-renders the whole report by concatenating these
    cached pieces in program order and replacing only the entries of the
    functions it re-merged — O(edit), not O(project).  Entry dicts and
    finding dicts are shared with emitted reports and therefore never
    mutated in place; every change copies first.
    """

    #: function -> its ``summary.functions`` entry (complete, including the
    #: ``instrumented`` flag and ``collective_summary``).
    entries: Dict[str, dict]
    #: function -> its qualified findings (mono → conc → seq order), only
    #: for functions with at least one.
    base: Dict[str, Tuple[dict, ...]]
    #: function -> its qualified THREAD_LEVEL finding (sparse).
    thread: Dict[str, dict]
    flagged: Set[str]
    has_sites: Set[str]
    instrumented: Set[str]
    requested: Optional[ThreadLevel]
    collective_sorted: List[str]
    flagged_sorted: List[str]
    instrumented_sorted: List[str]


def _summary_entry(art, words, summary: FunctionSummary) -> dict:
    """One ``summary.functions`` entry, field-for-field what
    :func:`~repro.core.report.analysis_summary` produces (``instrumented``
    is patched in afterwards — it is program-level state)."""
    return {
        "blocks": len(art.cfg),
        "collectives": sum(1 for s in art.sites if s.kind == "collective"),
        "sites": len(art.sites),
        "flagged": art.flagged,
        "instrumented": False,
        "multithreaded_sites": len(art.monothread.multithreaded_sites),
        "concurrent_pairs": len(art.concurrency.concurrent_pairs),
        "mismatch_conditionals": len(art.sequence.conditionals),
        "required_level": art.monothread.max_required_level.mpi_name,
        "contexts": [canonical_region_ids(format_word(w)) for w in words],
        "collective_summary": dict(summary.collectives),
    }


def _thread_level_finding(name: str, art,
                          requested: Optional[ThreadLevel]) -> Optional[dict]:
    """The THREAD_LEVEL finding of one function, or None — mirrors the
    program-level comparison in the driver's ``_assemble``."""
    if requested is None:
        return None
    needed = art.monothread.max_required_level
    if not needed > requested:
        return None
    offenders = tuple(
        SourceRef(site.name, site.line)
        for site in art.sites
        if art.monothread.required_levels.get(site.uid,
                                              ThreadLevel.SINGLE) > requested
    )
    return diagnostic_finding(Diagnostic(
        code=ErrorCode.THREAD_LEVEL,
        function=name,
        message=(
            f"collectives require {needed.mpi_name} but the program "
            f"requests only {requested.mpi_name}"
        ),
        collectives=offenders,
    ))


class ProjectSession:
    """A long-lived incremental session over every file of one project.

    ``update_file`` / ``close_file`` / ``update_all`` are the API: each
    folds the current on-disk text into the merged program and returns a
    :class:`ProjectUpdate`.  Construction resolves the manifest
    (``parcoach.toml`` or an explicit file list) but reads no sources; the
    first update does.
    """

    MAX_FAILURES = 8
    #: LRU bound for the checked-function memo (id(func) -> func).
    _CHECKED_LIMIT = 65536

    def __init__(self, root: str, files: Optional[List[str]] = None,
                 jobs: int = 1, precision: str = "paper",
                 interprocedural: bool = True,
                 entry_context: Optional[Word] = None,
                 store: Optional[bool] = None) -> None:
        self.manifest: ProjectManifest = load_manifest(root, files)
        self.jobs = jobs
        self.precision = precision
        self.interprocedural = interprocedural
        if entry_context is None:
            entry_context = (parse_word(self.manifest.initial_context)
                             if self.manifest.initial_context else EMPTY)
        self.entry_context = entry_context
        use_store = (self.manifest.store_path is not None
                     if store is None else store)
        self.store: Optional[ShardedStore] = (
            ShardedStore(self.manifest.store_path)
            if use_store and self.manifest.store_path is not None else None)
        self.engine = AnalysisEngine(jobs=jobs, store=self.store)

        self.updates = 0
        self.no_op_updates = 0
        self.fast_updates = 0
        self.full_updates = 0
        self.context_reuses = 0
        self.recoveries = 0
        self.rebuilds = 0
        self.timeouts = 0
        self.degraded = 0
        self.failures: List[Failure] = []

        #: rel -> True for files that *should* be loaded (opened, not
        #: closed).  Files in here but missing from ``_files`` (after a
        #: recover/rebuild self-heal) are re-read by the next update.
        self._open: Dict[str, bool] = {}
        self._files: Dict[str, _ProjectFile] = {}
        self._program: Optional[A.Program] = None
        self._fingerprints: Dict[str, str] = {}
        self._func_file: Dict[str, str] = {}
        self._callers: Dict[str, Tuple[str, ...]] = {}
        self._summaries: Optional[Dict[str, FunctionSummary]] = None
        self._signatures: Optional[Dict[str, tuple]] = None
        #: finding fingerprint -> finding of the current version.
        self._findings: Dict[str, dict] = {}
        #: Full project-flavoured Report IR of the current version —
        #: rendered lazily from ``_report_cache`` (see the ``report``
        #: property), so an O(edit) update never assembles it.
        self._report_doc: Optional[dict] = None
        self.seq = 0
        #: id(func) -> func LRU of semantically checked functions.
        self._checked: "OrderedDict[int, A.FuncDef]" = OrderedDict()
        # Delta-maintained whole-program state for the fast update path
        # (populated by full interprocedural updates; any None disables it).
        self._graph: Optional[CallGraph] = None
        self._contexts: Optional[ContextMap] = None
        self._plan: Optional[InterproceduralPlan] = None
        self._collective_funcs: Optional[Set[str]] = None
        self._func_by_name: Optional[Dict[str, A.FuncDef]] = None
        self._report_cache: Optional[_ReportCache] = None
        self._checker: Optional[Checker] = None
        #: The current program's index, shared with the engine's program
        #: memo; the fast path re-indexes touched functions in place.
        self._index: Optional[ProgramIndex] = None
        #: rel -> (start, end) span of the file's functions inside the
        #: merged ``program.funcs`` list (sorted-path file order).
        self._file_span: Dict[str, Tuple[int, int]] = {}
        self._func_names: Optional[frozenset] = None

    @property
    def report(self) -> Optional[dict]:
        """Full Report IR of the current project version (assembled on
        first access after a fast update)."""
        if (self._report_doc is None and self._report_cache is not None
                and self._program is not None):
            self._report_doc = self._render_cached_report(self._program,
                                                          self._report_cache)
        return self._report_doc

    @report.setter
    def report(self, doc: Optional[dict]) -> None:
        self._report_doc = doc

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "ProjectSession":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False

    def stats(self) -> Dict[str, object]:
        return {
            "engine": self.engine.cache_info(),
            "session": {
                "files": len(self._files),
                "updates": self.updates,
                "no_op_updates": self.no_op_updates,
                "fast_updates": self.fast_updates,
                "full_updates": self.full_updates,
                "context_reuses": self.context_reuses,
                "recoveries": self.recoveries,
                "rebuilds": self.rebuilds,
                "timeouts": self.timeouts,
                "degraded": self.degraded,
                "failures": [f.as_dict() for f in self.failures],
            },
            "project": {
                "root": self.manifest.root,
                "manifest_files": len(self.manifest.files),
                "open_files": sorted(self._open),
                "functions": len(self._fingerprints),
                "store": ({"path": self.store.root,
                           "generation": self.store.generation,
                           "entries": self.store.entries()}
                          if self.store is not None else None),
            },
        }

    # -- self-healing --------------------------------------------------------

    def record_failure(self, site: str, exc: BaseException,
                       attempt: int = 1) -> Failure:
        failure = Failure.from_exception(site, attempt, exc)
        self.failures.append(failure)
        del self.failures[:-self.MAX_FAILURES]
        return failure

    def recover_file(self, rel: str) -> None:
        """Targeted self-heal: forget one file's state and evict its
        functions' artifacts.  It stays *open*, so the next update re-reads
        it cold; every other file's warm state survives."""
        state = self._files.pop(rel, None)
        if state is not None:
            doomed = {self._fingerprints[f.name] for f in state.funcs
                      if f.name in self._fingerprints}
            self.engine.invalidate_fingerprints(doomed)

    def rebuild(self) -> None:
        """Last-resort self-heal: fresh engine (still store-backed), no
        per-file state.  Open files are re-read by the next update."""
        try:
            self.engine.close()
        except Exception:
            pass  # a wedged pool must not block the rebuild
        self.engine = AnalysisEngine(jobs=self.jobs, store=self.store)
        self._files.clear()
        self._checked.clear()
        self._program = None
        self._fingerprints = {}
        self._func_file = {}
        self._callers = {}
        self._summaries = None
        self._signatures = None
        self._graph = None
        self._contexts = None
        self._plan = None
        self._collective_funcs = None
        self._func_by_name = None
        self._report_cache = None
        self._checker = None
        self._index = None
        self._file_span = {}
        self._func_names = None

    # -- per-file parsing ----------------------------------------------------

    def _read(self, rel: str) -> str:
        path = self.manifest.abspath(rel)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            return fault_site("session.read_file", source)
        except OSError as exc:
            raise SessionError(rel, [str(exc)]) from exc

    def _parse_file(self, rel: str, source: str) -> _ParsedFile:
        """Split ``rel``'s text into chunks and classify each against the
        previous version: identical (reuse the ``FuncDef`` object), shifted
        (same text at a new start line — queue a line-offset patch), or
        edited (re-parse).  Any anomaly falls back to a full parse."""
        prev = self._files.get(rel)
        if prev is not None and prev.source == source:
            return _ParsedFile(rel=rel, source=source, funcs=prev.funcs,
                               chunks=prev.chunks, patches=[],
                               full_parse=False, changed_text=False)
        chunks = split_chunks(source)
        if chunks is None:
            return self._full_parse_file(rel, source)
        #: digest -> previous (start_line, func) candidates for patching.
        movable: Dict[str, List[Tuple[int, A.FuncDef]]] = {}
        if prev is not None and prev.chunks is not None:
            for (digest, line), func in prev.chunks.items():
                movable.setdefault(digest, []).append((line, func))
        funcs: List[A.FuncDef] = []
        chunk_map: Dict[Tuple[str, int], A.FuncDef] = {}
        patches: List[Tuple[A.FuncDef, int]] = []
        for chunk in chunks:
            digest, start_line = chunk.key
            func = None
            for i, (old_line, candidate) in enumerate(movable.get(digest, ())):
                if old_line == start_line:
                    func = candidate  # identical chunk: plain reuse
                    del movable[digest][i]
                    break
            else:
                candidates = movable.get(digest)
                if candidates:
                    old_line, func = candidates.pop(0)
                    patches.append((func, start_line - old_line))
            if func is None:
                func = _parse_chunk(chunk, rel)
                if func is None:
                    return self._full_parse_file(rel, source)
            funcs.append(func)
            chunk_map[(digest, start_line)] = func
        return _ParsedFile(rel=rel, source=source, funcs=funcs,
                           chunks=chunk_map, patches=patches,
                           full_parse=False, changed_text=True)

    def _full_parse_file(self, rel: str, source: str) -> _ParsedFile:
        from ..minilang.parser import parse_program

        try:
            program = parse_program(source, rel)
        except Exception as exc:
            raise SessionError(rel, [str(exc)]) from exc
        return _ParsedFile(rel=rel, source=source, funcs=list(program.funcs),
                           chunks=None, patches=[], full_parse=True,
                           changed_text=True)

    # -- semantic checking ---------------------------------------------------

    @staticmethod
    def _signature_map(funcs: List[A.FuncDef]) -> Dict[str, tuple]:
        return {f.name: (f.ret_type, len(f.params)) for f in funcs}

    def _checked_probe(self, func: A.FuncDef) -> bool:
        """True when ``func`` was already checked; refreshes its LRU slot."""
        key = id(func)
        if self._checked.get(key) is func:
            self._checked.move_to_end(key)
            return True
        return False

    def _note_checked(self, funcs: List[A.FuncDef]) -> None:
        checked = self._checked
        for func in funcs:
            checked[id(func)] = func
            checked.move_to_end(id(func))
        while len(checked) > self._CHECKED_LIMIT:
            checked.popitem(last=False)

    def _check(self, program: A.Program,
               file_of: List[str]) -> None:
        """Cross-file semantic check, incremental while the *global*
        signature map is stable: calls in file B resolve against functions
        defined in file A, so editing a helper's signature re-checks its
        textually unchanged callers in every file.  Issues are prefixed
        with the defining file (``file_of`` aligns with ``program.funcs``)."""
        seen: Dict[str, str] = {}
        duplicates: List[str] = []
        for func, rel in zip(program.funcs, file_of):
            other = seen.get(func.name)
            if other is not None:
                duplicates.append(
                    f"duplicate function {func.name!r} defined in {other} "
                    f"and {rel}")
            else:
                seen[func.name] = rel
        if duplicates:
            raise SessionError("<project>", duplicates)

        rel_by_id = {id(f): rel for f, rel in zip(program.funcs, file_of)}
        sigs = self._signature_map(program.funcs)
        if self._signatures == sigs:
            unchecked = [f for f in program.funcs
                         if not self._checked_probe(f)]
        else:
            unchecked = list(program.funcs)
        checker = Checker(program)
        errors: List[str] = []
        for func in unchecked:
            before = len(checker.issues)
            checker._check_func(func)
            errors.extend(
                f"{rel_by_id[id(func)]}:{issue}"
                for issue in checker.issues[before:]
                if issue.severity == "error")
        if errors:
            raise SessionError("<project>", errors)
        self._note_checked(unchecked)
        self._signatures = sigs
        self._checker = checker

    # -- updates -------------------------------------------------------------

    def update_file(self, rel: str, deadline: Optional[Deadline] = None,
                    interprocedural: Optional[bool] = None) -> ProjectUpdate:
        """(Re-)read one file from disk and fold it into the project."""
        if rel not in self._open:
            self._open[rel] = True
        return self._update({rel}, set(), deadline, interprocedural)

    def close_file(self, rel: str, deadline: Optional[Deadline] = None,
                   interprocedural: Optional[bool] = None) -> ProjectUpdate:
        """Drop one file from the project (its functions disappear; their
        cross-file callers re-check and re-analyze)."""
        if rel not in self._open and rel not in self._files:
            raise SessionError(rel, [f"{rel} is not open"])
        # pop, not del: a self-heal retry of a half-finished close must not
        # trip over the first attempt having already removed the entry.
        self._open.pop(rel, None)
        return self._update(set(), {rel}, deadline, interprocedural)

    def rename_file(self, old: str, new: str,
                    deadline: Optional[Deadline] = None,
                    interprocedural: Optional[bool] = None) -> ProjectUpdate:
        """Atomic rename: fold ``new`` in and drop ``old`` in one update.

        Neither step is expressible alone when other files call the moved
        functions — closing ``old`` first leaves unknown callees, opening
        ``new`` first defines duplicates.  Equal text at equal lines keeps
        the structural fingerprints, so nothing re-analyzes; findings are
        re-qualified to the new file (their fingerprints move with it)."""
        if old not in self._open and old not in self._files:
            raise SessionError(old, [f"{old} is not open"])
        self._open.pop(old, None)
        self._open[new] = True
        return self._update({new}, {old}, deadline, interprocedural)

    def update_all(self, deadline: Optional[Deadline] = None,
                   interprocedural: Optional[bool] = None) -> ProjectUpdate:
        """(Re-)read every project file (the manifest set on first use,
        the open set afterwards)."""
        if not self._open:
            for rel in self.manifest.files:
                self._open[rel] = True
        return self._update(set(self._open), set(), deadline,
                            interprocedural)

    def _update(self, reads: Set[str], closed: Set[str],
                deadline: Optional[Deadline],
                interprocedural: Optional[bool]) -> ProjectUpdate:
        interproc = (self.interprocedural if interprocedural is None
                     else interprocedural)
        self.updates += 1
        # Self-heal hook: open files whose state vanished (recover_file /
        # rebuild) are re-read alongside the requested ones.
        reads = set(reads) | {rel for rel in self._open
                              if rel not in self._files}
        parsed: Dict[str, _ParsedFile] = {}
        for rel in sorted(reads):
            parsed[rel] = self._parse_file(rel, self._read(rel))
        if deadline is not None:
            deadline.check("session.parse")
        return self._refresh(parsed, closed, deadline, interproc)

    def _fast_file_ok(self, rel: str, p: _ParsedFile) -> bool:
        state = self._files[rel]
        if state.names != tuple(f.name for f in p.funcs):
            return False
        return state.sigs == self._signature_map(p.funcs)

    def _refresh(self, parsed: Dict[str, _ParsedFile], closed: Set[str],
                 deadline: Optional[Deadline],
                 interproc: bool) -> ProjectUpdate:
        prev_program = self._program
        had_state = prev_program is not None

        no_text_change = (had_state and not closed
                          and all(not p.changed_text for p in parsed.values()))
        if no_text_change:
            self.seq += 1
            self.no_op_updates += 1
            delta = self._make_update(tuple(sorted(parsed)), no_op=True,
                                      full_parse=False)
            return delta

        # O(edit) fast path: every touched file keeps its function names
        # and signatures, nothing opened or closed, and the previous update
        # left delta-maintainable whole-program state.
        touched = {rel: p for rel, p in parsed.items() if p.changed_text}
        if (had_state and interproc and not closed
                and self._plan is not None and self._graph is not None
                and self._contexts is not None and self._summaries is not None
                and self._report_cache is not None
                and self._collective_funcs is not None
                and self._func_by_name is not None
                and self._checker is not None
                and self._index is not None
                and self._func_names is not None
                and all(rel in self._files for rel in parsed)
                and all(rel in self._file_span for rel in touched)
                and all(self._fast_file_ok(rel, p)
                        for rel, p in touched.items())):
            delta = self._refresh_fast(parsed, touched, deadline)
            if delta is not None:
                return delta

        # Merged program: functions of every open file, in sorted-path
        # file order (deterministic regardless of open order).
        file_funcs: Dict[str, List[A.FuncDef]] = {}
        for rel in self._open:
            if rel in closed:
                continue
            if rel in parsed:
                p = parsed[rel]
                file_funcs[rel] = p.funcs
            else:
                file_funcs[rel] = self._files[rel].funcs
        order = sorted(file_funcs)
        funcs: List[A.FuncDef] = []
        file_of: List[str] = []
        func_file: Dict[str, str] = {}
        spans: Dict[str, Tuple[int, int]] = {}
        for rel in order:
            start = len(funcs)
            for func in file_funcs[rel]:
                funcs.append(func)
                file_of.append(rel)
                func_file.setdefault(func.name, rel)
            spans[rel] = (start, len(funcs))
        if (prev_program is not None
                and len(prev_program.funcs) == len(funcs)
                and all(a is b for a, b in zip(prev_program.funcs, funcs))):
            program = prev_program  # keep the engine's program memo warm
        else:
            program = A.Program(funcs=funcs,
                                filename=f"<project:{self.manifest.root}>",
                                line=1)
        self._check(program, file_of)

        # Commit point: the update is semantically valid.  Apply the
        # queued line-offset patches (AST + cached artifacts + store keys
        # shift together; zero re-analysis).
        patched: List[str] = []
        for p in parsed.values():
            for func, delta_lines in p.patches:
                fault_site("project.patch", func.name)
                self.engine.patch_function_lines(func, delta_lines)
                patched.append(func.name)

        fingerprints = {f.name: self.engine._fingerprint_for(f)
                        for f in program.funcs}
        prev_fps = dict(self._fingerprints)
        for name in patched:
            # A patched function's fingerprint moved with its lines, but
            # the store moved with it — it is not an edit.
            prev_fps[name] = fingerprints[name]
        changed = tuple(n for n in fingerprints
                        if fingerprints[n] != prev_fps.get(n))
        removed = tuple(n for n in prev_fps if n not in fingerprints)

        if (had_state and not changed and not removed and not patched
                and func_file == self._func_file):
            # Whitespace/comment-only edits inside chunks: nothing moved.
            # (A rename keeps every fingerprint but changes func_file — it
            # must fall through so findings re-qualify to the new file.)
            self._commit_files(parsed, closed)
            self.seq += 1
            self.no_op_updates += 1
            return self._make_update(tuple(sorted(parsed)), no_op=True,
                                     full_parse=any(p.full_parse
                                                    for p in parsed.values()))

        # Cross-file dependency closure over reverse call edges of both
        # versions (callers of deleted functions and new callers count).
        # The engine's program-facts memo provides the index (one walk,
        # shared with analyze below and with future fast updates).
        dirty: Set[str] = set(changed) | set(removed)
        facts = self.engine._program_facts(program)
        index = facts.index
        graph = build_call_graph(program, index)
        callers: Dict[str, Tuple[str, ...]] = {
            name: tuple(e.caller for e in graph.callers[name])
            for name in graph.order
        }
        merged_callers: Dict[str, Set[str]] = {}
        for source_map in (self._callers, callers):
            for name, who in source_map.items():
                merged_callers.setdefault(name, set()).update(who)
        dependents: List[str] = []
        work = list(dirty)
        seen = set(dirty)
        while work:
            name = work.pop()
            for caller in sorted(merged_callers.get(name, ())):
                if caller not in seen:
                    seen.add(caller)
                    dependents.append(caller)
                    work.append(caller)
        dependents_t = tuple(d for d in dependents if d in fingerprints)

        doomed = {prev_fps[n] for n in dirty if n in prev_fps}
        invalidated = self.engine.invalidate_fingerprints(doomed)

        plan = None
        contexts: Optional[ContextMap] = None
        initial_words: Dict[str, Word] = {}
        if interproc:
            seeds = {e: self.entry_context for e in self.manifest.entries
                     if e in fingerprints}
            contexts = propagate_contexts(program, graph, seeds=seeds,
                                          entry_context=self.entry_context,
                                          record_transfers=True)
            summaries = collective_summaries(
                program, graph, index,
                prev=self._summaries, dirty=set(changed))
            plan = build_plan(program, index,
                              entry_context=self.entry_context,
                              graph=graph, contexts=contexts,
                              summaries=summaries)
        else:
            summaries = None
            if self.entry_context:
                initial_words = {f.name: self.entry_context
                                 for f in program.funcs}
        if deadline is not None:
            deadline.check("session.plan")

        fault_site("session.analyze")
        analysis = self.engine.analyze(
            program, initial_words=initial_words, precision=self.precision,
            interprocedural=interproc, entry_context=self.entry_context,
            plan=plan, deadline=deadline, facts=facts)
        record = self.engine.last
        reanalyzed = record.missed_functions
        dep_reanalyzed = [n for n in reanalyzed if n not in dirty]
        self.engine.stats.dependency_invalidations += len(dep_reanalyzed)

        if deadline is not None:
            deadline.check("session.render")
        report = report_from_analysis(analysis, source_path=None,
                                      source_text=None, tool="project")
        report["source"] = {"file": self.manifest.root}
        _qualify_findings(report["findings"], func_file)
        new_findings = {f["fingerprint"]: f for f in report["findings"]}

        # Commit.
        self._commit_files(parsed, closed)
        self._program = program
        self._fingerprints = fingerprints
        self._func_file = func_file
        self._callers = callers
        self._summaries = summaries
        self._graph = graph
        self._contexts = contexts
        self._plan = plan
        self._index = index
        self._file_span = spans
        self._func_names = frozenset(fingerprints)
        self._func_by_name = {f.name: f for f in program.funcs}
        if interproc:
            self._collective_funcs = set(analysis.collective_funcs)
            self._report_cache = self._build_report_cache(analysis, report)
        else:
            self._collective_funcs = None
            self._report_cache = None
        old_findings = self._findings
        added = tuple(f for fp, f in new_findings.items()
                      if fp not in old_findings)
        gone = tuple(fp for fp in old_findings if fp not in new_findings)
        self._findings = new_findings
        self.report = report
        self.seq += 1
        self.full_updates += 1

        return self._make_update(
            tuple(sorted(parsed)), no_op=False,
            full_parse=any(p.full_parse for p in parsed.values()),
            changed=changed, removed=removed, patched=tuple(patched),
            dependents=dependents_t, reanalyzed=reanalyzed,
            invalidated=invalidated, added=added, gone=gone)

    # -- the O(edit) fast path ----------------------------------------------

    def _calls_of(self, func: A.FuncDef) -> list:
        """The function's call nodes, via the engine's per-function index
        memo (indexing it here pre-warms the memo for ``index_program``)."""
        memo = self.engine._func_index
        entry = memo.get(id(func))
        if entry is not None and entry[0] is func:
            return entry[1]
        calls, stmts, expr_calls = index_function(func)
        memo[id(func)] = (func, calls, stmts, expr_calls)
        return calls

    def _refresh_fast(self, parsed: Dict[str, _ParsedFile],
                      touched: Dict[str, _ParsedFile],
                      deadline: Optional[Deadline]
                      ) -> Optional[ProjectUpdate]:
        """Delta-maintain every whole-program structure for an update that
        keeps the function name/signature maps intact — O(edit + dependents)
        end to end: every per-name map (fingerprints, callers, func map,
        report cache, findings) is updated with a small delta applied at the
        commit point, never copied wholesale.  Returns ``None`` (before any
        side effect beyond the checked-function memo) when a precondition
        turns out not to hold — the caller then runs the full path."""
        prev_program = self._program
        engine = self.engine

        # Merged function list: splice each touched file's re-parsed
        # functions into its recorded span.  Comparing against the previous
        # program (not the per-file cache) also catches divergence left by
        # an earlier shortcut update, so stale-uid anchors can never
        # survive in the delta-maintained structures.
        reparsed_pairs: List[Tuple[A.FuncDef, A.FuncDef]] = []
        reparsed_pos: List[Tuple[int, A.FuncDef]] = []
        for rel in sorted(touched):
            p = touched[rel]
            start, end = self._file_span[rel]
            if end - start != len(p.funcs):
                return None
            for off, (old, new) in enumerate(
                    zip(prev_program.funcs[start:end], p.funcs)):
                if old is not new:
                    if old.name != new.name:
                        return None
                    reparsed_pairs.append((old, new))
                    reparsed_pos.append((start + off, new))
        reparsed = {new.name for _old, new in reparsed_pairs}
        if reparsed_pairs:
            funcs = list(prev_program.funcs)
            for rel in sorted(touched):
                start, end = self._file_span[rel]
                funcs[start:end] = touched[rel].funcs
            program = A.Program(funcs=funcs,
                                filename=f"<project:{self.manifest.root}>",
                                line=1)
        else:
            program = prev_program

        # Semantic check, touched functions only (names and signatures are
        # unchanged, so no new duplicates and no cross-file re-checks).
        checker = self._checker
        checker.issues = []
        fresh: List[A.FuncDef] = []
        errors: List[str] = []
        for rel, p in touched.items():
            for func in p.funcs:
                if self._checked_probe(func):
                    continue
                before = len(checker.issues)
                checker._check_func(func)
                errors.extend(
                    f"{rel}:{issue}"
                    for issue in checker.issues[before:]
                    if issue.severity == "error")
                fresh.append(func)
        if errors:
            raise SessionError("<project>", errors)
        self._note_checked(fresh)

        # The requested thread level is a whole-program fact; let the full
        # path re-derive it when an edit touches MPI initialization.
        for old, new in reparsed_pairs:
            for func in (old, new):
                if any(c.name in ("MPI_Init", "MPI_Init_thread")
                       for c in self._calls_of(func)):
                    return None

        # Commit point — mirrors the full path from here on.
        patched: List[str] = []
        for rel in sorted(touched):
            for func, delta_lines in touched[rel].patches:
                fault_site("project.patch", func.name)
                engine.patch_function_lines(func, delta_lines)
                patched.append(func.name)

        fp_new: Dict[str, str] = {}
        for rel in sorted(touched):
            for func in touched[rel].funcs:
                fp_new[func.name] = engine._fingerprint_for(func)
        patched_set = set(patched)
        changed = tuple(
            name for name, fp in fp_new.items()
            if name not in patched_set and fp != self._fingerprints.get(name))

        full_parse = any(p.full_parse for p in parsed.values())
        if not reparsed_pairs and not patched and not changed:
            # Same objects everywhere: nothing to maintain.
            self._commit_files(parsed, set())
            self.seq += 1
            self.no_op_updates += 1
            return self._make_update(tuple(sorted(parsed)), no_op=True,
                                     full_parse=full_parse)

        # Re-index the re-parsed functions *in place* (the index object is
        # shared with the engine's program memo); undone on any failure
        # below so a retried update starts from consistent state.
        index = self._index
        undo_index: Dict[str, tuple] = {}
        for _old, new in reparsed_pairs:
            name = new.name
            undo_index[name] = (index.calls[name], index.call_stmts[name],
                                index.expr_calls[name])
            entry = engine._func_index.get(id(new))
            if entry is not None and entry[0] is new:
                _f, calls, stmts, exprs = entry
            else:
                calls, stmts, exprs = index_function(new)
                engine._func_index[id(new)] = (new, calls, stmts, exprs)
            index.calls[name] = calls
            index.call_stmts[name] = stmts
            index.expr_calls[name] = exprs
        try:
            return self._refresh_fast_indexed(
                parsed, touched, deadline, program, prev_program,
                reparsed_pairs, reparsed_pos, reparsed, patched, fp_new,
                changed, full_parse, index)
        except BaseException:
            for name, (calls, stmts, exprs) in undo_index.items():
                index.calls[name] = calls
                index.call_stmts[name] = stmts
                index.expr_calls[name] = exprs
            raise

    def _refresh_fast_indexed(self, parsed, touched, deadline, program,
                              prev_program, reparsed_pairs, reparsed_pos,
                              reparsed, patched, fp_new, changed,
                              full_parse, index) -> ProjectUpdate:
        engine = self.engine
        new_funcs = {new.name: new for _old, new in reparsed_pairs}
        func_lookup = ChainMap(new_funcs, self._func_by_name)

        patch = update_call_graph(self._graph, program, index, set(reparsed),
                                  order=self._graph.order,
                                  names=self._func_names)
        graph = patch.graph
        engine.stats.edges_recomputed += patch.edges_recomputed
        if patch.rebuilt:
            engine.stats.graph_rebuilds += 1

        # Dependent closure over reverse edges of both graph versions.
        dirty: Set[str] = set(changed)
        dependents: List[str] = []
        work = list(dirty)
        seen = set(dirty)
        old_callers = self._graph.callers
        new_callers = graph.callers
        while work:
            name = work.pop()
            a = old_callers.get(name, ())
            b = new_callers.get(name, ())
            callers = {e.caller for e in a}
            if b is not a:
                callers.update(e.caller for e in b)
            for caller in sorted(callers):
                if caller not in seen:
                    seen.add(caller)
                    dependents.append(caller)
                    work.append(caller)
        dependents_t = tuple(dependents)

        doomed = {self._fingerprints[n] for n in dirty
                  if n in self._fingerprints}
        invalidated = engine.invalidate_fingerprints(doomed) if doomed else 0

        # Contexts: reuse the recorded fixpoint verbatim when the changed
        # functions' transfers replay identically (the seeds are unchanged
        # — the name set is).
        if contexts_reusable(self._contexts, self._graph, graph, program,
                             set(reparsed), funcs=func_lookup):
            contexts = self._contexts
            ctx_recomputed = False
            self.context_reuses += 1
        else:
            seeds = {e: self.entry_context for e in self.manifest.entries
                     if e in self._func_names}
            contexts = propagate_contexts(program, graph, seeds=seeds,
                                          entry_context=self.entry_context,
                                          record_transfers=True)
            ctx_recomputed = True

        summaries, sum_changed = update_summaries(
            program, graph, index, self._summaries, set(reparsed),
            funcs=func_lookup, names=self._func_names, complete=True)

        # Collective-function set: summary may-emptiness equals call-graph
        # reachability, so flips keep the set exact without a fixpoint.
        cf = self._collective_funcs
        flips = [n for n in sum_changed
                 if bool(summaries[n].collectives) != (n in cf)]
        if flips:
            cf = set(cf)
            for n in flips:
                if summaries[n].collectives:
                    cf.add(n)
                else:
                    cf.discard(n)
        cf_changed = bool(flips)

        plan_dirty = set(reparsed)
        for n in flips:
            plan_dirty.update(e.caller for e in graph.callers.get(n, ()))
        plan = update_plan(self._plan, graph, contexts, summaries,
                           plan_dirty, set())

        facts = engine.update_program_facts(prev_program, program,
                                            changed=reparsed, removed=(),
                                            collective_funcs=cf, index=index,
                                            changed_positions=reparsed_pos)

        # Scope: exactly the functions whose merged artifacts could differ
        # — new bodies, shifted lines, a changed cache-key ingredient
        # (collective callees, expression-call tokens), or a changed
        # context word set / witness chain.
        scope: Set[str] = set(reparsed) | set(patched)
        for n in flips:
            scope.update(e.caller for e in graph.callers.get(n, ()))
        for n in plan_dirty:
            if plan.extra_tokens.get(n) != self._plan.extra_tokens.get(n):
                scope.add(n)
        if ctx_recomputed:
            prev_ctx = self._contexts
            for n in graph.order:
                if n in scope:
                    continue
                words = contexts.contexts.get(n, ())
                if words != prev_ctx.contexts.get(n, ()):
                    scope.add(n)
                    continue
                for w in words:
                    if (contexts.chains.get((n, w))
                            != prev_ctx.chains.get((n, w))):
                        scope.add(n)
                        break

        if deadline is not None:
            deadline.check("session.plan")
        fault_site("session.analyze")
        lazy = engine.analyze(
            program, initial_words={}, precision=self.precision,
            interprocedural=True, entry_context=self.entry_context,
            plan=plan, deadline=deadline, facts=facts, scope=scope,
            scope_funcs=[func_lookup[n] for n in sorted(scope)])
        record = engine.last
        reanalyzed = record.missed_functions
        dep_reanalyzed = [n for n in reanalyzed if n not in dirty]
        engine.stats.dependency_invalidations += len(dep_reanalyzed)
        engine.stats.assembly_reuses += len(program.funcs) - len(scope)

        if deadline is not None:
            deadline.check("session.render")

        # Per-function report deltas (applied to the cache at commit).
        cache = self._report_cache
        func_file = self._func_file
        requested = facts.requested
        new_entries: Dict[str, dict] = {}
        base_put: Dict[str, Tuple[dict, ...]] = {}
        base_del: List[str] = []
        thread_put: Dict[str, dict] = {}
        thread_del: List[str] = []
        flag_add: List[str] = []
        flag_del: List[str] = []
        sites_add: List[str] = []
        sites_del: List[str] = []
        old_scope_fps: Set[str] = set()
        new_scope_findings: Dict[str, dict] = {}
        scope_sorted = sorted(scope)
        edges_changed = any(
            {e.callee for e in graph.edges[n]}
            != {e.callee for e in self._graph.edges[n]}
            for n in reparsed)
        for name in scope_sorted:
            for f in cache.base.get(name, ()):
                old_scope_fps.add(f["fingerprint"])
            old_tl = cache.thread.get(name)
            if old_tl is not None:
                old_scope_fps.add(old_tl["fingerprint"])
            art, words, _infos = lazy.merge_one(func_lookup[name])
            new_entries[name] = _summary_entry(art, words, summaries[name])
            findings = [diagnostic_finding(d)
                        for d in (list(art.monothread.diagnostics)
                                  + list(art.concurrency.diagnostics)
                                  + list(art.sequence.diagnostics))]
            for f in findings:
                _qualify_finding(f, func_file)
                new_scope_findings[f["fingerprint"]] = f
            if findings:
                base_put[name] = tuple(findings)
            elif name in cache.base:
                base_del.append(name)
            tl = _thread_level_finding(name, art, requested)
            if tl is not None:
                _qualify_finding(tl, func_file)
                thread_put[name] = tl
                new_scope_findings[tl["fingerprint"]] = tl
            elif name in cache.thread:
                thread_del.append(name)
            if art.flagged != (name in cache.flagged):
                (flag_add if art.flagged else flag_del).append(name)
            if bool(art.sites) != (name in cache.has_sites):
                (sites_add if art.sites else sites_del).append(name)
        for name in sum_changed - scope:
            entry = cache.entries.get(name)
            if entry is not None:
                entry = dict(entry)
                entry["collective_summary"] = dict(summaries[name].collectives)
                new_entries[name] = entry

        # Instrumentation plan: recomputed only when an input changed
        # (flagged set, call edges, collective reachability, site owners).
        flagged_changed = bool(flag_add or flag_del)
        sites_changed = bool(sites_add or sites_del)
        if (patch.rebuilt or cf_changed or edges_changed or flagged_changed
                or sites_changed):
            flagged_now = (cache.flagged | set(flag_add)) - set(flag_del)
            sites_now = (cache.has_sites | set(sites_add)) - set(sites_del)
            to_instrument = set(flagged_now)
            reachable: Set[str] = set()
            bfs = list(flagged_now)
            while bfs:
                f = bfs.pop()
                for e in graph.edges.get(f, ()):
                    if e.callee not in reachable:
                        reachable.add(e.callee)
                        bfs.append(e.callee)
            to_instrument |= {f for f in reachable if f in cf}
            instrumented = {n for n in to_instrument if n in sites_now}
        else:
            instrumented = cache.instrumented
        for name in scope:
            new_entries[name]["instrumented"] = name in instrumented
        if instrumented is not cache.instrumented:
            for name in (instrumented ^ cache.instrumented) - scope:
                entry = dict(new_entries.get(name) or cache.entries[name])
                entry["instrumented"] = name in instrumented
                new_entries[name] = entry

        added = tuple(f for fp, f in new_scope_findings.items()
                      if fp not in self._findings)
        gone = tuple(fp for fp in old_scope_fps
                     if fp not in new_scope_findings)

        # Commit — every mutation below is a small per-name delta.
        self._commit_files(parsed, set())
        self._program = program
        self._fingerprints.update(fp_new)
        if patch.rebuilt:
            self._callers = {
                name: tuple(e.caller for e in graph.callers[name])
                for name in graph.order}
        else:
            affected: Set[str] = set()
            for name in reparsed:
                affected.update(e.callee for e in graph.edges[name])
                affected.update(e.callee
                                for e in self._graph.edges[name])
            for callee in affected:
                self._callers[callee] = tuple(
                    e.caller for e in graph.callers.get(callee, ()))
        self._graph = graph
        self._contexts = contexts
        self._summaries = summaries
        self._plan = plan
        self._collective_funcs = cf
        self._func_by_name.update(new_funcs)
        cache.entries.update(new_entries)
        for name in base_del:
            cache.base.pop(name, None)
        cache.base.update(base_put)
        for name in thread_del:
            cache.thread.pop(name, None)
        cache.thread.update(thread_put)
        cache.flagged.difference_update(flag_del)
        cache.flagged.update(flag_add)
        cache.has_sites.difference_update(sites_del)
        cache.has_sites.update(sites_add)
        cache.requested = requested
        if instrumented is not cache.instrumented:
            cache.instrumented = instrumented
            cache.instrumented_sorted = sorted(instrumented)
        if cf_changed:
            cache.collective_sorted = sorted(cf)
        if flagged_changed:
            cache.flagged_sorted = sorted(cache.flagged)
        for fp in old_scope_fps:
            self._findings.pop(fp, None)
        self._findings.update(new_scope_findings)
        self._report_doc = None
        self.seq += 1
        self.fast_updates += 1
        return self._make_update(
            tuple(sorted(parsed)), no_op=not (changed or patched),
            full_parse=full_parse, changed=changed, removed=(),
            patched=tuple(patched), dependents=dependents_t,
            reanalyzed=reanalyzed, invalidated=invalidated,
            added=added, gone=gone)

    # -- report assembly -----------------------------------------------------

    def _build_report_cache(self, analysis, report: dict) -> _ReportCache:
        """Snapshot the per-function report pieces of a full analysis (the
        findings in ``report`` are already file-qualified)."""
        entries: Dict[str, dict] = {}
        base: Dict[str, List[dict]] = {}
        thread: Dict[str, dict] = {}
        flagged: Set[str] = set()
        has_sites: Set[str] = set()
        instrumented: Set[str] = set()
        summaries = analysis.summaries
        for name, fa in analysis.functions.items():
            entry = _summary_entry(fa, fa.context_words, summaries[name])
            entry["instrumented"] = fa.instrumented
            entries[name] = entry
            if fa.flagged:
                flagged.add(name)
            if fa.sites:
                has_sites.add(name)
            if fa.instrumented:
                instrumented.add(name)
        for finding in report["findings"]:
            name = finding.get("function", "")
            if finding.get("code") == ErrorCode.THREAD_LEVEL.value:
                thread[name] = finding
            else:
                base.setdefault(name, []).append(finding)
        return _ReportCache(
            entries=entries,
            base={n: tuple(fs) for n, fs in base.items()},
            thread=thread,
            flagged=flagged, has_sites=has_sites, instrumented=instrumented,
            requested=analysis.requested_level,
            collective_sorted=sorted(analysis.collective_funcs),
            flagged_sorted=sorted(flagged),
            instrumented_sorted=sorted(instrumented),
        )

    def _render_cached_report(self, program: A.Program,
                              cache: _ReportCache) -> dict:
        """Assemble the full Report IR document from the per-function cache
        — byte-identical (via :func:`~repro.core.report.render_json`) to a
        cold ``report_from_analysis`` of the same program state."""
        findings: List[dict] = []
        for func in program.funcs:
            findings.extend(cache.base.get(func.name, ()))
        if cache.requested is not None:
            for func in program.funcs:
                tl = cache.thread.get(func.name)
                if tl is not None:
                    findings.append(tl)
        warnings_by_code: Dict[str, int] = {c.value: 0 for c in ErrorCode}
        for f in findings:
            warnings_by_code[f["code"]] += 1
        summary: Dict[str, Any] = {
            "functions": dict(cache.entries),
            "warnings_total": len(findings),
            "warnings_by_code": warnings_by_code,
            "collective_functions": list(cache.collective_sorted),
            "flagged_functions": list(cache.flagged_sorted),
            "instrumented_functions": list(cache.instrumented_sorted),
            "requested_level": (cache.requested.mpi_name
                                if cache.requested is not None else None),
            "verified": not findings,
            "precision": self.precision,
            "interprocedural": True,
        }
        return build_report("project",
                            source={"file": self.manifest.root},
                            findings=findings, summary=summary)

    def _commit_files(self, parsed: Dict[str, _ParsedFile],
                      closed: Set[str]) -> None:
        for rel in closed:
            self._files.pop(rel, None)
        for rel, p in parsed.items():
            prev = self._files.get(rel)
            if prev is not None and not p.changed_text:
                continue  # same text, same objects: keep the cached state
            self._files[rel] = _ProjectFile(
                rel=rel, source=p.source, funcs=p.funcs, chunks=p.chunks,
                names=tuple(f.name for f in p.funcs),
                sigs=self._signature_map(p.funcs))

    def _make_update(self, files: Tuple[str, ...], no_op: bool,
                     full_parse: bool,
                     changed: Tuple[str, ...] = (),
                     removed: Tuple[str, ...] = (),
                     patched: Tuple[str, ...] = (),
                     dependents: Tuple[str, ...] = (),
                     reanalyzed: Tuple[str, ...] = (),
                     invalidated: int = 0,
                     added: Tuple[dict, ...] = (),
                     gone: Tuple[str, ...] = ()) -> ProjectUpdate:
        delta = ProjectUpdate(
            files=files, seq=self.seq, no_op=no_op, full_parse=full_parse,
            changed=changed, removed=removed, patched=patched,
            dependents=dependents, reanalyzed=reanalyzed,
            invalidated_entries=invalidated, findings_added=added,
            findings_removed=gone, findings_total=len(self._findings),
        )
        delta.report = build_report(
            "project",
            source={"file": self.manifest.root},
            findings=list(delta.findings_added),
            verdict="findings" if delta.findings_total else "clean",
            summary={
                "update": delta.seq,
                "incremental": {
                    "no_op": delta.no_op,
                    "full_parse": delta.full_parse,
                    "files": list(delta.files),
                    "changed": list(delta.changed),
                    "removed": list(delta.removed),
                    "patched": list(delta.patched),
                    "dependents": list(delta.dependents),
                    "reanalyzed": list(delta.reanalyzed),
                    "invalidated_entries": delta.invalidated_entries,
                    "findings_added": len(delta.findings_added),
                    "findings_removed": list(delta.findings_removed),
                    "findings_total": delta.findings_total,
                },
            },
        )
        return delta


def _qualify_finding(finding: dict, func_file: Dict[str, str]) -> None:
    finding["file"] = func_file.get(finding.get("function", ""), "")
    chain = finding.get("call_path", [])
    finding["call_path_files"] = [func_file.get(n, "") for n in chain]
    del finding["fingerprint"]
    finding["fingerprint"] = finding_fingerprint(finding)


def _qualify_findings(findings: List[dict],
                      func_file: Dict[str, str]) -> None:
    """File-qualify findings in place: the defining file of the finding's
    function, the files along the witness call chain, and a fingerprint
    recomputed over both (so the same diagnostic in two files can never
    collide)."""
    for finding in findings:
        _qualify_finding(finding, func_file)


# ---------------------------------------------------------------------------
# serve front end
# ---------------------------------------------------------------------------


def _error_report(root: str, path: Optional[str],
                  messages: List[str]) -> dict:
    return build_report("project", source={"file": path or root},
                        findings=[], verdict="error",
                        summary={"errors": list(messages)})


def _timeout_report(root: str, exc: DeadlineExceeded,
                    deadline_ms: float) -> dict:
    return build_report(
        "project", source={"file": root}, findings=[], verdict="error",
        summary={
            "errors": [str(exc)],
            "timeout": {
                "deadline_ms": deadline_ms,
                "site": exc.site,
                "elapsed_ms": round(exc.elapsed * 1000.0, 1),
            },
        })


def _internal_error_report(root: str, failure: Failure,
                           request: str) -> dict:
    return build_report(
        "project", source={"file": root}, findings=[], verdict="error",
        summary={
            "errors": [f"internal error: {failure.error_type}: "
                       f"{failure.message}"],
            "failure": failure.as_dict(),
            "request": request,
        })


def run_project_serve(session: ProjectSession, stdin=None, stdout=None,
                      deadline_ms: Optional[float] = None,
                      clock=time.monotonic) -> int:
    """The ``parcoach project serve`` loop — same line protocol and
    resilience contract as ``parcoach serve``, at project scope.

    Commands (any may be prefixed ``@ID``; the id is echoed back as
    ``request_id``)::

        open REL       (re)read REL (relative to the project root), fold it
                       into the merged program, emit the delta report
        edit REL       alias of open (an editor's didChange)
        close REL      drop REL from the project, emit the delta report
        rename OLD NEW atomic move: fold NEW in and drop OLD in one update
                       (fingerprints survive; findings re-qualify to NEW)
        analyze        (re)read every project file, emit the delta report
        stats          engine + session + project counters
        ping           liveness (never analyzes)
        quit           exit 0 (EOF does the same)

    Crash isolation, the self-heal ladder (recover the offending file →
    rebuild the session → internal-error report) and the ``deadline_ms``
    degradation ladder (timeout report → no-interprocedural retry → cold
    recover) mirror :func:`repro.core.session.run_serve`."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    root = session.manifest.root

    def respond(doc: dict, request_id: Optional[str]) -> None:
        if request_id is not None:
            doc = dict(doc)
            doc["request_id"] = request_id
        payload = render_json(doc)
        try:
            written = fault_site("serve.emit", payload)
            if written != payload:
                raise OSError("short write on response stream")
            stdout.write(payload)
            stdout.flush()
            return
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            session.record_failure("serve.emit", exc)
            session.recoveries += 1
        stdout.write(payload)
        stdout.flush()

    def run_update(rel: Optional[str], deadline: Optional[Deadline],
                   interprocedural: Optional[bool] = None,
                   closing: bool = False,
                   rename_to: Optional[str] = None) -> ProjectUpdate:
        if rename_to is not None:
            return session.rename_file(rel, rename_to, deadline=deadline,
                                       interprocedural=interprocedural)
        if closing:
            return session.close_file(rel, deadline=deadline,
                                      interprocedural=interprocedural)
        if rel is None:
            return session.update_all(deadline=deadline,
                                      interprocedural=interprocedural)
        return session.update_file(rel, deadline=deadline,
                                   interprocedural=interprocedural)

    def update_with_deadline(rel: Optional[str], request_id: Optional[str],
                             closing: bool,
                             rename_to: Optional[str]) -> None:
        if deadline_ms is None:
            respond(run_update(rel, None, closing=closing,
                               rename_to=rename_to).report, request_id)
            return
        try:
            delta = run_update(rel, Deadline.after_ms(deadline_ms, clock),
                               closing=closing, rename_to=rename_to)
        except DeadlineExceeded as exc:
            session.timeouts += 1
            session.record_failure(exc.site or "deadline", exc)
            respond(_timeout_report(root, exc, deadline_ms), request_id)
            try:
                delta = run_update(rel, Deadline.after_ms(deadline_ms, clock),
                                   interprocedural=False, closing=closing,
                                   rename_to=rename_to)
            except DeadlineExceeded as exc2:
                session.record_failure(exc2.site or "deadline", exc2, 2)
                if rel is not None:
                    session.recover_file(rel)
                delta = run_update(rel, None, interprocedural=False,
                                   closing=closing, rename_to=rename_to)
            session.degraded += 1
        respond(delta.report, request_id)

    def handle(rel: Optional[str], request_id: Optional[str],
               request: str, closing: bool = False,
               rename_to: Optional[str] = None) -> None:
        for attempt in (1, 2, 3):
            try:
                update_with_deadline(rel, request_id, closing, rename_to)
                return
            except (SessionError, ManifestError) as exc:
                messages = (exc.messages if isinstance(exc, SessionError)
                            else [str(exc)])
                path = exc.path if isinstance(exc, SessionError) else rel
                respond(_error_report(root, path, messages), request_id)
                return
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                failure = session.record_failure("serve.analyze", exc,
                                                 attempt)
                if attempt == 1:
                    if rel is not None:
                        session.recover_file(rel)
                    session.recoveries += 1
                elif attempt == 2:
                    session.rebuild()
                    session.rebuilds += 1
                else:
                    respond(_internal_error_report(root, failure, request),
                            request_id)
                    return

    try:
        for raw in stdin:
            line = raw.strip()
            if not line:
                continue
            request_id: Optional[str] = None
            if line.startswith("@"):
                head, _, rest = line.partition(" ")
                request_id = head[1:]
                line = rest.strip()
                if not line:
                    respond(_error_report(
                        root, None, ["empty command after request id"]),
                        request_id)
                    continue
            parts = line.split(None, 1)
            command = parts[0]
            if command == "quit":
                break
            if command == "ping":
                respond(build_report(
                    "project", source={"file": root}, findings=[],
                    verdict="clean",
                    summary={"ping": {
                        "ok": True,
                        "files": len(session._files),
                        "updates": session.updates,
                        "recoveries": session.recoveries,
                        "rebuilds": session.rebuilds,
                    }}), request_id)
                continue
            if command == "stats":
                respond(build_report("project", source={"file": root},
                                     findings=[], verdict="clean",
                                     summary={"stats": session.stats()}),
                        request_id)
                continue
            if command in ("open", "edit", "close"):
                if len(parts) != 2:
                    respond(_error_report(
                        root, None, [f"usage: {command} PATH"]), request_id)
                    continue
                handle(parts[1], request_id, line,
                       closing=(command == "close"))
                continue
            if command == "rename":
                operands = parts[1].split() if len(parts) == 2 else []
                if len(operands) != 2:
                    respond(_error_report(
                        root, None, ["usage: rename OLD NEW"]), request_id)
                    continue
                handle(operands[0], request_id, line, rename_to=operands[1])
                continue
            if command == "analyze":
                handle(None, request_id, line)
                continue
            respond(_error_report(
                root, None,
                [f"unknown command {command!r} (expected open/edit/close/"
                 f"rename/analyze/stats/ping/quit)"]), request_id)
    except KeyboardInterrupt:
        return 0
    return 0


__all__ = [
    "ProjectSession",
    "ProjectUpdate",
    "run_project_serve",
]
