"""Deterministic fault injection, keyed by named site and hit count.

The paper validates its checks by injecting errors into MPI programs;
this module does the same to the *tool itself*.  Every recovery path in
the resilience layer is guarded by a named **fault site** — a single
:func:`fault_site` call at the exact point where the fault class can
occur in production.  A :class:`FaultPlan` maps ``(site, hit)`` pairs to
fault kinds, so a test (or the ``chaos-smoke`` CI job) can say
"the *third* engine pool submit breaks", run the workload, and get the
same failure on every machine, byte for byte.

Plan syntax (the ``PARCOACH_FAULTS`` environment variable, or
:func:`FaultPlan.parse`)::

    site[:hit]=kind[,site[:hit]=kind ...]

    PARCOACH_FAULTS="engine.pool.submit:3=broken_pool,session.read_file:1=oserror"

``hit`` is 1-based and defaults to 1: the fault fires on exactly that
invocation of the site and never again (hit counters are per-plan and
per-process).  Fault kinds:

``exception``      raise :class:`InjectedFault`
``oserror``        raise ``OSError``
``broken_pool``    raise ``concurrent.futures.process.BrokenProcessPool``
``pickling``       raise ``pickle.PicklingError``
``timeout``        raise :class:`~repro.util.resilience.DeadlineExceeded`
``keyboard``       raise ``KeyboardInterrupt``
``truncate``       return only the first half of the site's payload
                   (a truncated read: no exception, corrupted data)
``hang``           sleep :data:`HANG_SECONDS` (simulates a livelock; pair
                   with a deadline / ``--seed-timeout``)

The registered site catalog is :data:`SITES`; parsing rejects unknown
sites so plans cannot silently rot when code moves.  With no plan
installed, :func:`fault_site` is a near-free no-op (one module attribute
read), so the hooks stay compiled into production paths permanently —
exactly like the paper keeps its runtime checks cheap enough to ship.
"""

from __future__ import annotations

import os
import pickle
import threading
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .resilience import DeadlineExceeded

#: Seconds an injected ``hang`` sleeps — long enough that any sane
#: deadline/seed-timeout fires first, short enough that a leaked daemon
#: thread cannot outlive a test session by much.
HANG_SECONDS = 30.0

#: The registered fault sites (keep ``docs/resilience.md`` in sync).
SITES = frozenset({
    "engine.pool.submit",   # before each process-pool fan-out attempt
    "engine.task",          # before each serial cache-miss analysis
    "session.read_file",    # after a session re-reads a file (payload: text)
    "session.parse_chunk",  # before an incremental chunk parse
    "session.analyze",      # before the engine analyze of an update
    "store.evict",          # before fingerprint eviction from the store
    "serve.emit",           # before a serve/watch response line is written
    "fuzz.seed",            # inside one fuzz seed's oracle body
    "fuzz.oracle",          # at the start of each differential-oracle run
    "project.manifest_read",  # after a project manifest is read (payload: text)
    "project.shard_lock",   # before a shard lock is taken for a store write
    "project.patch",        # before a line-offset patch of one function
})


class InjectedFault(Exception):
    """The generic injected error (kind ``exception``)."""


class FaultPlanError(ValueError):
    """A ``PARCOACH_FAULTS`` spec that does not parse or names an
    unregistered site / unknown kind."""


_KINDS = ("exception", "oserror", "broken_pool", "pickling", "timeout",
          "keyboard", "truncate", "hang")


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (for assertions and stats)."""

    site: str
    hit: int
    kind: str


@dataclass
class FaultPlan:
    """A deterministic fault schedule: ``(site, hit) -> kind``."""

    #: site -> {hit -> kind}
    rules: Dict[str, Dict[int, str]] = field(default_factory=dict)
    #: Per-site invocation counters (1-based after the first fire).
    hits: Dict[str, int] = field(default_factory=dict)
    #: Faults that fired, in order.
    fired: List[FaultEvent] = field(default_factory=list)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        plan = cls()
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise FaultPlanError(f"bad fault rule {part!r} "
                                     f"(expected site[:hit]=kind)")
            where, kind = part.split("=", 1)
            kind = kind.strip()
            if kind not in _KINDS:
                raise FaultPlanError(f"unknown fault kind {kind!r} "
                                     f"(expected one of {', '.join(_KINDS)})")
            if ":" in where:
                site, hit_text = where.rsplit(":", 1)
                try:
                    hit = int(hit_text)
                except ValueError:
                    raise FaultPlanError(
                        f"bad hit count in {part!r}") from None
            else:
                site, hit = where, 1
            site = site.strip()
            if site not in SITES:
                raise FaultPlanError(
                    f"unregistered fault site {site!r} "
                    f"(known: {', '.join(sorted(SITES))})")
            if hit < 1:
                raise FaultPlanError(f"hit count must be >= 1 in {part!r}")
            plan.rules.setdefault(site, {})[hit] = kind
        return plan

    def fire(self, site: str, payload=None):
        """Record one invocation of ``site``; trigger its fault if this is
        the scheduled hit.  Returns ``payload`` (possibly transformed)."""
        n = self.hits.get(site, 0) + 1
        self.hits[site] = n
        kind = self.rules.get(site, {}).get(n)
        if kind is None:
            return payload
        self.fired.append(FaultEvent(site=site, hit=n, kind=kind))
        detail = f"injected {kind} at {site} (hit {n})"
        if kind == "exception":
            raise InjectedFault(detail)
        if kind == "oserror":
            raise OSError(detail)
        if kind == "broken_pool":
            raise BrokenProcessPool(detail)
        if kind == "pickling":
            raise pickle.PicklingError(detail)
        if kind == "timeout":
            raise DeadlineExceeded(site, 0.0, 0.0)
        if kind == "keyboard":
            raise KeyboardInterrupt(detail)
        if kind == "hang":
            import time
            time.sleep(HANG_SECONDS)
            return payload
        # truncate: hand back only the first half of the payload.
        if payload is None:
            return payload
        return payload[: len(payload) // 2]


#: The installed plan (None = faults off).  ``_env_checked`` makes the
#: PARCOACH_FAULTS lookup happen at most once per process unless a test
#: resets it via install_plan/clear_plan.
_plan: Optional[FaultPlan] = None
_env_checked = False


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-wide (None disables injection)."""
    global _plan, _env_checked
    _plan = plan
    _env_checked = True


def clear_plan() -> None:
    """Disable injection and allow a later re-read of ``PARCOACH_FAULTS``
    (tests call this in teardown)."""
    global _plan, _env_checked
    _plan = None
    _env_checked = False


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, lazily loaded from ``PARCOACH_FAULTS`` on first
    use (so CLI processes need no extra wiring)."""
    global _plan, _env_checked
    if not _env_checked:
        _env_checked = True
        spec = os.environ.get("PARCOACH_FAULTS", "")
        if spec:
            _plan = FaultPlan.parse(spec)
    return _plan


#: Thread idents whose fault-site hits are suppressed.  A fuzz seed that
#: exceeds its ``--seed-timeout`` keeps running on its (daemon) body thread
#: — Python threads cannot be killed — and every fault site it reaches
#: after the timeout would advance the *shared* plan's hit counters,
#: shifting scheduled faults onto the wrong later seeds.  The campaign
#: quarantines the zombie's thread ident, turning its ``fault_site`` calls
#: into no-ops (hits untouched, nothing fires), so the deterministic plan
#: keeps addressing live seeds only.
_quarantined: Set[int] = set()
_quarantine_lock = threading.Lock()


def quarantine_thread(ident: Optional[int]) -> None:
    """Suppress all future fault-site activity of the thread ``ident``."""
    if ident is None:
        return
    with _quarantine_lock:
        _quarantined.add(ident)


def release_quarantine(ident: Optional[int]) -> None:
    """Lift a quarantine (thread idents are reused by the OS; callers that
    recycle threads should release stale entries)."""
    if ident is None:
        return
    with _quarantine_lock:
        _quarantined.discard(ident)


def quarantined_count() -> int:
    return len(_quarantined)


def fault_site(site: str, payload=None):
    """The production hook: a no-op returning ``payload`` unless a plan
    schedules a fault for this invocation of ``site``."""
    plan = active_plan()
    if plan is None:
        return payload
    if _quarantined and threading.get_ident() in _quarantined:
        return payload
    return plan.fire(site, payload)


__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultPlanError",
    "HANG_SECONDS",
    "InjectedFault",
    "SITES",
    "active_plan",
    "clear_plan",
    "fault_site",
    "install_plan",
    "quarantine_thread",
    "quarantined_count",
    "release_quarantine",
]
