"""Greedy delta debugging (ddmin) over an arbitrary item sequence.

The classic Zeller/Hildebrandt reduction loop, generic over the item type:
trace minimization runs it over schedule *choice names* (strings), program
reduction over *statement indices* (ints).  The caller supplies the
interestingness predicate; ddmin only removes chunks and keeps a candidate
when the predicate still holds, so a (1-minimal, budget permitting)
subsequence comes back.

``failing(candidate)`` must be deterministic for the 1-minimality claim to
mean anything — both users replay fully deterministic runs.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")


def ddmin(
    failing: Callable[[List[T]], bool],
    items: Sequence[T],
    budget: int = 200,
) -> List[T]:
    """Minimize ``items`` under ``failing``: returns a subsequence for which
    ``failing`` still returns True (the original sequence is assumed
    failing).  At most ``budget`` predicate evaluations are spent."""
    spent = 0

    def test(candidate: List[T]) -> bool:
        nonlocal spent
        if spent >= budget:
            return False
        spent += 1
        return failing(candidate)

    current = list(items)
    if test([]):  # the empty input already reproduces
        return []
    granularity = 2
    while len(current) >= 2 and spent < budget:
        chunk = max(1, len(current) // granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            candidate = current[:start] + current[start + chunk:]
            if candidate and test(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current
