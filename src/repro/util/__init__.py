"""repro.util — small shared algorithmic utilities.

* :func:`repro.util.ddmin.ddmin` — the greedy delta-debugging core shared
  by schedule-trace minimization (:mod:`repro.explore.minimize`) and
  fuzzer counterexample reduction (:mod:`repro.fuzz.reduce`).
* :mod:`repro.util.resilience` — deadlines, bounded deterministic retry
  with backoff, structured failure records.
* :mod:`repro.util.faultinject` — the deterministic fault-injection
  registry behind ``PARCOACH_FAULTS`` (named sites, hit counts).
* :mod:`repro.util.probe` — thread-local analysis-path probes, the
  coverage-guided fuzzer's feedback channel.
* :func:`repro.util.brepr.bounded_repr` — big-int-safe ``repr`` for the
  state-fingerprint and observation-hash paths.
"""

from .brepr import bounded_repr
from .ddmin import ddmin
from .faultinject import FaultPlan, InjectedFault, fault_site
from .probe import bucket, collecting, probe, probes_active
from .resilience import Deadline, DeadlineExceeded, Failure, RetryPolicy, retry

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "Failure",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "bounded_repr",
    "bucket",
    "collecting",
    "ddmin",
    "fault_site",
    "probe",
    "probes_active",
    "retry",
]
