"""repro.util — small shared algorithmic utilities.

Currently: :func:`repro.util.ddmin.ddmin`, the greedy delta-debugging core
shared by schedule-trace minimization (:mod:`repro.explore.minimize`) and
fuzzer counterexample reduction (:mod:`repro.fuzz.reduce`).
"""

from .ddmin import ddmin

__all__ = ["ddmin"]
