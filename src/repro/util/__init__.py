"""repro.util — small shared algorithmic utilities.

* :func:`repro.util.ddmin.ddmin` — the greedy delta-debugging core shared
  by schedule-trace minimization (:mod:`repro.explore.minimize`) and
  fuzzer counterexample reduction (:mod:`repro.fuzz.reduce`).
* :mod:`repro.util.resilience` — deadlines, bounded deterministic retry
  with backoff, structured failure records.
* :mod:`repro.util.faultinject` — the deterministic fault-injection
  registry behind ``PARCOACH_FAULTS`` (named sites, hit counts).
"""

from .ddmin import ddmin
from .faultinject import FaultPlan, InjectedFault, fault_site
from .resilience import Deadline, DeadlineExceeded, Failure, RetryPolicy, retry

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "Failure",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "ddmin",
    "fault_site",
    "retry",
]
