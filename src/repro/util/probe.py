"""Thread-local analysis-path probes — the coverage feedback channel.

The coverage-guided fuzzer (``repro.fuzz.coverage``) wants to know *which
paths* one seed exercised: grammar productions fired by the generator,
static-analysis decisions taken by the driver/call-graph layers, summary
classes reached.  Those layers must not depend on the fuzz package (or pay
anything when fuzzing is off), so the channel is this tiny module: a
thread-local counter sink.

``probe(name)`` increments ``name`` in the sink installed on the *calling
thread*, and is a near-free no-op (one ``getattr`` on a thread local) when
no sink is installed — the production cost of an instrumented path.
``collecting()`` installs a fresh sink for a ``with`` block and yields the
counter dict.  Sinks are per-thread by design: a fuzz seed body evaluates
generation + analysis synchronously on one thread, so probes fired by
*other* threads (simulated ranks, pool workers, a timed-out zombie seed —
see ``docs/fuzzing.md``) can never leak into another seed's signature.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator

_tls = threading.local()


def probe(name: str) -> None:
    """Count one hit of the probe ``name`` on this thread's sink (no-op
    when no sink is installed)."""
    sink = getattr(_tls, "sink", None)
    if sink is not None:
        sink[name] = sink.get(name, 0) + 1


def probes_active() -> bool:
    """True when the calling thread has a sink installed (lets a caller
    skip building expensive probe *arguments*; plain ``probe()`` calls
    don't need the check)."""
    return getattr(_tls, "sink", None) is not None


@contextmanager
def collecting() -> Iterator[Dict[str, int]]:
    """Install a fresh sink on the calling thread for the ``with`` block;
    yields the live counter dict.  Nests: the previous sink (if any) is
    restored on exit and does *not* observe the inner block's probes."""
    previous = getattr(_tls, "sink", None)
    counts: Dict[str, int] = {}
    _tls.sink = counts
    try:
        yield counts
    finally:
        _tls.sink = previous


def bucket(count: int) -> int:
    """AFL-style logarithmic bucket of a hit count (0→0, 1→1, 2-3→2,
    4-7→3, ...) — coarse enough that counter jitter does not mint new
    coverage features."""
    return count.bit_length()


__all__ = ["probe", "probes_active", "collecting", "bucket"]
