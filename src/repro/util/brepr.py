"""Bounded ``repr`` for state hashing — big-int safe, deterministic.

CPython 3.11 caps ``int → str`` conversion at 4300 digits and raises
``ValueError`` past it.  Fuzzed programs hit this trivially (an
``x = x * x`` loop squares its way to astronomically large values within
a handful of iterations), and two hashing paths in the runtime feed raw
cell values through ``repr``: the interpreter's shared-state fingerprint
(:meth:`Interpreter._shared_state`) and the cooperative scheduler's
per-thread observation hash (:meth:`SchedHooks.note_observation`).  An
unbounded ``repr`` there kills the rank thread mid-run, which presents as
a world deadlock or an ``internal error`` crash — both found by the
coverage-guided fuzz campaign (see ``docs/fuzzing.md``).

:func:`bounded_repr` digests any int wider than 256 bits to
``bigint:<bit_length>:<low 64 bits>`` — still deterministic, still
collision-poor for fingerprinting — and recurses through tuples/lists so
composite observation records stay safe.  Everything else is plain
``repr``.
"""

from __future__ import annotations

#: Ints at or below this width are repr'd exactly; wider ones are digested.
#: 256 bits is far beyond anything the mini-language's semantics care about
#: and far below the 4300-digit (~14k bit) conversion limit.
_EXACT_BITS = 256


def bounded_repr(value: object) -> str:
    """Deterministic ``repr`` that never trips the int→str digit limit."""
    # bool is an int subclass but repr's fine; check int exactly enough.
    if isinstance(value, int) and not isinstance(value, bool) \
            and value.bit_length() > _EXACT_BITS:
        return (f"bigint:{value.bit_length()}:"
                f"{value & ((1 << 64) - 1):#x}")
    if isinstance(value, tuple):
        inner = ", ".join(bounded_repr(item) for item in value)
        return f"({inner},)" if len(value) == 1 else f"({inner})"
    if isinstance(value, list):
        return "[" + ", ".join(bounded_repr(item) for item in value) + "]"
    return repr(value)


__all__ = ["bounded_repr"]
