"""Deadlines, bounded deterministic retry, and structured failure records.

Every long-running subsystem (``parcoach serve``/``watch``, the engine's
process pool, fuzz campaigns) routes its fault handling through this
module, so recovery behaviour is uniform and — because the clock and the
sleep function are injectable everywhere — byte-deterministically
testable.  Three pieces:

* :class:`Deadline` — a monotonic per-request time budget.  Work that can
  take unbounded time calls :meth:`Deadline.check` at its phase
  boundaries; expiry raises :class:`DeadlineExceeded` naming the site
  that noticed, which callers convert into a ``timeout`` report and a
  graceful-degradation retry (see ``docs/resilience.md``).

* :class:`RetryPolicy` / :func:`retry` — bounded retry with exponential
  backoff and **no jitter**: the delay sequence is a pure function of the
  policy (``base_delay * multiplier**k`` capped at ``max_delay``), so a
  test injecting a fake ``sleep`` observes the exact same schedule every
  run.  ``KeyboardInterrupt``/``SystemExit`` are never retried.

* :class:`Failure` — a structured record of one caught exception (site,
  attempt, type, message, traceback digest) suitable for embedding in a
  Report IR summary: the digest is content-addressed, the full traceback
  never leaks into the byte-stable output.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple


class DeadlineExceeded(Exception):
    """A :class:`Deadline` expired.  ``site`` names the checkpoint that
    noticed — useful for telling a slow parse from a slow analysis."""

    def __init__(self, site: str, budget: float, elapsed: float) -> None:
        super().__init__(
            f"deadline exceeded at {site or '<unnamed>'}: "
            f"{elapsed * 1000.0:.0f}ms elapsed of {budget * 1000.0:.0f}ms")
        self.site = site
        self.budget = budget
        self.elapsed = elapsed


class Deadline:
    """A monotonic time budget, started at construction.

    The clock is injectable so deadline behaviour is deterministic under
    test (a fake clock advances exactly when the test says so)."""

    __slots__ = ("budget", "_clock", "_start")

    def __init__(self, seconds: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.budget = float(seconds)
        self._clock = clock
        self._start = clock()

    @classmethod
    def after_ms(cls, ms: float,
                 clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(ms / 1000.0, clock=clock)

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        return self.budget - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, site: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        elapsed = self.elapsed()
        if elapsed >= self.budget:
            raise DeadlineExceeded(site, self.budget, elapsed)


@dataclass(frozen=True)
class Failure:
    """One caught exception, structured for counters and reports."""

    site: str
    attempt: int
    error_type: str
    message: str
    #: SHA-256[:16] of the formatted traceback — stable for identical
    #: failures, never leaks stack frames into byte-stable output.
    traceback_digest: str

    @classmethod
    def from_exception(cls, site: str, attempt: int,
                       exc: BaseException) -> "Failure":
        tb = "".join(traceback.format_exception(type(exc), exc,
                                                exc.__traceback__))
        return cls(
            site=site, attempt=attempt, error_type=type(exc).__name__,
            message=str(exc),
            traceback_digest=hashlib.sha256(
                tb.encode("utf-8")).hexdigest()[:16],
        )

    def as_dict(self) -> dict:
        return {
            "site": self.site,
            "attempt": self.attempt,
            "error_type": self.error_type,
            "message": self.message,
            "traceback_digest": self.traceback_digest,
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff, jitter-free by design (determinism is
    a feature: the whole recovery schedule replays identically)."""

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    retry_on: Tuple[type, ...] = (Exception,)

    def delay(self, failure_count: int) -> float:
        """Backoff before the next attempt, after ``failure_count`` (>= 1)
        failures so far."""
        return min(self.max_delay,
                   self.base_delay * self.multiplier ** (failure_count - 1))


def retry(fn: Callable[[], object],
          policy: RetryPolicy = RetryPolicy(),
          *,
          site: str = "",
          sleep: Callable[[float], None] = time.sleep,
          deadline: Optional[Deadline] = None,
          failures: Optional[List[Failure]] = None) -> object:
    """Call ``fn`` up to ``policy.attempts`` times with deterministic
    backoff between failures.

    Each caught exception is appended to ``failures`` (when given) as a
    :class:`Failure`.  The final failure re-raises; a ``deadline`` that
    expires between attempts also re-raises immediately — no point
    sleeping toward an already-lost budget."""
    last: Optional[BaseException] = None
    for attempt in range(1, policy.attempts + 1):
        try:
            return fn()
        except policy.retry_on as exc:  # noqa: PERF203 - retry loop
            last = exc
            if failures is not None:
                failures.append(Failure.from_exception(site, attempt, exc))
            if attempt == policy.attempts:
                raise
            if deadline is not None and deadline.expired:
                raise
            sleep(policy.delay(attempt))
    raise last  # pragma: no cover - unreachable (loop always returns/raises)


__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "Failure",
    "RetryPolicy",
    "retry",
]
