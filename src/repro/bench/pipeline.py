"""The "compilation" pipeline whose overhead Figure 1 measures.

The paper's baseline is a full GCC compile; the verification adds (a) the
static pass that prints warnings and (b) the verification-code generation.
The analogue here:

* ``base``     — lex + parse + semantic check + the full middle end
  (constant folding, CFG construction, dominators/post-dominators, loop
  detection, liveness and available-expressions dataflow, three-address
  lowering) + source emission: the compiler without PARCOACH;
* ``warnings`` — base + the full static analysis (words, phases 1–3,
  diagnostics) — the paper's "Warnings" bars;
* ``full``     — warnings + instrumentation transform, emitting the
  *instrumented* source — the paper's "Warnings + verification code
  generation" bars.

``compile_source`` runs one mode and returns stage timings so the benchmark
can compute overhead percentages exactly as the figure does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core import ProgramAnalysis, analyze_program, instrument_program
from ..core.instrument import InstrumentationReport
from ..minilang import ast_nodes as A
from ..minilang.parser import parse_program
from ..minilang.pretty import pretty
from ..minilang.semantics import check_program
from ..opt import run_middle_end

MODES = ("base", "warnings", "full")


@dataclass
class CompileResult:
    mode: str
    program: A.Program
    emitted: str
    timings: Dict[str, float] = field(default_factory=dict)
    analysis: Optional[ProgramAnalysis] = None
    report: Optional[InstrumentationReport] = None

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())

    @property
    def warning_count(self) -> int:
        return len(self.analysis.diagnostics) if self.analysis else 0


def compile_source(source: str, mode: str = "base",
                   precision: str = "paper",
                   filename: str = "<bench>") -> CompileResult:
    """Run the pipeline in one of the three modes."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}")
    timings: Dict[str, float] = {}

    t0 = time.perf_counter()
    program = parse_program(source, filename)
    timings["parse"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    issues = check_program(program)
    errors = [i for i in issues if i.severity == "error"]
    if errors:
        raise ValueError("semantic errors in benchmark source:\n" +
                         "\n".join(str(e) for e in errors))
    timings["semantics"] = time.perf_counter() - t0

    analysis: Optional[ProgramAnalysis] = None
    report: Optional[InstrumentationReport] = None
    emit_target: A.Program = program

    # The middle end runs in every mode — it is the baseline the paper's
    # overhead percentages are relative to.
    t0 = time.perf_counter()
    middle = run_middle_end(program)
    timings["middle_end"] = time.perf_counter() - t0

    if mode != "base":
        t0 = time.perf_counter()
        analysis = analyze_program(program, precision=precision, cfgs=middle.cfgs)
        timings["analysis"] = time.perf_counter() - t0
        if mode == "full":
            t0 = time.perf_counter()
            # In-place: compiler passes transform the IR they own.
            emit_target, report = instrument_program(analysis, in_place=True)
            timings["instrument"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    emitted = pretty(emit_target)
    timings["emit"] = time.perf_counter() - t0

    return CompileResult(mode=mode, program=program, emitted=emitted,
                         timings=timings, analysis=analysis, report=report)


def overhead_percent(base_seconds: float, mode_seconds: float) -> float:
    """The figure's y-axis: extra compile time relative to the baseline."""
    if base_seconds <= 0:
        raise ValueError("baseline time must be positive")
    return (mode_seconds - base_seconds) / base_seconds * 100.0


def measure_overheads(source: str, repeats: int = 3,
                      precision: str = "paper") -> Dict[str, float]:
    """Best-of-N stage-summed times per mode plus derived overhead %.

    Returns ``{"base": s, "warnings": s, "full": s,
    "warnings_overhead_pct": p, "full_overhead_pct": p}``.
    """
    times: Dict[str, list] = {mode: [] for mode in MODES}
    # Round-robin over the modes instead of blocking per mode: a transient
    # machine-load burst then inflates one *round* of every mode rather
    # than every repeat of one mode, and the per-mode best-of-N discards
    # it.  (Blocked order made the derived overhead percentages flappy on
    # noisy machines — the baseline and the instrumented mode saw
    # different weather.)
    for _ in range(max(1, repeats)):
        for mode in MODES:
            result = compile_source(source, mode, precision)
            times[mode].append(result.total_time)
    best = {mode: min(series) for mode, series in times.items()}
    best["warnings_overhead_pct"] = overhead_percent(best["base"], best["warnings"])
    best["full_overhead_pct"] = overhead_percent(best["base"], best["full"])
    return best
