"""HERA analogue: a multi-physics AMR (adaptive mesh refinement) hydrocode
skeleton.

HERA (Jourdren 2003) is a large CEA AMR platform; the paper uses it as the
"big application" data point of Figure 1.  The generator reproduces the
*shape* that matters for compile-time analysis: a level hierarchy walked
every timestep, per-level hybrid compute kernels (parallel + worksharing),
load-balance decisions guarded by rank-dependent control flow (exactly the
pattern that puts conditionals into PDF+), global reductions for the time
step, and periodic regridding with gather/scatter.
"""

from __future__ import annotations

from typing import List, Tuple


def _kernel_godunov(levels: int) -> str:
    lines = ["void godunov_sweep(int level, int n)", "{"]
    lines.append("    float u[n];")
    lines.append("    float flux[n];")
    lines.append("    #pragma omp parallel")
    lines.append("    {")
    for stage in ("predict", "correct"):
        lines.append("        #pragma omp for")
        lines.append(f"        for (int i_{stage} = 0; i_{stage} < n; i_{stage} += 1)")
        lines.append("        {")
        lines.append(f"            u[mod(i_{stage}, n)] = i_{stage} * 0.5 + level;")
        lines.append(f"            flux[mod(i_{stage}, n)] = u[mod(i_{stage}, n)] * 1.25;")
        lines.append("        }")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _kernel_eos() -> str:
    return "\n".join([
        "void equation_of_state(int level, int n)",
        "{",
        "    float pressure[n];",
        "    float energy[n];",
        "    #pragma omp parallel",
        "    {",
        "        #pragma omp for nowait",
        "        for (int c = 0; c < n; c += 1)",
        "        {",
        "            energy[c] = c * 0.25 + level;",
        "        }",
        "        #pragma omp barrier",
        "        #pragma omp for",
        "        for (int c2 = 0; c2 < n; c2 += 1)",
        "        {",
        "            pressure[c2] = energy[c2] * 0.4;",
        "        }",
        "    }",
        "}",
    ])


def _kernel_timestep() -> str:
    """Global dt reduction — executed by the master thread of a region."""
    return "\n".join([
        "float compute_dt(int level, int n)",
        "{",
        "    float local_dt = 1.0;",
        "    float global_dt = 0.0;",
        "    for (int c = 0; c < n; c += 1)",
        "    {",
        "        local_dt = min(local_dt, 0.1 + c * 0.001);",
        "    }",
        '    MPI_Allreduce(local_dt, global_dt, "min");',
        "    return global_dt;",
        "}",
    ])


def _kernel_regrid() -> str:
    """Regridding: rank-dependent load balancing around collectives — the
    conditional lands in PDF+ and draws a mismatch warning (a true positive
    pattern if the balance flag ever diverged)."""
    return "\n".join([
        "void regrid(int level, int n)",
        "{",
        "    int rank = MPI_Comm_rank();",
        "    int size = MPI_Comm_size();",
        "    float cells = n * 1.0;",
        "    float total = 0.0;",
        '    MPI_Allreduce(cells, total, "sum");',
        "    float avg = total / size;",
        "    if (cells > avg * 1.5)",
        "    {",
        "        float moved = cells - avg;",
        '        MPI_Reduce(moved, total, "sum", 0);',
        "    }",
        "    MPI_Barrier();",
        "}",
    ])


def _kernel_boundary(faces: int) -> str:
    lines = ["void fill_boundary(int level, int n)", "{"]
    lines.append("    int rank = MPI_Comm_rank();")
    lines.append("    int size = MPI_Comm_size();")
    lines.append("    float ghost[n];")
    for f in range(faces):
        lines.append(f"    int nb{f} = mod(rank + {f + 1}, size);")
        lines.append(f"    MPI_Sendrecv(ghost[{f}], nb{f}, {20 + f}, ghost[{f}], nb{f}, {20 + f});")
    lines.append("}")
    return "\n".join(lines)


def _physics_modules(count: int = 10) -> Tuple[List[str], List[str]]:
    """Pure-compute physics kernels (diffusion, advection, source terms…):
    the bulk of a real multi-physics platform's compiled code.
    Returns (sources, function names)."""
    parts: List[str] = []
    fn_names: List[str] = []
    names = ("diffusion", "advection", "viscosity", "gravity", "radiation",
             "chemistry", "turbulence", "elasticity", "ablation", "opacity")
    for i in range(count):
        name = names[i % len(names)] + (str(i // len(names)) if i >= len(names) else "")
        fn_names.append(f"{name}_kernel")
        parts.append("\n".join([
            f"void {name}_kernel(int level, int n)",
            "{",
            "    float q[n];",
            "    float dq[n];",
            "    #pragma omp parallel",
            "    {",
            "        #pragma omp for",
            "        for (int c = 0; c < n; c += 1)",
            "        {",
            f"            q[c] = c * {i + 1}.125 + level;",
            "        }",
            "        #pragma omp for",
            "        for (int c2 = 1; c2 < n; c2 += 1)",
            "        {",
            f"            dq[c2] = (q[c2] - q[c2 - 1]) * 0.5 + {i}.0;",
            "        }",
            "    }",
            "    for (int s = 0; s < 3; s += 1)",
            "    {",
            "        dq[s] = dq[s] * 0.25 + q[s];",
            "    }",
            "}",
        ]))
    return parts, fn_names


def make_hera(levels: int = 4, steps: int = 5, n: int = 64,
              regrid_every: int = 2, physics_modules: int = 12) -> str:
    """The AMR driver program."""
    parts: List[str] = [
        _kernel_godunov(levels),
        _kernel_eos(),
        _kernel_timestep(),
        _kernel_regrid(),
        _kernel_boundary(faces=3),
    ]
    physics_sources, physics_names = _physics_modules(physics_modules)
    parts.extend(physics_sources)
    main = ["void main()", "{"]
    main.append("    MPI_Init_thread(2);")
    main.append("    int rank = MPI_Comm_rank();")
    main.append(f"    int levels = {levels};")
    main.append(f"    int n = {n};")
    main.append("    float t = 0.0;")
    main.append("    float dt = 0.0;")
    main.append(f"    for (int step = 0; step < {steps}; step += 1)")
    main.append("    {")
    main.append("        for (int level = 0; level < levels; level += 1)")
    main.append("        {")
    main.append("            fill_boundary(level, n);")
    main.append("            godunov_sweep(level, n);")
    main.append("            equation_of_state(level, n);")
    for fn in physics_names:
        main.append(f"            {fn}(level, n);")
    main.append("        }")
    main.append("        dt = compute_dt(0, n);")
    main.append("        t = t + dt;")
    main.append(f"        if (mod(step, {regrid_every}) == 0)")
    main.append("        {")
    main.append("            for (int level2 = 0; level2 < levels; level2 += 1)")
    main.append("            {")
    main.append("                regrid(level2, n);")
    main.append("            }")
    main.append("        }")
    main.append("    }")
    main.append("    float checksum = 0.0;")
    main.append('    MPI_Reduce(t, checksum, "sum", 0);')
    main.append("    if (rank == 0)")
    main.append("    {")
    main.append('        print("final time", checksum);')
    main.append("    }")
    main.append("    MPI_Finalize();")
    main.append("}")
    parts.append("\n".join(main))
    return "\n\n".join(parts) + "\n"
