"""EPCC mixed-mode microbenchmark suite analogue (v1.0 style).

The real suite measures MPI operations under different thread-interaction
styles: *master-only* (MPI outside parallel regions or in ``master``),
*funneled* (in ``master`` inside the region), *serialized* (in ``single``),
and *multiple*.  The generator emits one kernel function per
(operation × style) plus a driver ``main`` — the same mix of pragmas and
collectives the paper's compile-time analysis chews through, including the
patterns phase 1 flags (collectives in truly multithreaded code for the
"multiple" style kernels).
"""

from __future__ import annotations

from typing import List

_STYLES = ("masteronly", "funneled", "serialized")


def _kernel_pingpong(style: str, reps: int) -> str:
    name = f"pingpong_{style}"
    lines = [f"void {name}(int n)", "{"]
    lines.append("    int rank = MPI_Comm_rank();")
    lines.append("    int other = 1 - rank;")
    lines.append("    float buf = 1.0;")
    body = [
        f"        for (int r = 0; r < {reps}; r += 1)",
        "        {",
        "            if (rank == 0)",
        "            {",
        "                MPI_Send(buf, other, 1);",
        "                MPI_Recv(buf, other, 2);",
        "            }",
        "            else",
        "            {",
        "                MPI_Recv(buf, other, 1);",
        "                MPI_Send(buf, other, 2);",
        "            }",
        "        }",
    ]
    if style == "masteronly":
        lines.extend(line[4:] for line in body)
    elif style == "funneled":
        lines.append("    #pragma omp parallel")
        lines.append("    {")
        lines.append("        #pragma omp master")
        lines.append("        {")
        lines.extend("    " + line for line in body)
        lines.append("        }")
        lines.append("        #pragma omp barrier")
        lines.append("    }")
    else:  # serialized
        lines.append("    #pragma omp parallel")
        lines.append("    {")
        lines.append("        #pragma omp single")
        lines.append("        {")
        lines.extend("    " + line for line in body)
        lines.append("        }")
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _kernel_collective(op: str, style: str, reps: int) -> str:
    """A collective micro-kernel under one thread-interaction style."""
    name = f"{op.lower()}_{style}"
    if op == "Barrier":
        coll = "MPI_Barrier();"
    elif op == "Reduce":
        coll = 'MPI_Reduce(x, y, "sum", 0);'
    elif op == "Allreduce":
        coll = 'MPI_Allreduce(x, y, "sum");'
    else:
        coll = "MPI_Bcast(x, 0);"
    lines = [f"void {name}(int n)", "{"]
    lines.append("    float x = 1.5;")
    lines.append("    float y = 0.0;")
    rep_open = [f"    for (int r = 0; r < {reps}; r += 1)", "    {"]
    rep_close = ["    }"]
    if style == "masteronly":
        lines.extend(rep_open)
        lines.append(f"        {coll}")
        lines.extend(rep_close)
    elif style == "funneled":
        lines.append("    #pragma omp parallel")
        lines.append("    {")
        lines.extend("    " + line for line in rep_open)
        lines.append("        #pragma omp master")
        lines.append("        {")
        lines.append(f"            {coll}")
        lines.append("        }")
        lines.append("        #pragma omp barrier")
        lines.extend("    " + line for line in rep_close)
        lines.append("    }")
    else:
        lines.append("    #pragma omp parallel")
        lines.append("    {")
        lines.extend("    " + line for line in rep_open)
        lines.append("        #pragma omp single")
        lines.append("        {")
        lines.append(f"            {coll}")
        lines.append("        }")
        lines.extend("    " + line for line in rep_close)
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _kernel_haloexchange(reps: int) -> str:
    lines = ["void haloexchange(int n)", "{"]
    lines.append("    int rank = MPI_Comm_rank();")
    lines.append("    int size = MPI_Comm_size();")
    lines.append("    float halo[n];")
    lines.append("    #pragma omp parallel")
    lines.append("    {")
    lines.append("        #pragma omp for")
    lines.append("        for (int i = 0; i < n; i += 1)")
    lines.append("        {")
    lines.append("            halo[i] = i * 1.0 + rank;")
    lines.append("        }")
    lines.append("    }")
    lines.append(f"    for (int r = 0; r < {reps}; r += 1)")
    lines.append("    {")
    lines.append("        int left = mod(rank - 1 + size, size);")
    lines.append("        int right = mod(rank + 1, size);")
    lines.append("        MPI_Sendrecv(halo[0], left, 7, halo[1], right, 7);")
    lines.append("        MPI_Sendrecv(halo[2], right, 8, halo[3], left, 8);")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _kernel_multiple_unsafe(reps: int) -> str:
    """The "multiple" style the paper warns about: a collective executed by
    every thread of a parallel region — phase 1 flags it."""
    lines = ["void barrier_multiple(int n)", "{"]
    lines.append("    #pragma omp parallel")
    lines.append("    {")
    lines.append(f"        for (int r = 0; r < {reps}; r += 1)")
    lines.append("        {")
    lines.append("            MPI_Barrier();")
    lines.append("        }")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _support_functions(n_variants: int = 6) -> List[str]:
    """The suite's scaffolding: buffer fill/validate, timing statistics,
    delay loops — the bulk of the real suite's compiled code."""
    parts: List[str] = []
    for v in range(n_variants):
        parts.append("\n".join([
            f"void fill_buffer_{v}(int n)",
            "{",
            "    float buf[n];",
            "    #pragma omp parallel",
            "    {",
            "        #pragma omp for",
            f"        for (int i = 0; i < n; i += 1)",
            "        {",
            f"            buf[i] = i * {v + 1}.5 + mod(i, {v + 2});",
            "        }",
            "    }",
            "}",
        ]))
        parts.append("\n".join([
            f"float stats_mean_{v}(int n)",
            "{",
            "    float acc = 0.0;",
            "    float buf[n];",
            "    for (int i = 0; i < n; i += 1)",
            "    {",
            f"        buf[i] = i * {v}.25;",
            "        acc = acc + buf[i];",
            "    }",
            "    return acc / n;",
            "}",
        ]))
        parts.append("\n".join([
            f"float stats_sigma_{v}(int n)",
            "{",
            f"    float mean = stats_mean_{v}(n);",
            "    float acc = 0.0;",
            "    for (int i = 0; i < n; i += 1)",
            "    {",
            "        float d = i * 1.0 - mean;",
            "        acc = acc + d * d;",
            "    }",
            "    return sqrt(acc / n);",
            "}",
        ]))
        parts.append("\n".join([
            f"void delay_{v}(int ticks)",
            "{",
            "    int x = 0;",
            "    for (int t = 0; t < ticks; t += 1)",
            "    {",
            f"        x = mod(x * 1103 + {v * 7 + 1}, 65536);",
            "    }",
            "}",
        ]))
    return parts


def make_epcc_suite(reps: int = 4, include_multiple: bool = True,
                    n: int = 64, support_variants: int = 16) -> str:
    """The full mixed-mode suite as one program."""
    parts: List[str] = _support_functions(support_variants)
    kernels: List[str] = []
    for style in _STYLES:
        parts.append(_kernel_pingpong(style, reps))
        kernels.append(f"pingpong_{style}")
    for op in ("Barrier", "Reduce", "Allreduce", "Bcast"):
        for style in _STYLES:
            parts.append(_kernel_collective(op, style, reps))
            kernels.append(f"{op.lower()}_{style}")
    parts.append(_kernel_haloexchange(reps))
    kernels.append("haloexchange")
    if include_multiple:
        parts.append(_kernel_multiple_unsafe(reps))
        kernels.append("barrier_multiple")

    main = ["void main()", "{"]
    main.append("    MPI_Init_thread(3);")
    main.append(f"    int n = {n};")
    main.append("    float sigma = 0.0;")
    for i, kernel in enumerate(kernels):
        v = i % max(1, support_variants)
        main.append(f"    fill_buffer_{v}(n);")
        main.append("    MPI_Barrier();")
        main.append(f"    {kernel}(n);")
        main.append(f"    sigma = stats_sigma_{v}(n);")
        main.append(f"    delay_{v}(8);")
    main.append('    print("suite done", sigma);')
    main.append("    MPI_Finalize();")
    main.append("}")
    parts.append("\n".join(main))
    return "\n\n".join(parts) + "\n"
