"""Gallery of hybrid MPI+OpenMP programs, erroneous and correct.

Each case records what the *static* analysis must say and what a *dynamic*
run may report — the ground truth for the detection experiments (paper
claim: errors are reported with their type and source lines, and execution
stops before the deadlock becomes unavoidable).

Cases whose runtime outcome depends on thread scheduling list every
acceptable error class and set ``deterministic=False``; tests then assert
membership instead of equality.

Cases that additionally set ``schedule_sensitive=True`` are the exploration
seeds: their bug only manifests under *specific* interleavings, so a single
run — threaded or default-scheduled — may legitimately come out clean.
They are excluded from the correct/erroneous helpers (a bounded number of
retries proves nothing either way) and exercised by ``parcoach explore``
and ``tests/test_explore.py`` instead, which sweep the schedule space
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple, Type

from ..core.diagnostics import ErrorCode
from ..runtime.errors import (
    CollectiveMismatchError,
    ConcurrentCollectiveError,
    DeadlockError,
    ThreadContextError,
    ThreadLevelError,
    ValidationError,
)


@dataclass(frozen=True)
class ErrorCase:
    name: str
    source: str
    description: str
    #: Static warning codes that MUST be present (subset check).
    expect_static: FrozenSet[ErrorCode]
    #: Acceptable error classes for an *instrumented* run; empty = clean run.
    runtime_errors: Tuple[Type[ValidationError], ...] = ()
    #: Acceptable error classes for a *raw* (uninstrumented) run.
    raw_errors: Tuple[Type[ValidationError], ...] = ()
    deterministic: bool = True
    nprocs: int = 2
    num_threads: int = 2
    #: Bug manifests only under specific interleavings: validated by
    #: schedule exploration, not by repeated free-running runs.
    schedule_sensitive: bool = False
    #: Bug is only visible to the interprocedural layer (context
    #: propagation / expression-call points): the intraprocedural mode
    #: provably reports nothing.  ``tests/test_interproc.py`` asserts both
    #: directions; the corpus-stability test excludes these cases.
    interprocedural: bool = False


_CASES = []


def _case(**kwargs) -> None:
    kwargs["expect_static"] = frozenset(kwargs.get("expect_static", ()))
    _CASES.append(ErrorCase(**kwargs))


# -- correct programs ----------------------------------------------------------

_case(
    name="clean_masteronly",
    description="straight-line collectives outside any parallel region: "
                "fully verified, zero instrumentation",
    source="""
void main() {
    MPI_Init_thread(0);
    int x = 7;
    float s = 1.0;
    float g = 0.0;
    MPI_Bcast(x, 0);
    MPI_Allreduce(s, g, "sum");
    MPI_Barrier();
    MPI_Finalize();
}
""",
    expect_static=(),
)

_case(
    name="single_region_ok",
    description="collective inside single: monothreaded (pw = P S), verified",
    source="""
void main() {
    MPI_Init_thread(2);
    #pragma omp parallel
    {
        #pragma omp single
        {
            MPI_Barrier();
        }
    }
    MPI_Finalize();
}
""",
    expect_static=(),
)

_case(
    name="master_region_ok",
    description="collective inside master with explicit barrier: verified, "
                "needs only FUNNELED",
    source="""
void main() {
    MPI_Init_thread(1);
    int x = 3;
    #pragma omp parallel
    {
        #pragma omp master
        {
            MPI_Bcast(x, 0);
        }
        #pragma omp barrier
    }
    MPI_Finalize();
}
""",
    expect_static=(),
)

_case(
    name="singles_separated_by_barrier_ok",
    description="two singles with the implicit barrier in between: ordered, "
                "not concurrent",
    source="""
void main() {
    MPI_Init_thread(2);
    float a = 1.0;
    float b = 0.0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            MPI_Allreduce(a, b, "sum");
        }
        #pragma omp single
        {
            MPI_Barrier();
        }
    }
    MPI_Finalize();
}
""",
    expect_static=(),
)

_case(
    name="loop_collective_fp",
    description="collective inside a counted loop: the classic PARCOACH "
                "conservative warning; the dynamic check then validates the "
                "run as clean (false-positive resolution)",
    source="""
void main() {
    MPI_Init_thread(0);
    float r = 1.0;
    float g = 0.0;
    for (int step = 0; step < 4; step += 1) {
        MPI_Allreduce(r, g, "sum");
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MISMATCH,),
)

_case(
    name="balanced_if_fp",
    description="if/else with one call of the same collective in each arm: "
                "paper-mode warning, counting-mode clean, runtime clean",
    source="""
void main() {
    MPI_Init_thread(0);
    int rank = MPI_Comm_rank();
    float x = 1.0;
    float y = 0.0;
    if (rank == 0) {
        MPI_Allreduce(x, y, "sum");
    }
    else {
        MPI_Allreduce(x, y, "sum");
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MISMATCH,),
)

_case(
    name="early_return_always_barrier",
    description="helper that barriers on every path but returns early on "
                "one of them: paper-mode warning (branch-duplicated "
                "collective), runtime clean — and the CFG post-dominance "
                "must-summary still classifies MPI_Barrier [always], which "
                "the structural rule demoted to conditional",
    source="""
int sync_or_bail(int v) {
    if (v > 100) {
        MPI_Barrier();
        return 100;
    }
    MPI_Barrier();
    return v;
}

void main() {
    MPI_Init_thread(0);
    int x = 1;
    x = sync_or_bail(x);
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MISMATCH,),
)

# -- inter-process mismatches -----------------------------------------------------

_case(
    name="rank_dependent_bcast",
    description="Bcast guarded by rank: only rank 0 calls it — mismatch; "
                "CC stops before the deadlock",
    source="""
void main() {
    MPI_Init_thread(0);
    int rank = MPI_Comm_rank();
    int x = 5;
    if (rank == 0) {
        MPI_Bcast(x, 0);
    }
    MPI_Barrier();
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MISMATCH,),
    runtime_errors=(CollectiveMismatchError,),
    raw_errors=(DeadlockError,),
)

_case(
    name="different_collectives_by_rank",
    description="rank 0 reduces while the others broadcast: both names get "
                "a mismatch warning; raw run deadlocks in the engine",
    source="""
void main() {
    MPI_Init_thread(0);
    int rank = MPI_Comm_rank();
    float a = 2.0;
    float b = 0.0;
    int x = 1;
    if (rank == 0) {
        MPI_Reduce(a, b, "sum", 0);
    }
    else {
        MPI_Bcast(x, 1);
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MISMATCH,),
    runtime_errors=(CollectiveMismatchError,),
    raw_errors=(DeadlockError,),
)

_case(
    name="missing_barrier_one_rank",
    description="rank 0 executes one extra Barrier: counts diverge",
    source="""
void main() {
    MPI_Init_thread(0);
    int rank = MPI_Comm_rank();
    MPI_Barrier();
    if (rank == 0) {
        MPI_Barrier();
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MISMATCH,),
    runtime_errors=(CollectiveMismatchError,),
    raw_errors=(DeadlockError,),
)

_case(
    name="mismatch_through_call",
    description="the divergent collective hides inside a callee: the call "
                "site is the collective point, callee gets instrumented too",
    source="""
void do_sync() {
    MPI_Barrier();
}

void main() {
    MPI_Init_thread(0);
    int rank = MPI_Comm_rank();
    if (rank == 0) {
        do_sync();
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MISMATCH,),
    runtime_errors=(CollectiveMismatchError,),
    raw_errors=(DeadlockError,),
)

# -- multithreaded-context errors -------------------------------------------------

_case(
    name="barrier_in_parallel",
    description="collective executed by every thread of the team: phase 1 "
                "flags it, the ENTER counter aborts at run time",
    source="""
void main() {
    MPI_Init_thread(3);
    #pragma omp parallel num_threads(4)
    {
        work(2000);
        MPI_Barrier();
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MULTITHREADED,),
    runtime_errors=(ThreadContextError, ConcurrentCollectiveError, DeadlockError),
    raw_errors=(ConcurrentCollectiveError, DeadlockError, ThreadLevelError),
    deterministic=False,
)

_case(
    name="collective_in_omp_for",
    description="collective inside a worksharing loop body",
    source="""
void main() {
    MPI_Init_thread(3);
    #pragma omp parallel num_threads(4)
    {
        #pragma omp for
        for (int i = 0; i < 8; i += 1) {
            work(500);
            MPI_Barrier();
        }
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MULTITHREADED,),
    runtime_errors=(ThreadContextError, ConcurrentCollectiveError, DeadlockError),
    raw_errors=(ConcurrentCollectiveError, DeadlockError, ThreadLevelError),
    deterministic=False,
)

_case(
    name="nested_parallel_single",
    description="single inside nested parallelism: one thread *per inner "
                "team* executes the collective (pw = P P S rejected)",
    source="""
void main() {
    MPI_Init_thread(3);
    #pragma omp parallel num_threads(2)
    {
        #pragma omp parallel num_threads(2)
        {
            #pragma omp single
            {
                work(2000);
                MPI_Barrier();
            }
        }
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MULTITHREADED,),
    runtime_errors=(ThreadContextError, ConcurrentCollectiveError, DeadlockError),
    raw_errors=(ConcurrentCollectiveError, DeadlockError, ThreadLevelError),
    deterministic=False,
)

_case(
    name="task_collective",
    description="collective inside an explicit task: outside the paper's "
                "model, conservatively flagged",
    source="""
void main() {
    MPI_Init_thread(3);
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            #pragma omp task
            {
                MPI_Barrier();
            }
        }
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.TASK_CONTEXT,),
    runtime_errors=(),  # undeferred task: one thread executes — run is clean
)

# -- concurrent monothreaded regions ------------------------------------------------

_case(
    name="concurrent_singles_nowait",
    description="single nowait followed by another single: no barrier "
                "between them, different collectives may overlap and the "
                "cross-rank order is nondeterministic",
    source="""
void main() {
    MPI_Init_thread(3);
    float a = 1.0;
    float b = 0.0;
    int x = 2;
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single nowait
        {
            work(4000);
            MPI_Reduce(a, b, "sum", 0);
        }
        #pragma omp single
        {
            MPI_Bcast(x, 0);
        }
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_CONCURRENT,),
    runtime_errors=(ConcurrentCollectiveError, CollectiveMismatchError,
                    DeadlockError, ThreadContextError),
    raw_errors=(ConcurrentCollectiveError, DeadlockError),
    deterministic=False,
)

_case(
    name="sections_two_collectives",
    description="two sections each with a collective: the sections are "
                "concurrent monothreaded regions",
    source="""
void main() {
    MPI_Init_thread(3);
    float a = 1.0;
    float b = 0.0;
    #pragma omp parallel num_threads(2)
    {
        #pragma omp sections
        {
            #pragma omp section
            {
                work(4000);
                MPI_Barrier();
            }
            #pragma omp section
            {
                MPI_Allreduce(a, b, "sum");
            }
        }
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_CONCURRENT,),
    runtime_errors=(ConcurrentCollectiveError, CollectiveMismatchError,
                    DeadlockError, ThreadContextError),
    raw_errors=(ConcurrentCollectiveError, DeadlockError),
    deterministic=False,
)

# -- interleaving-dependent bugs (exploration seeds) ----------------------------------

_case(
    name="racy_single_worker_allreduce",
    description="single nowait whose body only calls the collective when the "
                "*worker* wins the claim: ranks whose claim winners differ "
                "execute different collective sequences — invisible to any "
                "single run where every rank schedules alike (the default), "
                "found by schedule exploration flipping one rank's winner",
    source="""
void main() {
    MPI_Init_thread(3);
    float a = 1.0;
    float b = 0.0;
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single nowait
        {
            if (omp_get_thread_num() == 1) {
                MPI_Allreduce(a, b, "sum");
            }
        }
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MISMATCH,),
    runtime_errors=(CollectiveMismatchError, DeadlockError),
    raw_errors=(DeadlockError,),
    deterministic=False,
    schedule_sensitive=True,
)

_case(
    name="racy_flag_guarded_barrier",
    description="master-only collective racing a worker barrier: the worker "
                "calls MPI_Barrier only while a shared 'done' flag is still "
                "unset, so the bug (concurrent collectives in one rank, or a "
                "cross-rank Bcast/Barrier round mismatch) appears on some "
                "interleavings and vanishes on others",
    source="""
void main() {
    MPI_Init_thread(3);
    int x = 9;
    int done = 0;
    #pragma omp parallel num_threads(2)
    {
        if (omp_get_thread_num() == 0) {
            MPI_Bcast(x, 0);
            done = 1;
        }
        else {
            if (done == 0) {
                MPI_Barrier();
            }
        }
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MISMATCH, ErrorCode.COLLECTIVE_MULTITHREADED),
    runtime_errors=(ConcurrentCollectiveError, CollectiveMismatchError,
                    DeadlockError, ThreadContextError),
    raw_errors=(ConcurrentCollectiveError, DeadlockError),
    deterministic=False,
    schedule_sensitive=True,
)

# -- interprocedural bugs (context-propagation seeds) ---------------------------------
#
# All three are invisible to the intraprocedural analysis: the offending
# call is expression-level (``x = helper(x);`` has no CALL block and no
# CollectiveSite), and each helper is clean under the empty context.  Only
# the interprocedural layer — propagated context words, expression-call
# sequence points, and call-path diagnostics — flags them.

_case(
    name="interproc_helper_in_parallel",
    description="collective inside a helper called (expression-level) from "
                "an omp parallel region: monothreaded under the empty "
                "context, multithreaded under the propagated P context",
    source="""
int bump(int v) {
    MPI_Barrier();
    return v + 1;
}

void main() {
    MPI_Init_thread(3);
    int x = 0;
    #pragma omp parallel num_threads(2)
    {
        x = bump(x);
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MULTITHREADED,),
    runtime_errors=(ThreadContextError, ConcurrentCollectiveError, DeadlockError),
    raw_errors=(ConcurrentCollectiveError, DeadlockError),
    deterministic=False,
    interprocedural=True,
)

_case(
    name="interproc_conditional_collective_helper",
    description="rank-guarded expression call to an always-collective "
                "helper: rank 0 executes one extra Allreduce — the "
                "expression-call sequence point flags the guard, CC stops "
                "the run before the deadlock",
    source="""
int sync_step(int v) {
    float a = 1.0;
    float b = 0.0;
    MPI_Allreduce(a, b, "sum");
    return v + 1;
}

void main() {
    MPI_Init_thread(0);
    int r = MPI_Comm_rank();
    int x = 1;
    if (r == 0) {
        x = sync_step(x);
    }
    MPI_Barrier();
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MISMATCH,),
    runtime_errors=(CollectiveMismatchError,),
    raw_errors=(DeadlockError,),
    interprocedural=True,
)

_case(
    name="interproc_recursive_barrier",
    description="recursive helper whose barrier is fine standalone but "
                "multithreaded under the parallel calling context; the "
                "recursion exercises the SCC fixpoint of the propagation",
    source="""
int spin(int n) {
    if (n > 0) {
        n = spin(n - 1);
    }
    MPI_Barrier();
    return n;
}

void main() {
    MPI_Init_thread(3);
    int x = 2;
    #pragma omp parallel num_threads(2)
    {
        x = spin(x);
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MULTITHREADED,),
    runtime_errors=(ThreadContextError, ConcurrentCollectiveError, DeadlockError),
    raw_errors=(ConcurrentCollectiveError, DeadlockError),
    deterministic=False,
    interprocedural=True,
)

# -- thread-level errors --------------------------------------------------------------

_case(
    name="funneled_violation",
    description="collective funneled to a *non-master* thread while only "
                "FUNNELED is granted: the static pass flags the context "
                "conservatively, the runtime guard catches the level "
                "violation deterministically",
    source="""
void main() {
    MPI_Init_thread(1);
    #pragma omp parallel num_threads(2)
    {
        if (omp_get_thread_num() == 1) {
            MPI_Barrier();
        }
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.COLLECTIVE_MULTITHREADED, ErrorCode.THREAD_LEVEL),
    runtime_errors=(ThreadLevelError,),
    raw_errors=(ThreadLevelError,),
)

_case(
    name="single_level_in_parallel",
    description="MPI at THREAD_SINGLE from inside an active parallel region",
    source="""
void main() {
    MPI_Init_thread(0);
    #pragma omp parallel num_threads(2)
    {
        #pragma omp master
        {
            MPI_Barrier();
        }
        #pragma omp barrier
    }
    MPI_Finalize();
}
""",
    expect_static=(ErrorCode.THREAD_LEVEL,),
    runtime_errors=(ThreadLevelError,),
    raw_errors=(ThreadLevelError,),
)


CASES: Dict[str, ErrorCase] = {c.name: c for c in _CASES}


def correct_cases() -> Dict[str, ErrorCase]:
    return {n: c for n, c in CASES.items()
            if not c.runtime_errors and not c.raw_errors
            and not c.schedule_sensitive}


def erroneous_cases() -> Dict[str, ErrorCase]:
    return {n: c for n, c in CASES.items()
            if (c.runtime_errors or c.raw_errors) and not c.schedule_sensitive}


def schedule_sensitive_cases() -> Dict[str, ErrorCase]:
    return {n: c for n, c in CASES.items() if c.schedule_sensitive}


def interprocedural_cases() -> Dict[str, ErrorCase]:
    """Seeds only the interprocedural layer can flag statically."""
    return {n: c for n, c in CASES.items() if c.interprocedural}
