"""Structural generators for the NAS Parallel Benchmarks Multi-Zone suite.

The paper measures *compile-time* overhead on BT-MZ, SP-MZ and LU-MZ (v3.2,
class B).  What matters for that measurement is realistic code size and
shape: many solver functions, deep loop nests, OpenMP ``parallel``/``for``
regions per zone, halo exchange via point-to-point, and collectives
(residual reduction, timing, verification) inside the timestep loop — the
pattern that makes PARCOACH emit its classic loop-guard warnings and
generate verification code.

Generators emit minilang *source text* so the compile pipeline includes
lexing/parsing, exactly like the paper's baseline compile.
"""

from __future__ import annotations

_SWEEPS = ("x", "y", "z")


def _make_solver(name: str, inner_loops: int, width: int) -> str:
    """Emit one sweep function as source (hand-rolled for array targets)."""
    lines = [f"void {name}(int zone, int n)", "{"]
    lines.append("    float rhs[n];")
    lines.append("    float lhs[n];")
    lines.append("    #pragma omp parallel")
    lines.append("    {")
    for loop_i in range(inner_loops):
        lines.append(f"        #pragma omp for")
        lines.append(f"        for (int i{loop_i} = 0; i{loop_i} < n; i{loop_i} += 1)")
        lines.append("        {")
        lines.append(
            f"            rhs[mod(i{loop_i}, n)] = mod(i{loop_i} * {loop_i + 3}, 97) + zone;"
        )
        for k in range(width):
            lines.append(
                f"            lhs[mod(i{loop_i} + {k}, n)] = (rhs[mod(i{loop_i}, n)] + {k}.0) * 2.0;"
            )
        lines.append("        }")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _make_exchange(name: str, faces: int) -> str:
    """Halo exchange between neighbour ranks (point-to-point, no collectives)."""
    lines = [f"void {name}(int zone, int n)", "{"]
    lines.append("    int rank = MPI_Comm_rank();")
    lines.append("    int size = MPI_Comm_size();")
    lines.append("    float buf[n];")
    lines.append("    #pragma omp parallel")
    lines.append("    {")
    lines.append("        #pragma omp for")
    lines.append("        for (int i = 0; i < n; i += 1)")
    lines.append("        {")
    lines.append("            buf[i] = i * 2.0 + zone;")
    lines.append("        }")
    lines.append("    }")
    for face in range(faces):
        tag = 100 + face
        lines.append(f"    if (mod(rank, 2) == 0)")
        lines.append("    {")
        lines.append(f"        if (rank + 1 < size)")
        lines.append("        {")
        lines.append(f"            MPI_Send(buf[{face}], rank + 1, {tag});")
        lines.append(f"            MPI_Recv(buf[{face}], rank + 1, {tag + 50});")
        lines.append("        }")
        lines.append("    }")
        lines.append("    else")
        lines.append("    {")
        lines.append(f"        MPI_Recv(buf[{face}], rank - 1, {tag});")
        lines.append(f"        MPI_Send(buf[{face}], rank - 1, {tag + 50});")
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _make_rhs(name: str, stages: int) -> str:
    lines = [f"void {name}(int zone, int n)", "{"]
    lines.append("    float forcing[n];")
    lines.append("    #pragma omp parallel")
    lines.append("    {")
    for s in range(stages):
        lines.append("        #pragma omp for nowait" if s % 2 else "        #pragma omp for")
        lines.append(f"        for (int j{s} = 0; j{s} < n; j{s} += 1)")
        lines.append("        {")
        lines.append(f"            forcing[mod(j{s}, n)] = j{s} * {s + 1}.5 + zone;")
        lines.append("        }")
        if s % 2:
            lines.append("        #pragma omp barrier")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _make_main(solvers: list, zones: int, steps: int, exchange: str,
               rhs_funcs: list, thread_level: int = 2) -> str:
    lines = ["void main()", "{"]
    lines.append(f"    MPI_Init_thread({thread_level});")
    lines.append("    int rank = MPI_Comm_rank();")
    lines.append(f"    int zones = {zones};")
    lines.append("    int n = 64;")
    lines.append("    float residual = 0.0;")
    lines.append("    float gnorm = 0.0;")
    lines.append(f"    for (int step = 0; step < {steps}; step += 1)")
    lines.append("    {")
    lines.append("        for (int z = 0; z < zones; z += 1)")
    lines.append("        {")
    lines.append(f"            {exchange}(z, n);")
    for fn in rhs_funcs:
        lines.append(f"            {fn}(z, n);")
    for fn in solvers:
        lines.append(f"            {fn}(z, n);")
    lines.append("        }")
    lines.append("        residual = residual + step * 0.5;")
    # Residual check every few iterations: the collective inside the loop is
    # what makes PARCOACH warn (loop guard in PDF+) and instrument.
    lines.append("        if (mod(step, 2) == 0)")
    lines.append("        {")
    lines.append("            MPI_Allreduce(residual, gnorm, \"sum\");")
    lines.append("        }")
    lines.append("    }")
    lines.append("    MPI_Barrier();")
    lines.append("    float verify = 0.0;")
    lines.append("    MPI_Reduce(residual, verify, \"max\", 0);")
    lines.append("    if (rank == 0)")
    lines.append("    {")
    lines.append("        print(\"verification\", verify);")
    lines.append("    }")
    lines.append("    MPI_Finalize();")
    lines.append("}")
    return "\n".join(lines)


def make_bt_mz(zones: int = 16, steps: int = 6, inner_loops: int = 5,
               width: int = 6, sweeps_per_dim: int = 3) -> str:
    """BT-MZ-like program: block-tridiagonal sweeps in x/y/z per zone."""
    parts = []
    solvers = []
    for dim in _SWEEPS:
        for i in range(sweeps_per_dim):
            name = f"{dim}_solve_{i}"
            solvers.append(name)
            parts.append(_make_solver(name, inner_loops, width))
    rhs_funcs = [f"compute_rhs_{i}" for i in range(3)]
    for i, name in enumerate(rhs_funcs):
        parts.append(_make_rhs(name, stages=4 + i))
    parts.append(_make_exchange("exch_qbc", faces=4))
    parts.append(_make_main(solvers, zones, steps, "exch_qbc", rhs_funcs))
    return "\n\n".join(parts) + "\n"


def make_sp_mz(zones: int = 16, steps: int = 6) -> str:
    """SP-MZ-like program: scalar-pentadiagonal, fewer/wider sweeps."""
    parts = []
    solvers = []
    for dim in _SWEEPS:
        name = f"{dim}_solve"
        solvers.append(name)
        parts.append(_make_solver(name, inner_loops=4, width=8))
    parts.append(_make_solver("txinvr", inner_loops=2, width=4))
    solvers.append("txinvr")
    rhs_funcs = ["compute_rhs"]
    parts.append(_make_rhs("compute_rhs", stages=6))
    parts.append(_make_exchange("exch_qbc", faces=4))
    parts.append(_make_main(solvers, zones, steps, "exch_qbc", rhs_funcs))
    return "\n\n".join(parts) + "\n"


def make_lu_mz(zones: int = 16, steps: int = 6) -> str:
    """LU-MZ-like program: SSOR with lower/upper sweeps and more explicit
    synchronization (barriers, single regions for the pipeline startup)."""
    parts = []
    # jacld/jacu + blts/buts: four sweep kernels with barriers inside.
    solvers = []
    for name, loops in (("jacld", 3), ("blts", 4), ("jacu", 3), ("buts", 4)):
        solvers.append(name)
        lines = [f"void {name}(int zone, int n)", "{"]
        lines.append("    float v[n];")
        lines.append("    float tv[n];")
        lines.append("    #pragma omp parallel")
        lines.append("    {")
        lines.append("        #pragma omp single")
        lines.append("        {")
        lines.append("            tv[0] = zone * 1.0;")
        lines.append("        }")
        for i in range(loops):
            lines.append("        #pragma omp for")
            lines.append(f"        for (int k{i} = 0; k{i} < n; k{i} += 1)")
            lines.append("        {")
            lines.append(f"            v[mod(k{i}, n)] = tv[0] + k{i} * {i + 1}.0;")
            lines.append("        }")
            lines.append("        #pragma omp barrier")
        lines.append("    }")
        lines.append("}")
        parts.append("\n".join(lines))
    parts.append(_make_rhs("rhs_lu", stages=5))
    parts.append(_make_exchange("exchange_1", faces=2))
    parts.append(_make_main(solvers, zones=16, steps=steps, exchange="exchange_1",
                            rhs_funcs=["rhs_lu"]))
    return "\n\n".join(parts) + "\n"
