"""Benchmark workloads (NAS-MZ / EPCC / HERA analogues), the error gallery,
and the compile pipeline used by the Figure 1 reproduction."""

from functools import lru_cache
from typing import Dict

from .epcc import make_epcc_suite
from .errors_gallery import (CASES, ErrorCase, correct_cases,
                             erroneous_cases, interprocedural_cases,
                             schedule_sensitive_cases)
from .hera import make_hera
from .nas_mz import make_bt_mz, make_lu_mz, make_sp_mz
from .pipeline import (
    MODES,
    CompileResult,
    compile_source,
    measure_overheads,
    overhead_percent,
)
from .scale import (PROJECT_SIZES, SCALE_SIZES, make_project,
                    make_scale_program, project_suite, scale_suite,
                    write_project)

#: The five benchmarks of Figure 1, in the paper's order.
FIGURE1_BENCHMARKS = ("BT-MZ", "SP-MZ", "LU-MZ", "EPCC suite", "HERA")


@lru_cache(maxsize=1)
def benchmark_sources() -> Dict[str, str]:
    """Generated sources for the five Figure 1 benchmarks (cached —
    generation itself is not part of the measured compile time)."""
    return {
        "BT-MZ": make_bt_mz(),
        "SP-MZ": make_sp_mz(),
        "LU-MZ": make_lu_mz(),
        "EPCC suite": make_epcc_suite(),
        "HERA": make_hera(),
    }


__all__ = [
    "make_epcc_suite",
    "CASES",
    "ErrorCase",
    "correct_cases",
    "erroneous_cases",
    "schedule_sensitive_cases",
    "interprocedural_cases",
    "make_hera",
    "make_bt_mz",
    "make_lu_mz",
    "make_sp_mz",
    "MODES",
    "CompileResult",
    "compile_source",
    "measure_overheads",
    "overhead_percent",
    "FIGURE1_BENCHMARKS",
    "benchmark_sources",
    "PROJECT_SIZES",
    "SCALE_SIZES",
    "make_project",
    "make_scale_program",
    "project_suite",
    "scale_suite",
    "write_project",
]
