"""Synthetic program generator for the scale benchmarks.

Produces deterministic minilang programs parameterized by function count,
CFG nesting depth and collective density — the three axes that drive the
asymptotic cost of the static analysis (function loop, dominator/PDF+ work
per CFG, and per-collective-name Algorithm 1 passes respectively).
``benchmarks/bench_scale.py`` sweeps these to chart walltime vs. program
size for cold / warm-cache / parallel engine configurations.

Everything is seeded: the same parameters always generate byte-identical
source, so benchmark numbers are comparable across runs and the warm-cache
configurations hit the engine's structural fingerprints.
"""

from __future__ import annotations

import random
from typing import Dict, List

_COLLECTIVES = (
    'MPI_Allreduce(acc, red, "sum");',
    "MPI_Barrier();",
    "MPI_Bcast(x, 0);",
)


def _emit_level(rng: random.Random, lines: List[str], indent: int,
                depth: int, density: float, loop_counter: List[int]) -> None:
    """One nesting level: filler arithmetic, an optional collective, and a
    for/if wrapper around the next level."""
    pad = "    " * indent
    lines.append(f"{pad}acc += 1.0;")
    if rng.random() < density:
        lines.append(pad + rng.choice(_COLLECTIVES))
    if depth <= 0:
        lines.append(f"{pad}x += 1;")
        return
    n = loop_counter[0]
    loop_counter[0] += 1
    if rng.random() < 0.5:
        lines.append(f"{pad}for (int i{n} = 0; i{n} < 4; i{n} += 1) {{")
        _emit_level(rng, lines, indent + 1, depth - 1, density, loop_counter)
        lines.append(f"{pad}}}")
    else:
        lines.append(f"{pad}if (x < {8 + n}) {{")
        _emit_level(rng, lines, indent + 1, depth - 1, density, loop_counter)
        lines.append(f"{pad}}}")
        lines.append(f"{pad}else {{")
        lines.append(f"{pad}    acc += 2.0;")
        if rng.random() < density:
            lines.append(pad + "    " + rng.choice(_COLLECTIVES))
        lines.append(f"{pad}}}")


def make_scale_function(name: str, depth: int, density: float,
                        rng: random.Random, mismatch: bool) -> str:
    """One synthetic function; ``mismatch`` adds a rank-guarded collective
    (the classic PARCOACH warning pattern) so the generated programs exercise
    the diagnostic path, not only the clean fast path."""
    lines: List[str] = [f"void {name}(int n) {{"]
    lines.append("    float acc = 1.0;")
    lines.append("    float red = 0.0;")
    lines.append("    int x = 1;")
    if mismatch:
        lines.append("    int rank = MPI_Comm_rank();")
        lines.append("    if (rank == 0) {")
        lines.append("        MPI_Barrier();")
        lines.append("    }")
    _emit_level(rng, lines, 1, depth, density, [0])
    lines.append('    MPI_Allreduce(acc, red, "sum");')
    lines.append("}")
    return "\n".join(lines)


def make_scale_program(n_funcs: int = 16, depth: int = 4,
                       collective_density: float = 0.4,
                       mismatch_fraction: float = 0.25,
                       seed: int = 20150207) -> str:
    """A whole synthetic program: ``n_funcs`` generated functions plus a
    ``main`` that initializes MPI and calls each one."""
    rng = random.Random((seed, n_funcs, depth, collective_density,
                         mismatch_fraction).__repr__())
    parts: List[str] = []
    for i in range(n_funcs):
        mismatch = (i % max(1, round(1 / mismatch_fraction)) == 0
                    if mismatch_fraction > 0 else False)
        parts.append(make_scale_function(f"compute_{i}", depth,
                                         collective_density, rng, mismatch))
    main_lines = ["void main() {", "    MPI_Init_thread(0);"]
    main_lines += [f"    compute_{i}(8);" for i in range(n_funcs)]
    main_lines += ["    MPI_Finalize();", "}"]
    parts.append("\n".join(main_lines))
    return "\n\n".join(parts) + "\n"


#: The size sweep the scale benchmark charts (name -> generator kwargs).
SCALE_SIZES: Dict[str, Dict[str, float]] = {
    "S": {"n_funcs": 4, "depth": 3},
    "M": {"n_funcs": 16, "depth": 4},
    "L": {"n_funcs": 48, "depth": 5},
    "XL": {"n_funcs": 96, "depth": 6},
}


def scale_suite() -> Dict[str, str]:
    """Generated sources for the whole size sweep."""
    return {name: make_scale_program(**kwargs)  # type: ignore[arg-type]
            for name, kwargs in SCALE_SIZES.items()}


# ---------------------------------------------------------------------------
# Deep call trees (interprocedural-layer workload)
# ---------------------------------------------------------------------------


def make_calltree_program(depth: int = 16, width: int = 2,
                          parallel_every: int = 4,
                          seed: int = 20150207) -> str:
    """A deep call tree: ``depth`` levels of ``width`` functions, every
    function of level ``L`` calling every function of level ``L+1`` — half
    as statement calls, half embedded in expressions (the form only the
    interprocedural layer can see).  Every ``parallel_every``-th level wraps
    its calls in ``parallel``/``single``, so context words accumulate down
    the tree and the propagation fixpoint has real work to do; the leaves
    run collectives.  Deterministic for a given parameter tuple."""
    rng = random.Random((seed, depth, width, parallel_every).__repr__())
    parts: List[str] = []
    for level in range(depth - 1, -1, -1):
        last = level == depth - 1
        wrap = not last and parallel_every > 0 and level % parallel_every == (
            parallel_every - 1)
        for i in range(width):
            lines = [f"int tier{level}_{i}(int v) {{"]
            lines.append("    float acc = 1.0;")
            lines.append("    float red = 0.0;")
            lines.append(f"    v += {level + i};")
            if last:
                lines.append('    MPI_Allreduce(acc, red, "sum");')
                if i == 0:
                    lines.append("    MPI_Barrier();")
            else:
                calls: List[str] = []
                for j in range(width):
                    callee = f"tier{level + 1}_{j}"
                    if (i + j) % 2 == 0:
                        calls.append(f"v = {callee}(v);")  # expression call
                    else:
                        calls.append(f"{callee}(v);")
                pad = "    "
                if wrap:
                    lines.append("    #pragma omp parallel")
                    lines.append("    {")
                    lines.append("        #pragma omp single")
                    lines.append("        {")
                    pad = "            "
                for call in calls:
                    lines.append(pad + call)
                if wrap:
                    lines.append("        }")
                    lines.append("    }")
                if rng.random() < 0.25:
                    lines.append("    MPI_Barrier();")
            lines.append("    return v;")
            lines.append("}")
            parts.append("\n".join(lines))
    main_lines = ["void main() {", "    MPI_Init_thread(2);", "    int x = 1;"]
    main_lines += [f"    x = tier0_{i}(x);" for i in range(width)]
    main_lines += ["    MPI_Finalize();", "}"]
    parts.append("\n".join(main_lines))
    return "\n\n".join(parts) + "\n"


# ---------------------------------------------------------------------------
# Multi-file projects (the ``parcoach project`` workload)
# ---------------------------------------------------------------------------


def make_project(n_files: int = 100, funcs_per_file: int = 2,
                 seed: int = 20150207) -> Dict[str, str]:
    """A deterministic multi-file project with one seeded **cross-file** bug.

    Layout: ``m000.mc`` … defines ``m0_f0`` …, each function calling its
    same-index peer in the *next* file (half as expression calls), so call
    chains cross every file boundary; leaf functions run an unconditional
    ``MPI_Allreduce`` (clean under any context).  ``helpers.mc`` defines
    ``bug_helper`` — an unconditional ``MPI_Barrier``, clean in isolation —
    and ``main.mc`` calls it from inside an ``omp parallel`` region.  Only
    a whole-project analysis sees the bug: per-file, ``main.mc`` cannot
    resolve ``bug_helper`` (UNKNOWN_FUNC) and ``helpers.mc`` alone is clean
    under the empty context.  The expected finding is exactly one
    ``collective-multithreaded`` in ``bug_helper`` with the witness chain
    ``main → bug_helper`` spanning ``main.mc`` → ``helpers.mc``.
    """
    rng = random.Random((seed, n_files, funcs_per_file).__repr__())
    files: Dict[str, str] = {}
    for i in range(n_files):
        parts: List[str] = []
        last = i == n_files - 1
        for j in range(funcs_per_file):
            lines = [f"int m{i}_f{j}(int v) {{"]
            lines.append("    float acc = 1.0;")
            lines.append("    float red = 0.0;")
            lines.append(f"    v += {i + j};")
            if last:
                lines.append('    MPI_Allreduce(acc, red, "sum");')
            else:
                callee = f"m{i + 1}_f{j}"
                if (i + j) % 2 == 0:
                    lines.append(f"    v = {callee}(v);")
                else:
                    lines.append(f"    {callee}(v);")
            if rng.random() < 0.25:
                lines.append("    acc += 2.0;")
            lines.append("    return v;")
            lines.append("}")
            parts.append("\n".join(lines))
        files[f"m{i:03d}.mc"] = "\n\n".join(parts) + "\n"
    files["helpers.mc"] = (
        "int bug_helper(int v) {\n"
        "    MPI_Barrier();\n"
        "    return v + 1;\n"
        "}\n"
    )
    files["main.mc"] = (
        "void main() {\n"
        "    MPI_Init_thread(3);\n"
        "    int x = 0;\n"
        "    x = m0_f0(x);\n"
        "    #pragma omp parallel num_threads(2)\n"
        "    {\n"
        "        x = bug_helper(x);\n"
        "    }\n"
        "    MPI_Finalize();\n"
        "}\n"
    )
    return files


#: The project-size sweep the project benchmarks chart.  ``P100`` is the
#: acceptance shape (one seeded cross-file bug, call chains crossing every
#: file boundary); ``P1000`` (XXL) is the assembly-scaling shape — same
#: topology at 10x the files, used to gate that a one-file edit stays
#: O(edit + dependents): the per-edit cost at P1000 must be within 2x of
#: P100 even though the project is 10x larger.
PROJECT_SIZES: Dict[str, Dict[str, int]] = {
    "P100": {"n_files": 100},
    "P1000": {"n_files": 1000},
}


def project_suite() -> Dict[str, Dict[str, str]]:
    """Generated file trees for the project-size sweep."""
    return {name: make_project(**kwargs)
            for name, kwargs in PROJECT_SIZES.items()}


def write_project(files: Dict[str, str], root: str) -> None:
    """Materialize a generated project under ``root``."""
    import os

    os.makedirs(root, exist_ok=True)
    for rel, text in files.items():
        with open(os.path.join(root, rel), "w", encoding="utf-8") as handle:
            handle.write(text)


#: The call-tree sweep the interprocedural benchmark charts.
CALLTREE_SIZES: Dict[str, Dict[str, int]] = {
    "D8": {"depth": 8, "width": 2},
    "D16": {"depth": 16, "width": 2},
    "D32": {"depth": 32, "width": 2},
}


def calltree_suite() -> Dict[str, str]:
    """Generated sources for the call-tree sweep."""
    return {name: make_calltree_program(**kwargs)
            for name, kwargs in CALLTREE_SIZES.items()}
