"""Interprocedural layer: call graph, context propagation, summaries.

The per-function phases (:mod:`repro.core.driver`) are intraprocedural,
PARCOACH-style: each function is analyzed under one initial parallelism word
(empty unless the user supplies ``--initial-context``).  That misses exactly
the hybrid scenarios the paper targets — a collective inside a helper called
from an ``omp parallel`` region is silently treated as monothreaded.  This
module closes the gap with three whole-program passes:

* **Call graph** — every call edge of the program, including calls embedded
  in expressions (``x = helper(x);``, conditions, arguments), which have no
  ``CALL`` basic block and are invisible to the intraprocedural phases.
  Strongly connected components (Tarjan) condense recursion.

* **Context propagation** — a worklist fixpoint computing, per function, the
  *set* of calling-context parallelism words: the word in effect at every
  call site, seeded at the entry functions (``main`` / functions nobody
  calls) with the ``--initial-context`` word.  Context words are
  *canonicalized* (region ids renumbered to -1, -2, ... in first-occurrence
  order) so they are stable across re-parses — the analysis engine keys its
  cache on them — and can never collide with the callee's own AST uids.
  Each ``(function, word)`` pair records one witness call chain
  (``main → worker → helper``) for diagnostics.  Degenerate context growth
  (a barrier-appending recursion under ``parallel``) is bounded by
  :data:`MAX_CONTEXTS` / :data:`MAX_CONTEXT_LEN`; functions that hit the
  bound are marked ``saturated`` and keep the contexts found so far.

* **Collective summaries** — per function and collective name, one of
  ``always`` / ``conditional`` / ``never``: whether every / some / no
  execution of the function runs the collective.  Computed by a fixpoint
  over the SCC DAG in reverse topological order (callees first; members of a
  cyclic SCC iterate until stable from an optimistic ``never`` start, so
  recursion is handled soundly).  ``may`` is exact on the AST; ``must`` is a
  sound under-approximation combining two views: the structural walk
  (workshare-aware — ``single``/``master``/``sections`` bodies execute per
  MPI process) and a CFG post-dominance formulation — a collective is
  ``always`` when the set of CFG blocks executing it collectively
  post-dominates the entry, i.e. removing those blocks disconnects the
  entry from the exit.  The CFG view classifies ``always`` through early
  ``return``s and branch-duplicated collectives, which demote to
  ``conditional`` under the purely structural rule; ``task`` bodies stay
  may-only (deferred execution).  The driver uses the summaries to turn
  expression-level calls to collective-executing helpers into phase-3
  sequence points.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Set, Tuple

from ..cfg import build_cfg
from ..minilang import ast_nodes as A
from ..mpi.collectives import is_collective
from ..parallelism import EMPTY, Word, compute_words
from ..parallelism.word import B, P, S
from ..util.probe import probe, probes_active
from .sites import ProgramIndex, index_program

#: Bounds for the context-propagation fixpoint (per function).
MAX_CONTEXTS = 16
MAX_CONTEXT_LEN = 24

#: Summary classes, ordered never < conditional < always.
NEVER = "never"
CONDITIONAL = "conditional"
ALWAYS = "always"


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CallEdge:
    """One call site: ``caller`` invokes ``callee``.

    ``anchor_uids`` is the chain of enclosing-statement uids (innermost
    first) — the first one with a parallelism word / CFG block anchors the
    call.  ``expression`` is True for calls embedded in expressions (no
    ``CALL`` block, no :class:`~repro.core.sites.CollectiveSite`).
    """

    caller: str
    callee: str
    anchor_uids: Tuple[int, ...]
    anchor_pos: int
    line: int
    expression: bool


@dataclass
class CallGraph:
    """Explicit call graph of one program (user functions only)."""

    #: Function names in source order.
    order: List[str]
    #: caller -> its call edges, in source order.
    edges: Dict[str, List[CallEdge]]
    #: callee -> incoming edges.
    callers: Dict[str, List[CallEdge]]
    #: Functions nobody calls (analysis entry points; ``main`` is always an
    #: entry even when called, so a recursive main stays seeded).
    entries: List[str]
    #: SCCs in reverse topological order (callees before callers).
    sccs: List[Tuple[str, ...]]
    #: function -> index into ``sccs``.
    scc_of: Dict[str, int]
    #: Members of a cyclic SCC (including self-recursion).
    recursive: FrozenSet[str]

    @property
    def n_edges(self) -> int:
        return sum(len(e) for e in self.edges.values())


def _derive_edges(name: str, index: ProgramIndex,
                  names: Set[str]) -> List[CallEdge]:
    """Call edges of one function, in source order."""
    edges: List[CallEdge] = []
    stmt_calls = {id(s.expr): s for s in index.call_stmts.get(name, [])}
    expr_sites = {id(s.call): s for s in index.expr_calls.get(name, [])}
    for call in index.calls.get(name, []):
        if call.name not in names:
            continue
        stmt = stmt_calls.get(id(call))
        if stmt is not None:
            edge = CallEdge(caller=name, callee=call.name,
                            anchor_uids=(stmt.uid,), anchor_pos=-1,
                            line=stmt.line or call.line, expression=False)
        else:
            site = expr_sites[id(call)]
            edge = CallEdge(caller=name, callee=call.name,
                            anchor_uids=site.stmt_uids,
                            anchor_pos=site.stmt_pos,
                            line=site.line, expression=True)
        edges.append(edge)
    return edges


def _entries_of(order: List[str],
                callers: Dict[str, List[CallEdge]]) -> List[str]:
    entries = [n for n in order if not callers[n] or n == "main"]
    if not entries:  # every function called: fall back to source order head
        entries = order[:1]
    return entries


def _graph_from_edges(order: List[str],
                      edges: Dict[str, List[CallEdge]]) -> CallGraph:
    """Assemble a :class:`CallGraph` from per-function edge lists (callers,
    entries, Tarjan condensation, recursion)."""
    callers: Dict[str, List[CallEdge]] = {name: [] for name in order}
    for name in order:
        for edge in edges[name]:
            callers[edge.callee].append(edge)
    entries = _entries_of(order, callers)
    sccs, scc_of = _tarjan(order, edges)
    recursive = frozenset(
        n for scc in sccs for n in scc
        if len(scc) > 1 or any(e.callee == n for e in edges[n])
    )
    return CallGraph(order=order, edges=edges, callers=callers,
                     entries=entries, sccs=sccs, scc_of=scc_of,
                     recursive=recursive)


def build_call_graph(program: A.Program,
                     index: Optional[ProgramIndex] = None) -> CallGraph:
    """Build the program's call graph from *all* call nodes."""
    if index is None:
        index = index_program(program)
    order = [f.name for f in program.funcs]
    names = set(order)
    edges = {name: _derive_edges(name, index, names) for name in order}
    return _graph_from_edges(order, edges)


@dataclass
class GraphPatch:
    """Result of :func:`update_call_graph`."""

    graph: CallGraph
    #: Functions whose edges were re-derived from the index.
    edges_recomputed: int
    #: True when the SCC condensation had to be rebuilt from scratch.
    rebuilt: bool


def update_call_graph(prev: CallGraph, program: A.Program,
                      index: ProgramIndex,
                      changed: Set[str],
                      order: Optional[List[str]] = None,
                      names: Optional[Set[str]] = None) -> GraphPatch:
    """Delta-update ``prev`` for a program where only ``changed`` functions
    have new bodies (same function *set* or not — additions/removals force a
    condensation rebuild, still re-deriving edges only for ``changed``).

    Never mutates ``prev`` — returns a new :class:`CallGraph` sharing the
    edge lists of unchanged functions.  On the patch path the SCC list keeps
    its previous ordering (still a valid reverse-topological order, checked
    edge by edge) and ``callers`` lists are order-unspecified; no consumer
    depends on either beyond validity.

    ``order``/``names`` short-circuit the O(program) name-list walk when the
    caller already holds them; passing ``prev.order`` as ``order`` asserts
    the function list (names and positions) is unchanged, which also skips
    the name-set comparison.
    """
    if order is None:
        order = [f.name for f in program.funcs]
    if names is None:
        names = set(order)
    changed = {n for n in changed if n in names}
    new_edges = {n: _derive_edges(n, index, names) for n in changed}

    rebuild = False if order is prev.order else names != set(prev.edges)
    if not rebuild:
        for name in changed:
            old_pairs = {(e.caller, e.callee) for e in prev.edges[name]}
            cur_pairs = {(e.caller, e.callee) for e in new_edges[name]}
            for u, v in cur_pairs - old_pairs:
                su, sv = prev.scc_of[u], prev.scc_of[v]
                # A new edge is safe iff it stays inside one SCC or points
                # from a later SCC to an earlier one (callees first): either
                # way the condensation and its order remain valid.
                if su != sv and not sv < su:
                    rebuild = True
            for u, v in old_pairs - cur_pairs:
                # Removing an intra-SCC edge can split the component.
                if prev.scc_of[u] == prev.scc_of[v]:
                    rebuild = True

    if rebuild:
        edges = {n: new_edges[n] if n in changed else prev.edges[n]
                 for n in order}
        return GraphPatch(graph=_graph_from_edges(order, edges),
                          edges_recomputed=len(changed), rebuilt=True)

    edges = dict(prev.edges)
    callers = dict(prev.callers)
    touched_callees: Set[str] = set()
    for name in changed:
        touched_callees.update(e.callee for e in prev.edges[name])
        touched_callees.update(e.callee for e in new_edges[name])
        edges[name] = new_edges[name]
    for callee in touched_callees:
        kept = [e for e in prev.callers[callee] if e.caller not in changed]
        for name in sorted(changed):
            kept.extend(e for e in new_edges[name] if e.callee == callee)
        callers[callee] = kept
    # Entry membership only depends on caller-list *emptiness* (and the
    # "main" special case, which no edge change can affect).
    if any(bool(callers[c]) != bool(prev.callers.get(c, ()))
           for c in touched_callees):
        entries = _entries_of(order, callers)
    else:
        entries = prev.entries
    recursive = prev.recursive
    for name in changed:
        scc = prev.sccs[prev.scc_of[name]]
        is_rec = len(scc) > 1 or any(e.callee == name for e in edges[name])
        if is_rec and name not in recursive:
            recursive = recursive | {name}
        elif not is_rec and name in recursive:
            recursive = recursive - {name}
    graph = CallGraph(order=order, edges=edges, callers=callers,
                      entries=entries, sccs=prev.sccs, scc_of=prev.scc_of,
                      recursive=recursive)
    return GraphPatch(graph=graph, edges_recomputed=len(changed),
                      rebuilt=False)


def _tarjan(order: List[str],
            edges: Dict[str, List[CallEdge]]) -> Tuple[List[Tuple[str, ...]],
                                                       Dict[str, int]]:
    """Iterative Tarjan SCC; components come out in reverse topological
    order (every callee SCC before its caller SCCs)."""
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Tuple[str, ...]] = []
    counter = [0]

    for root in order:
        if root in index_of:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, ei = work.pop()
            if ei == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            succs = [e.callee for e in edges[node]]
            while ei < len(succs):
                succ = succs[ei]
                ei += 1
                if succ not in index_of:
                    work.append((node, ei))
                    work.append((succ, 0))
                    recurse = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if recurse:
                continue
            if low[node] == index_of[node]:
                comp: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    comp.append(member)
                    if member == node:
                        break
                sccs.append(tuple(sorted(comp)))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    scc_of = {n: i for i, scc in enumerate(sccs) for n in scc}
    return sccs, scc_of


# ---------------------------------------------------------------------------
# Context propagation
# ---------------------------------------------------------------------------


def canonical_word(word: Word) -> Word:
    """Renumber the region ids of ``word`` to -1, -2, ... in first-occurrence
    order.  Canonical words are stable across re-parses (uids are not) and
    their negative ids can never collide with real AST uids, so a context
    prefix stays distinguishable from the callee's own constructs."""
    mapping: Dict[int, int] = {}
    out: List = []
    for token in word:
        if isinstance(token, B):
            out.append(token)
            continue
        rid = mapping.get(token.region_id)
        if rid is None:
            rid = -(len(mapping) + 1)
            mapping[token.region_id] = rid
        if isinstance(token, P):
            out.append(P(rid))
        else:
            out.append(S(rid, token.kind))
    return tuple(out)


def _word_sort_key(word: Word):
    return (len(word), tuple(str(t) for t in word))


@dataclass
class ContextMap:
    """Result of context propagation."""

    #: function -> canonical context words, sorted (empty word first).
    contexts: Dict[str, Tuple[Word, ...]]
    #: (function, word) -> witness call chain from an entry (inclusive).
    chains: Dict[Tuple[str, Word], Tuple[str, ...]]
    #: Functions whose context set hit MAX_CONTEXTS / MAX_CONTEXT_LEN.
    saturated: FrozenSet[str] = frozenset()
    #: (function, word) -> the ``(callee, canonical word at the call)`` tuple
    #: this evaluation handed to its edges, in edge order.  Recorded only
    #: when ``record_transfers`` was requested; the session layer compares a
    #: changed function's recomputed transfers against these to decide
    #: whether the whole fixpoint can be reused verbatim.
    transfers: Optional[Dict[Tuple[str, Word],
                             Tuple[Tuple[str, Word], ...]]] = None


def propagate_contexts(program: A.Program, graph: CallGraph,
                       seeds: Optional[Dict[str, Word]] = None,
                       entry_context: Word = EMPTY,
                       record_transfers: bool = False) -> ContextMap:
    """Worklist fixpoint over the call graph.

    ``entry_context`` seeds every entry function (the CLI's
    ``--initial-context``); ``seeds`` adds per-function extra contexts (the
    programmatic ``initial_words`` of :func:`analyze_program`).  Every
    function ends with at least one context: unreached ones (dead cycles)
    fall back to the entry context.
    """
    seeds = seeds or {}
    funcs = {f.name: f for f in program.funcs}
    contexts: Dict[str, Dict[Word, Tuple[str, ...]]] = {n: {} for n in graph.order}
    saturated: Set[str] = set()
    worklist: Deque[Tuple[str, Word]] = deque()

    def add(name: str, word: Word, chain: Tuple[str, ...]) -> None:
        known = contexts[name]
        if word in known:
            return
        if len(known) >= MAX_CONTEXTS or len(word) > MAX_CONTEXT_LEN:
            saturated.add(name)
            probe("cg:saturated")
            return
        known[word] = chain
        worklist.append((name, word))
        probe("cg:context")

    for name in graph.order:
        if name in graph.entries:
            add(name, canonical_word(entry_context), (name,))
        if name in seeds:
            add(name, canonical_word(seeds[name]), (name,))

    transfers: Optional[Dict[Tuple[str, Word], Tuple[Tuple[str, Word], ...]]]
    transfers = {} if record_transfers else None
    word_cache: Dict[Tuple[str, Word], Dict[int, Word]] = {}
    while worklist:
        name, word = worklist.popleft()
        key = (name, word)
        if not graph.edges[name]:
            if transfers is not None:
                transfers[key] = ()
            continue
        words = word_cache.get(key)
        if words is None:
            words = compute_words(funcs[name], word).words
            word_cache[key] = words
        chain = contexts[name][word]
        sent: List[Tuple[str, Word]] = []
        for edge in graph.edges[name]:
            anchor = next((u for u in edge.anchor_uids if u in words), None)
            at_call = words[anchor] if anchor is not None else word
            canon = canonical_word(at_call)
            sent.append((edge.callee, canon))
            add(edge.callee, canon, chain + (edge.callee,))
        if transfers is not None:
            transfers[key] = tuple(sent)

    fallback = canonical_word(entry_context)
    for name in graph.order:
        if not contexts[name]:
            contexts[name][fallback] = (name,)

    ordered = {
        name: tuple(sorted(words, key=_word_sort_key))
        for name, words in contexts.items()
    }
    chains = {
        (name, word): chain
        for name, words in contexts.items()
        for word, chain in words.items()
    }
    return ContextMap(contexts=ordered, chains=chains,
                      saturated=frozenset(saturated), transfers=transfers)


def contexts_reusable(prev: ContextMap, prev_graph: CallGraph,
                      graph: CallGraph, program: A.Program,
                      changed: Set[str],
                      funcs: Optional[Dict[str, A.FuncDef]] = None) -> bool:
    """True when the context fixpoint recorded in ``prev`` is still exact
    for a program where only ``changed`` functions have new bodies.

    The propagation is deterministic in its inputs: the seed sequence
    (``graph.order`` restricted to entries/seeds) and, per evaluated
    ``(function, word)`` pair, the ``(callee, word-at-call)`` transfers it
    emits.  Unchanged functions emit identical transfers by construction
    (same body, same shared edge lists), so if every changed function's
    recomputed transfers match the recorded ones — for exactly the words it
    was evaluated under — the whole fixpoint replays identically and
    ``prev`` (contexts, witness chains, saturation) is valid verbatim.

    Callers must additionally ensure the ``seeds``/``entry_context`` inputs
    are unchanged; this function checks the graph-shape inputs
    (``order``/``entries``) and the transfer behavior.  ``funcs`` optionally
    supplies a name->FuncDef mapping (current bodies; only ``changed`` names
    are looked up), skipping the O(program) map build.
    """
    if prev.transfers is None:
        return False
    if graph.order != prev_graph.order or graph.entries != prev_graph.entries:
        return False
    if funcs is None:
        funcs = {f.name: f for f in program.funcs}
    for name in changed:
        contexts = prev.contexts.get(name)
        if contexts is None:
            return False
        edges = graph.edges[name]
        for word in contexts:
            recorded = prev.transfers.get((name, word))
            if recorded is None:
                # Fallback context added after the fixpoint drained: never
                # evaluated, so the new body cannot diverge through it.
                continue
            if not edges:
                if recorded != ():
                    return False
                continue
            words = compute_words(funcs[name], word).words
            sent = []
            for edge in edges:
                anchor = next((u for u in edge.anchor_uids if u in words),
                              None)
                at_call = words[anchor] if anchor is not None else word
                sent.append((edge.callee, canonical_word(at_call)))
            if tuple(sent) != recorded:
                return False
    return True


# ---------------------------------------------------------------------------
# Collective summaries
# ---------------------------------------------------------------------------


@dataclass
class FunctionSummary:
    """Which collectives a function executes, and how reliably."""

    #: Collective name -> ALWAYS | CONDITIONAL (NEVER entries are omitted).
    collectives: Dict[str, str] = field(default_factory=dict)

    def classify(self, name: str) -> str:
        return self.collectives.get(name, NEVER)

    @property
    def may_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.collectives))

    def describe(self) -> str:
        if not self.collectives:
            return "no collectives"
        return ", ".join(f"{n} [{c}]" for n, c in sorted(self.collectives.items()))


def _summarize_block(stmts: List[A.Stmt], summaries: Dict[str, FunctionSummary],
                     names: Set[str]) -> Tuple[Set[str], Set[str], bool]:
    """Return ``(may, must, exits_early)`` for a statement sequence.

    ``must`` is a conservative under-approximation: accumulation stops at
    the first statement that can leave the sequence early (return / break /
    continue), and loops contribute nothing (zero-trip possibility).
    """
    may: Set[str] = set()
    must: Set[str] = set()
    exited = False
    for stmt in stmts:
        s_may, s_must, s_exit = _summarize_stmt(stmt, summaries, names)
        may |= s_may
        if not exited:
            must |= s_must
        if s_exit:
            exited = True
    return may, must, exited


def _calls_in_exprs(stmt: A.Stmt) -> List[A.Call]:
    """Call nodes hanging off ``stmt``'s expression fields (not nested
    statements) — pre-order, source order."""
    out: List[A.Call] = []
    stack: List[A.Node] = [
        child for child in stmt.children() if isinstance(child, A.Expr)
    ]
    stack.reverse()
    while stack:
        node = stack.pop()
        if isinstance(node, A.Call):
            out.append(node)
        stack.extend(reversed([c for c in node.children()
                               if isinstance(c, A.Expr)]))
    return out


def _call_effect(call: A.Call, summaries: Dict[str, FunctionSummary],
                 names: Set[str]) -> Tuple[Set[str], Set[str]]:
    if is_collective(call.name):
        return {call.name}, {call.name}
    if call.name in names:
        summary = summaries.get(call.name)
        if summary is not None:
            may = set(summary.collectives)
            must = {n for n, c in summary.collectives.items() if c == ALWAYS}
            return may, must
    return set(), set()


def _summarize_stmt(stmt: A.Stmt, summaries: Dict[str, FunctionSummary],
                    names: Set[str]) -> Tuple[Set[str], Set[str], bool]:
    may: Set[str] = set()
    must: Set[str] = set()
    for call in _calls_in_exprs(stmt):
        c_may, c_must = _call_effect(call, summaries, names)
        may |= c_may
        must |= c_must

    if isinstance(stmt, (A.Return, A.Break, A.Continue)):
        return may, must, True
    if isinstance(stmt, A.Block):
        b_may, b_must, b_exit = _summarize_block(stmt.stmts, summaries, names)
        return may | b_may, must | b_must, b_exit
    if isinstance(stmt, A.If):
        t_may, t_must, t_exit = _summarize_block(stmt.then_body.stmts,
                                                 summaries, names)
        may |= t_may
        if stmt.else_body is not None:
            e_may, e_must, e_exit = _summarize_block(stmt.else_body.stmts,
                                                     summaries, names)
            may |= e_may
            must |= t_must & e_must
            return may, must, t_exit or e_exit
        return may, must, t_exit
    if isinstance(stmt, A.While):
        body_may, _must, _exit = _summarize_block(stmt.body.stmts, summaries, names)
        return may | body_may, must, False
    if isinstance(stmt, (A.For, A.OmpFor)):
        loop = stmt.loop if isinstance(stmt, A.OmpFor) else stmt
        if loop.init is not None:  # runs once, before the first test
            i_may, i_must, _exit = _summarize_stmt(loop.init, summaries, names)
            may |= i_may
            must |= i_must
        if isinstance(stmt, A.OmpFor) and loop.cond is not None:
            # The inner For is a statement child, so its condition was not
            # picked up by the expression scan above.
            for call in _calls_in_exprs(loop):
                c_may, _c_must, = _call_effect(call, summaries, names)
                may |= c_may
        if loop.step is not None:  # zero-trip loops skip it: may only
            s_may, _s_must, _exit = _summarize_stmt(loop.step, summaries, names)
            may |= s_may
        body_may, _must, _exit = _summarize_block(loop.body.stmts, summaries, names)
        return may | body_may, must, False
    if isinstance(stmt, A.OmpTask):
        # Deferred execution: counts as "may", never as "must".
        body_may, _must, _exit = _summarize_block(stmt.body.stmts, summaries, names)
        return may | body_may, must, False
    if isinstance(stmt, (A.OmpParallel, A.OmpSingle, A.OmpMaster, A.OmpCritical)):
        # Per MPI process the region body executes (by the team, one thread,
        # or the master — all at least once per process).
        b_may, b_must, _exit = _summarize_block(stmt.body.stmts, summaries, names)
        return may | b_may, must | b_must, False
    if isinstance(stmt, A.OmpSections):
        for section in stmt.sections:
            s_may, s_must, _exit = _summarize_block(section.stmts, summaries, names)
            may |= s_may
            must |= s_must
        return may, must, False
    return may, must, False


@dataclass
class _CfgFacts:
    """Per-function facts for the CFG post-dominance ``must`` check."""

    cfg: object
    #: collective name -> live CFG block ids directly executing it
    #: (task-deferred calls excluded: their execution point is unordered).
    direct: Dict[str, Set[int]]
    #: (callee name, block id) for every live, non-deferred call to a user
    #: function — blocked too when the callee's summary says ALWAYS.
    user_calls: Tuple[Tuple[str, int], ...]


def _exit_reachable_avoiding(cfg, blocked: Set[int]) -> bool:
    """True when some entry→exit path avoids every block in ``blocked`` —
    i.e. ``blocked`` does *not* collectively post-dominate the entry."""
    if cfg.entry_id in blocked:
        return False
    seen = {cfg.entry_id}
    stack = [cfg.entry_id]
    while stack:
        block = stack.pop()
        if block == cfg.exit_id:
            return True
        for succ in cfg.successors(block):
            if succ not in seen and succ not in blocked:
                seen.add(succ)
                stack.append(succ)
    return False


def _build_cfg_facts(func: A.FuncDef, names: Set[str],
                     index: ProgramIndex) -> _CfgFacts:
    cfg, ast_block = build_cfg(func, names)
    task_uids: Set[int] = set()
    for node in func.walk():
        if isinstance(node, A.OmpTask):
            task_uids.update(n.uid for n in node.walk())
    stmt_calls = {id(s.expr): s for s in index.call_stmts.get(func.name, [])}
    expr_sites = {id(s.call): s for s in index.expr_calls.get(func.name, [])}
    direct: Dict[str, Set[int]] = {}
    user_calls: List[Tuple[str, int]] = []
    for call in index.calls.get(func.name, []):
        target = call.name
        if not (is_collective(target) or target in names):
            continue
        if call.uid in task_uids:
            continue  # deferred: may-only, never a must event
        stmt = stmt_calls.get(id(call))
        if stmt is not None:
            uids: Tuple[int, ...] = (stmt.uid,)
        else:
            site = expr_sites.get(id(call))
            if site is None:
                continue
            uids = site.stmt_uids
        block = next((ast_block[u] for u in uids if u in ast_block), None)
        if block is None or block not in cfg.blocks:
            continue  # dead code: the call can never execute
        if is_collective(target):
            direct.setdefault(target, set()).add(block)
        else:
            user_calls.append((target, block))
    return _CfgFacts(cfg=cfg, direct=direct, user_calls=tuple(user_calls))


def _recompute_summary(name: str, funcs: Dict[str, A.FuncDef],
                       names: Set[str],
                       summaries: Dict[str, FunctionSummary],
                       index: ProgramIndex,
                       cfg_facts: Dict[str, _CfgFacts]) -> Dict[str, str]:
    """One summary evaluation for ``name`` given the current ``summaries``
    of its callees: structural walk plus the CFG post-dominance upgrade."""
    may, must, _exit = _summarize_block(funcs[name].body.stmts,
                                        summaries, names)
    if may - must:
        facts = cfg_facts.get(name)
        if facts is None:
            facts = cfg_facts[name] = _build_cfg_facts(funcs[name], names,
                                                       index)
        for cname in sorted(may - must):
            blocked = set(facts.direct.get(cname, ()))
            for callee, block in facts.user_calls:
                if summaries[callee].collectives.get(cname) == ALWAYS:
                    blocked.add(block)
            if blocked and not _exit_reachable_avoiding(facts.cfg, blocked):
                must.add(cname)
    return {n: (ALWAYS if n in must else CONDITIONAL) for n in sorted(may)}


def collective_summaries(program: A.Program,
                         graph: Optional[CallGraph] = None,
                         index: Optional[ProgramIndex] = None,
                         prev: Optional[Dict[str, FunctionSummary]] = None,
                         dirty: Optional[Set[str]] = None
                         ) -> Dict[str, FunctionSummary]:
    """Always/conditionally/never summaries for every function — fixpoint
    over the SCC DAG, callees first; cyclic SCCs iterate until stable.

    ``must`` is the union of the structural under-approximation and the CFG
    post-dominance check: a collective some path duplicates across branches
    (or runs just before an early ``return``) is still ``always`` when every
    entry→exit path of the CFG passes a block executing it.

    **Incremental mode** (the session layer): pass the previous program
    version's ``prev`` summaries and the set of ``dirty`` function names
    (bodies that changed, plus new functions).  An SCC is recomputed only
    when a member is dirty or some callee's summary actually changed —
    otherwise the previous summaries are copied.  Dirtiness therefore
    propagates up the call graph exactly as far as summaries really change,
    and the common one-function edit costs one SCC recomputation plus
    O(call-graph) comparisons instead of a whole-program fixpoint.
    """
    if index is None:
        index = index_program(program)
    if graph is None:
        graph = build_call_graph(program, index)
    funcs = {f.name: f for f in program.funcs}
    names = set(funcs)
    summaries: Dict[str, FunctionSummary] = {n: FunctionSummary() for n in names}
    incremental = prev is not None and dirty is not None
    #: Lazily built per function — only when the structural rule left some
    #: may-collective conditional (most functions never need their CFG here).
    cfg_facts: Dict[str, _CfgFacts] = {}

    def recompute(name: str) -> Dict[str, str]:
        return _recompute_summary(name, funcs, names, summaries, index,
                                  cfg_facts)

    for scc in graph.sccs:  # reverse topological: callees already final
        members = list(scc)
        if (incremental and not any(m in dirty for m in members)
                and all(m in prev for m in members)):
            scc_set = set(members)
            extern = {e.callee for m in members for e in graph.edges[m]
                      if e.callee in names and e.callee not in scc_set}
            if all(c in prev
                   and summaries[c].collectives == prev[c].collectives
                   for c in extern):
                # Clean SCC with unchanged callee summaries: copy through.
                for m in members:
                    summaries[m].collectives = dict(prev[m].collectives)
                continue
        if len(members) == 1 and members[0] not in graph.recursive:
            # Non-recursive singleton: the callees are final, so one pass
            # is the fixpoint — no confirmation round needed.
            summaries[members[0]].collectives = recompute(members[0])
            continue
        changed = True
        while changed:
            changed = False
            for name in members:
                new = recompute(name)
                if new != summaries[name].collectives:
                    summaries[name].collectives = new
                    changed = True
    if probes_active():
        if graph.recursive:
            probe("cg:recursive")
        for summary in summaries.values():
            for cls in summary.collectives.values():
                probe("cg:summary:" + cls)
    return summaries


def update_summaries(program: A.Program, graph: CallGraph,
                     index: ProgramIndex,
                     prev: Dict[str, FunctionSummary],
                     dirty: Set[str],
                     funcs: Optional[Dict[str, A.FuncDef]] = None,
                     names: Optional[Set[str]] = None,
                     complete: bool = False
                     ) -> Tuple[Dict[str, FunctionSummary], Set[str]]:
    """Scoped re-summarization: recompute only the SCCs containing ``dirty``
    names, then walk *up* the caller DAG exactly as far as summaries really
    change — O(dirty + changed-summary ancestors), not O(program).

    Unlike the incremental mode of :func:`collective_summaries` (which still
    visits every SCC to decide clean/dirty), this never touches an SCC that
    cannot be affected.  Recomputed members get *fresh*
    :class:`FunctionSummary` objects (``prev`` is never mutated); cyclic
    SCCs restart from the optimistic bottom so the least fixpoint matches a
    cold run byte for byte.  Returns ``(summaries, changed_names)`` where
    ``changed_names`` is every function whose summary differs from ``prev``.

    ``funcs`` (name -> current FuncDef) and ``names`` skip the O(program)
    map builds when the caller holds them; ``complete=True`` asserts every
    current function already has an entry in ``prev`` (no additions), which
    replaces the per-name seeding loop with one plain dict copy.
    """
    if funcs is None:
        funcs = {f.name: f for f in program.funcs}
    if names is None:
        names = set(funcs)
    if complete:
        summaries = dict(prev)
        pending = {n for n in dirty if n in names}
    else:
        summaries = {}
        for n in graph.order:
            known = prev.get(n)
            summaries[n] = known if known is not None else FunctionSummary()
        pending = {n for n in dirty if n in names}
        pending.update(n for n in names if n not in prev)
    cfg_facts: Dict[str, _CfgFacts] = {}
    heap = sorted({graph.scc_of[n] for n in pending})
    queued = set(heap)
    changed_names: Set[str] = set()
    # Ascending SCC index == reverse topological order, so every SCC is
    # final before any of its callers is processed (changes only propagate
    # toward strictly larger indices); each SCC is visited at most once.
    while heap:
        si = heapq.heappop(heap)
        members = graph.sccs[si]
        if len(members) == 1 and members[0] not in graph.recursive:
            name = members[0]
            fresh = FunctionSummary()
            summaries[name] = fresh
            fresh.collectives = _recompute_summary(name, funcs, names,
                                                   summaries, index,
                                                   cfg_facts)
        else:
            for m in members:
                summaries[m] = FunctionSummary()
            iterating = True
            while iterating:
                iterating = False
                for m in members:
                    new = _recompute_summary(m, funcs, names, summaries,
                                             index, cfg_facts)
                    if new != summaries[m].collectives:
                        summaries[m].collectives = new
                        iterating = True
        for m in members:
            old = prev.get(m)
            if old is None or summaries[m].collectives != old.collectives:
                changed_names.add(m)
                for edge in graph.callers.get(m, ()):
                    ci = graph.scc_of[edge.caller]
                    if ci != si and ci not in queued:
                        heapq.heappush(heap, ci)
                        queued.add(ci)
    return summaries, changed_names


# ---------------------------------------------------------------------------
# Graphviz export (same style as cfg/dot.py)
# ---------------------------------------------------------------------------

_SUMMARY_COLORS = {
    ALWAYS: "gold",
    CONDITIONAL: "khaki",
    NEVER: "white",
}


def callgraph_to_dot(graph: CallGraph, contexts: ContextMap,
                     summaries: Dict[str, FunctionSummary]) -> str:
    """Render the call graph as a DOT digraph: one node per function labeled
    with its context words and collective summary (gold = always executes a
    collective, khaki = conditionally, white = never; a doubled border marks
    recursion), one edge per call site (dashed = expression-level call)."""
    from ..parallelism import format_word  # local import: avoid cycle noise

    lines = ['digraph "callgraph" {', "  node [shape=box, style=filled];"]
    for name in graph.order:
        summary = summaries[name]
        worst = NEVER
        for cls in summary.collectives.values():
            if cls == ALWAYS:
                worst = ALWAYS
            elif worst != ALWAYS:
                worst = CONDITIONAL
        color = _SUMMARY_COLORS[worst]
        ctx = " | ".join(format_word(w) for w in contexts.contexts[name])
        label = f"{name}\\nctx: {ctx}\\n{summary.describe()}"
        extra = ", peripheries=2" if name in graph.recursive else ""
        lines.append(f'  "{name}" [label="{label}", fillcolor={color}{extra}];')
    for name in graph.order:
        for edge in graph.edges[name]:
            style = " [style=dashed]" if edge.expression else ""
            lines.append(f'  "{edge.caller}" -> "{edge.callee}"{style};')
    lines.append("}")
    return "\n".join(lines) + "\n"
