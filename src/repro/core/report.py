"""Human- and machine-readable rendering of analysis results.

Besides the classic text report this module owns the **unified Report IR**:
one versioned JSON schema (``schema: "parcoach-report"``, ``version: 1``)
that every verdict-producing subcommand — ``analyze``, ``callgraph``,
``explore``, ``fuzz`` and the ``serve``/``watch`` session layer — emits via
``--json``.  Every *finding* (a static diagnostic, a failing schedule
class, a fuzzer disagreement) carries a stable **fingerprint**: a SHA-256
over the finding's reportable content with all parse-transient identity
(AST uids inside parallelism-word region ids) canonicalized away, so two
runs over identical source produce byte-identical reports regardless of
parse identity, and a session can diff two reports by fingerprint set.
The schema contract lives in ``docs/report-schema.md``.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Any, Dict, List, Optional

from ..parallelism import EMPTY, format_word
from .diagnostics import Diagnostic, ErrorCode
from .driver import ProgramAnalysis


def analysis_summary(analysis: ProgramAnalysis,
                     canonical: bool = False) -> Dict[str, Any]:
    """A JSON-friendly summary of one program analysis.

    With ``canonical=True`` the per-function context words are renumbered
    through :func:`canonical_region_ids` so the summary is stable across
    re-parses (the Report IR uses this; the human verbose report keeps the
    raw region ids, which are real AST uids)."""
    fmt = ((lambda w: canonical_region_ids(format_word(w))) if canonical
           else format_word)
    per_function = {}
    for name, fa in analysis.functions.items():
        per_function[name] = {
            "blocks": len(fa.cfg),
            "collectives": fa.n_collectives,
            "sites": len(fa.sites),
            "flagged": fa.flagged,
            "instrumented": fa.instrumented,
            "multithreaded_sites": len(fa.monothread.multithreaded_sites),
            "concurrent_pairs": len(fa.concurrency.concurrent_pairs),
            "mismatch_conditionals": len(fa.sequence.conditionals),
            "required_level": fa.monothread.max_required_level.mpi_name,
            "contexts": [fmt(w) for w in fa.context_words],
        }
        if analysis.summaries is not None:
            per_function[name]["collective_summary"] = dict(
                analysis.summaries[name].collectives)
    warnings_by_code = {
        code.value: analysis.diagnostics.count(code) for code in ErrorCode
    }
    return {
        "functions": per_function,
        "warnings_total": len(analysis.diagnostics),
        "warnings_by_code": warnings_by_code,
        "collective_functions": sorted(analysis.collective_funcs),
        "flagged_functions": sorted(analysis.flagged_functions),
        "instrumented_functions": sorted(analysis.instrumented_functions),
        "requested_level": (
            analysis.requested_level.mpi_name if analysis.requested_level else None
        ),
        "verified": analysis.verified,
        "precision": analysis.precision,
        "interprocedural": analysis.interprocedural,
    }


def render_report(analysis: ProgramAnalysis, verbose: bool = False) -> str:
    """Multi-line text report (what the CLI prints)."""
    lines = []
    summary = analysis_summary(analysis)
    lines.append(f"PARCOACH analysis of {analysis.program.filename}")
    lines.append(
        f"  functions: {len(analysis.functions)}; "
        f"with collectives: {len(analysis.collective_funcs)}; "
        f"flagged: {len(analysis.flagged_functions)}; "
        f"instrumented: {len(analysis.instrumented_functions)}"
    )
    if analysis.requested_level is not None:
        lines.append(f"  requested thread level: {analysis.requested_level.mpi_name}")
    lines.append(f"  warnings: {summary['warnings_total']}")
    for code, count in summary["warnings_by_code"].items():
        if count:
            lines.append(f"    {code}: {count}")
    lines.append("")
    lines.append(analysis.diagnostics.render().rstrip() or "no warnings")
    if verbose:
        lines.append("")
        for name, fa in sorted(analysis.functions.items()):
            lines.append(f"  function {name}: {len(fa.cfg)} blocks, "
                         f"{fa.n_collectives} collectives")
            if fa.context_words != (EMPTY,):
                formatted = " | ".join(format_word(w) for w in fa.context_words)
                lines.append(f"    contexts: {formatted}")
            infos = fa.word_infos or (fa.word_info,)
            for site in fa.sites:
                words = []
                for info in infos:
                    text = format_word(info.words[site.uid])
                    if text not in words:
                        words.append(text)
                lines.append(
                    f"    {site.name} (line {site.line}): pw = {' | '.join(words)}"
                )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Unified Report IR (schema "parcoach-report", version 1)
# ---------------------------------------------------------------------------

REPORT_SCHEMA = "parcoach-report"
REPORT_VERSION = 1

#: Region-id token inside a formatted parallelism word: P<uid> / S<uid>.
#: Canonical interprocedural words use negative ids (P-1), per-function
#: words use raw AST uids — both renumber to 1, 2, ... first-occurrence.
_REGION_ID = re.compile(r"\b([PS])(-?\d+)\b")


def canonical_region_ids(text: str) -> str:
    """Renumber every ``P<i>``/``S<i>`` region id in ``text`` to 1, 2, ...
    in first-occurrence order.

    Region ids are AST uids — transient parse identity.  No two structurally
    identical parses share them, so any uid reaching the Report IR would
    break byte-identity across re-parses; this is the one normalization the
    IR applies to rendered parallelism words."""
    mapping: Dict[str, str] = {}

    def sub(match: "re.Match[str]") -> str:
        rid = match.group(2)
        new = mapping.get(rid)
        if new is None:
            new = mapping[rid] = str(len(mapping) + 1)
        return match.group(1) + new

    return _REGION_ID.sub(sub, text)


def finding_fingerprint(payload: Dict[str, Any]) -> str:
    """Stable 16-hex-digit fingerprint of one finding.

    Hashes the canonical JSON (sorted keys, compact separators) of the
    finding's content — everything except the ``fingerprint`` field itself.
    Stability guarantee: the fingerprint changes iff a reportable field
    changes; it never depends on parse identity (callers canonicalize
    region ids first), discovery order, or schedule timing."""
    content = {k: v for k, v in payload.items() if k != "fingerprint"}
    blob = json.dumps(content, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _fingerprinted(payload: Dict[str, Any]) -> Dict[str, Any]:
    payload["fingerprint"] = finding_fingerprint(payload)
    return payload


def diagnostic_finding(diag: Diagnostic) -> Dict[str, Any]:
    """One static diagnostic as a Report IR finding."""
    return _fingerprinted({
        "kind": "static-diagnostic",
        "code": diag.code.value,
        "function": diag.function,
        "message": diag.message,
        "severity": diag.severity,
        "collectives": [{"name": c.name, "line": c.line}
                        for c in diag.collectives],
        "conditionals": sorted(set(diag.conditionals)),
        "context": canonical_region_ids(diag.context),
        "call_path": list(diag.call_path),
    })


def source_stamp(path: Optional[str],
                 text: Optional[str]) -> Optional[Dict[str, Any]]:
    if path is None and text is None:
        return None
    stamp: Dict[str, Any] = {"file": path}
    if text is not None:
        stamp["sha256"] = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return stamp


def build_report(tool: str, *, source: Optional[Dict[str, Any]],
                 findings: List[Dict[str, Any]],
                 summary: Dict[str, Any],
                 verdict: Optional[str] = None) -> Dict[str, Any]:
    """Assemble one Report IR document (see ``docs/report-schema.md``)."""
    if verdict is None:
        verdict = "findings" if findings else "clean"
    return {
        "schema": REPORT_SCHEMA,
        "version": REPORT_VERSION,
        "tool": tool,
        "source": source,
        "verdict": verdict,
        "findings": findings,
        "summary": summary,
    }


def render_json(report: Dict[str, Any]) -> str:
    """The IR's one serialization: sorted keys, compact separators, one
    trailing newline — byte-identical for equal content."""
    return json.dumps(report, sort_keys=True, separators=(",", ":")) + "\n"


# -- per-tool report builders -------------------------------------------------------


def report_from_analysis(analysis: ProgramAnalysis,
                         source_path: Optional[str] = None,
                         source_text: Optional[str] = None,
                         tool: str = "analyze") -> Dict[str, Any]:
    findings = [diagnostic_finding(d) for d in analysis.diagnostics]
    return build_report(
        tool,
        source=source_stamp(source_path, source_text),
        findings=findings,
        summary=analysis_summary(analysis, canonical=True),
    )


def report_from_callgraph(graph, contexts, summaries,
                          source_path: Optional[str] = None,
                          source_text: Optional[str] = None) -> Dict[str, Any]:
    functions = {}
    for name in graph.order:
        functions[name] = {
            "contexts": [canonical_region_ids(format_word(w))
                         for w in contexts.contexts[name]],
            "collectives": dict(summaries[name].collectives),
            "recursive": name in graph.recursive,
            "saturated": name in contexts.saturated,
            "calls": [{"callee": e.callee, "line": e.line,
                       "expression": e.expression}
                      for e in graph.edges[name]],
        }
    return build_report(
        "callgraph",
        source=source_stamp(source_path, source_text),
        findings=[],
        summary={"functions": functions, "entries": list(graph.entries),
                 "call_edges": graph.n_edges},
    )


def report_from_explore(config_reports,
                        source_path: Optional[str] = None,
                        source_text: Optional[str] = None) -> Dict[str, Any]:
    findings: List[Dict[str, Any]] = []
    configs: List[Dict[str, Any]] = []
    for report in config_reports:
        configs.append({
            "config": report.config.as_dict(),
            "strategy": report.strategy,
            "schedules": report.schedules,
            "clean": report.clean,
            "failed": report.failed,
            "verdicts": dict(sorted(report.verdict_counts.items())),
        })
        if report.failed:
            first = report.failures[0] if report.failures else None
            findings.append(_fingerprinted({
                "kind": "schedule-failure",
                "config": report.config.as_dict(),
                "strategy": report.strategy,
                "schedules": report.schedules,
                "failed": report.failed,
                "verdict": first.verdict if first else "",
                "verdict_class": first.verdict_class if first else "",
            }))
    return build_report(
        "explore",
        source=source_stamp(source_path, source_text),
        findings=findings,
        summary={"configurations": configs,
                 "schedules": sum(c["schedules"] for c in configs),
                 "failed": sum(c["failed"] for c in configs)},
    )


def report_from_fuzz(fuzz_report, seeds: int, base_seed: int) -> Dict[str, Any]:
    findings = []
    for outcome in fuzz_report.disagreements:
        findings.append(_fingerprinted({
            "kind": "fuzz-disagreement",
            "seed": outcome.seed,
            "classification": outcome.classification,
            "verdict": outcome.verdict.as_dict(),
            "repro": outcome.repro,
        }))
    summary = {
        "seeds": seeds,
        "base_seed": base_seed,
        "counts": dict(sorted(fuzz_report.counts.items())),
        "overapprox_seeds": list(fuzz_report.overapprox_seeds),
        "reduced": [{"name": n, "path": p} for n, p in fuzz_report.reduced],
    }
    coverage_map = getattr(fuzz_report, "coverage_map", None)
    if coverage_map is not None:
        # Deterministic aggregates only (no elapsed/rate): two runs of the
        # same campaign emit byte-identical coverage summaries.
        summary["coverage"] = {
            "features": coverage_map.feature_count,
            "signatures": coverage_map.distinct_signatures,
            "distinct_findings": len(fuzz_report.dedupe),
            "duplicates": fuzz_report.duplicates,
        }
    return build_report(
        "fuzz",
        source=None,
        findings=findings,
        summary=summary,
    )


# -- schema validation --------------------------------------------------------------

_FINDING_REQUIRED: Dict[str, tuple] = {
    "static-diagnostic": ("code", "function", "message", "severity",
                          "collectives", "conditionals", "context",
                          "call_path"),
    "schedule-failure": ("config", "strategy", "schedules", "failed",
                         "verdict", "verdict_class"),
    "fuzz-disagreement": ("seed", "classification", "verdict", "repro"),
}

_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{16}$")


def validate_report(report: Any) -> List[str]:
    """Structural validation of one Report IR document.

    Returns a list of problems (empty = valid).  Deliberately hand-rolled —
    the container must not depend on a jsonschema package — and strict about
    the invariants the IR guarantees: schema/version stamp, known tool,
    verdict consistency, finding kinds, and fingerprints that *recompute* to
    their recorded value (the stability contract, checked end-to-end)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema") != REPORT_SCHEMA:
        problems.append(f"schema must be {REPORT_SCHEMA!r}")
    if report.get("version") != REPORT_VERSION:
        problems.append(f"version must be {REPORT_VERSION}")
    tool = report.get("tool")
    if tool not in ("analyze", "callgraph", "explore", "fuzz", "serve",
                    "watch", "batch", "project"):
        problems.append(f"unknown tool {tool!r}")
    verdict = report.get("verdict")
    if verdict not in ("clean", "findings", "error"):
        problems.append(f"unknown verdict {verdict!r}")
    source = report.get("source")
    if source is not None:
        if not isinstance(source, dict) or "file" not in source:
            problems.append("source must be null or an object with 'file'")
    if not isinstance(report.get("summary"), dict):
        problems.append("summary must be an object")
    findings = report.get("findings")
    if not isinstance(findings, list):
        return problems + ["findings must be an array"]
    summary = report.get("summary")
    incremental = (summary.get("incremental")
                   if isinstance(summary, dict) else None)
    if tool in ("serve", "watch", "project") and isinstance(incremental, dict):
        # Delta documents list only the findings that *appeared*; the
        # verdict tracks the total live findings instead.
        total = incremental.get("findings_total", 0)
        if verdict == "clean" and total:
            problems.append("verdict 'clean' with findings_total > 0")
        if verdict == "findings" and not total:
            problems.append("verdict 'findings' with findings_total == 0")
    else:
        if verdict == "clean" and findings:
            problems.append("verdict 'clean' with non-empty findings")
        if verdict == "findings" and not findings:
            problems.append("verdict 'findings' with no findings")
    for i, finding in enumerate(findings):
        where = f"findings[{i}]"
        if not isinstance(finding, dict):
            problems.append(f"{where}: not an object")
            continue
        kind = finding.get("kind")
        required = _FINDING_REQUIRED.get(kind)
        if required is None:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        missing = [f for f in required if f not in finding]
        if missing:
            problems.append(f"{where}: missing fields {missing}")
        fp = finding.get("fingerprint")
        if not isinstance(fp, str) or not _FINGERPRINT_RE.match(fp):
            problems.append(f"{where}: malformed fingerprint {fp!r}")
        elif finding_fingerprint(finding) != fp:
            problems.append(f"{where}: fingerprint does not recompute "
                            f"(recorded {fp}, "
                            f"computed {finding_fingerprint(finding)})")
    return problems


def _validate_main(argv: List[str]) -> int:
    """``python -m repro.core.report FILE...`` — validate Report IR files
    (``-`` reads stdin; files may hold one document or JSON lines).  Exit 0
    when every document validates, 2 otherwise."""
    import sys

    failed = False
    for path in argv or ["-"]:
        text = (sys.stdin.read() if path == "-"
                else open(path, "r", encoding="utf-8").read())
        docs: List[Any] = []
        try:
            docs = [json.loads(text)]
        except json.JSONDecodeError:
            try:
                docs = [json.loads(line) for line in text.splitlines() if line]
            except json.JSONDecodeError as exc:
                print(f"{path}: not JSON ({exc})", file=sys.stderr)
                failed = True
                continue
        for i, doc in enumerate(docs):
            problems = validate_report(doc)
            for problem in problems:
                print(f"{path}[{i}]: {problem}", file=sys.stderr)
            failed = failed or bool(problems)
            if not problems:
                print(f"{path}[{i}]: ok ({doc.get('tool')}, "
                      f"{len(doc.get('findings', []))} findings)")
    return 2 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    import sys

    sys.exit(_validate_main(sys.argv[1:]))
