"""Human- and machine-readable rendering of analysis results."""

from __future__ import annotations

from typing import Any, Dict

from ..parallelism import EMPTY, format_word
from .diagnostics import ErrorCode
from .driver import ProgramAnalysis


def analysis_summary(analysis: ProgramAnalysis) -> Dict[str, Any]:
    """A JSON-friendly summary of one program analysis."""
    per_function = {}
    for name, fa in analysis.functions.items():
        per_function[name] = {
            "blocks": len(fa.cfg),
            "collectives": fa.n_collectives,
            "sites": len(fa.sites),
            "flagged": fa.flagged,
            "instrumented": fa.instrumented,
            "multithreaded_sites": len(fa.monothread.multithreaded_sites),
            "concurrent_pairs": len(fa.concurrency.concurrent_pairs),
            "mismatch_conditionals": len(fa.sequence.conditionals),
            "required_level": fa.monothread.max_required_level.mpi_name,
            "contexts": [format_word(w) for w in fa.context_words],
        }
        if analysis.summaries is not None:
            per_function[name]["collective_summary"] = dict(
                analysis.summaries[name].collectives)
    warnings_by_code = {
        code.value: analysis.diagnostics.count(code) for code in ErrorCode
    }
    return {
        "functions": per_function,
        "warnings_total": len(analysis.diagnostics),
        "warnings_by_code": warnings_by_code,
        "collective_functions": sorted(analysis.collective_funcs),
        "flagged_functions": sorted(analysis.flagged_functions),
        "instrumented_functions": sorted(analysis.instrumented_functions),
        "requested_level": (
            analysis.requested_level.mpi_name if analysis.requested_level else None
        ),
        "verified": analysis.verified,
        "precision": analysis.precision,
        "interprocedural": analysis.interprocedural,
    }


def render_report(analysis: ProgramAnalysis, verbose: bool = False) -> str:
    """Multi-line text report (what the CLI prints)."""
    lines = []
    summary = analysis_summary(analysis)
    lines.append(f"PARCOACH analysis of {analysis.program.filename}")
    lines.append(
        f"  functions: {len(analysis.functions)}; "
        f"with collectives: {len(analysis.collective_funcs)}; "
        f"flagged: {len(analysis.flagged_functions)}; "
        f"instrumented: {len(analysis.instrumented_functions)}"
    )
    if analysis.requested_level is not None:
        lines.append(f"  requested thread level: {analysis.requested_level.mpi_name}")
    lines.append(f"  warnings: {summary['warnings_total']}")
    for code, count in summary["warnings_by_code"].items():
        if count:
            lines.append(f"    {code}: {count}")
    lines.append("")
    lines.append(analysis.diagnostics.render().rstrip() or "no warnings")
    if verbose:
        lines.append("")
        for name, fa in sorted(analysis.functions.items()):
            lines.append(f"  function {name}: {len(fa.cfg)} blocks, "
                         f"{fa.n_collectives} collectives")
            if fa.context_words != (EMPTY,):
                formatted = " | ".join(format_word(w) for w in fa.context_words)
                lines.append(f"    contexts: {formatted}")
            infos = fa.word_infos or (fa.word_info,)
            for site in fa.sites:
                words = []
                for info in infos:
                    text = format_word(info.words[site.uid])
                    if text not in words:
                        words.append(text)
                lines.append(
                    f"    {site.name} (line {site.line}): pw = {' | '.join(words)}"
                )
    return "\n".join(lines) + "\n"
