"""Memoized + parallel batch analysis engine.

Batch workloads (the errors gallery, the EPCC suite, `parcoach batch`, the
compile pipeline run once per mode) re-analyze structurally identical
functions over and over.  :class:`AnalysisEngine` removes that redundancy:

* **Memoization** — per-function artifacts are cached under a *structural
  fingerprint* of the function AST (type/field/line-sensitive, uid- and
  column-insensitive), plus everything else the per-function pipeline
  depends on: the initial parallelism word, the phase-3 precision, and the
  function's calls that resolve to user / collective functions.  Every
  cache entry also records the cached tree's pre-order uid sequence
  (``uid_at_pos``) — stable pre-order *positions*, not transient uids, are
  the native key of the store: a re-parse of the same source hits the cache
  and the uid-keyed artifact maps are rebuilt from the position sequence
  with a single walk of the *new* tree only, and only **lazily** — the
  remap is deferred until something actually consumes the per-uid maps
  (rendering a report, instrumenting).  A reparse hit whose result is never
  rendered does zero per-uid remap work and is exactly as cheap as an
  identity hit (``stats.lazy_hits`` counts deferred hits, ``stats.remaps``
  counts remaps actually materialized).

* **Parallel fan-out** — the per-function phases are independent, so cache
  misses can be analyzed in a process pool (``jobs > 1``).  Results are
  merged back in program order, which keeps diagnostics, check-group
  numbering, and the instrumentation plan byte-identical to a serial run.

Caveats (by design):

* Analyzed ASTs are treated as immutable.  The one sanctioned in-place
  mutator, ``instrument_program(..., in_place=True)``, bumps a
  ``structure_version`` marker on every function it rewrites; the engine
  checks the marker in O(1) and re-analyzes instead of serving stale
  artifacts.  Other out-of-band AST mutation is undefined behaviour.
* Cached diagnostics are shared objects.  Their rendered text embeds the
  parallelism-word region ids of the *first* analyzed instance; a remapped
  hit reuses that text (semantically identical — region ids are arbitrary
  internal labels).
"""

from __future__ import annotations

import hashlib
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..minilang import ast_nodes as A
from ..util.faultinject import fault_site
from ..util.resilience import Deadline, RetryPolicy
from ..parallelism import EMPTY, Word, WordInfo
from ..parallelism.word import P, S
from .concurrency import ConcurrencyResult
from .driver import (
    FunctionArtifacts,
    InterproceduralPlan,
    ProgramAnalysis,
    _analyze_function,
    _assemble,
    _find_requested_level,
    _merge_artifacts,
    build_plan,
)
from .diagnostics import SourceRef
from .monothread import MonothreadResult
from .sites import (
    CollectiveSite,
    ProgramIndex,
    collective_call_graph,
    index_program,
)


def ast_fingerprint(func: A.FuncDef) -> str:
    """Structural hash of a function AST.

    Dataclass ``repr`` recursively serializes every node with its fields and
    ``line`` but *excludes* ``uid`` and ``col`` (declared ``repr=False``), so
    two re-parses of the same source — or of sources differing only in
    same-line whitespace — share a fingerprint, while any structural or
    line-position difference changes it.  (Lines are part of the fingerprint
    because diagnostics are line-addressed; columns are reported nowhere.)"""
    return hashlib.sha256(repr(func).encode("utf-8")).hexdigest()


#: Cache key: fingerprint + everything else `_analyze_function` reads —
#: the context word, the precision, the resolved call sets, and the
#: structural token of the interprocedural expression-call points.
_Key = Tuple[str, Word, str, Tuple[str, ...], Tuple[str, ...],
             Tuple[Tuple[int, str], ...]]


@dataclass
class EngineStats:
    """Counters exposed by :meth:`AnalysisEngine.cache_info`.

    All fields are plain ints, so :meth:`as_dict` round-trips through JSON
    losslessly (``from_dict(json.loads(json.dumps(s.as_dict()))) == s``);
    the derived ``hit_rate`` is recomputed, never stored.
    """

    programs: int = 0
    functions: int = 0
    hits: int = 0
    misses: int = 0
    #: Reparse hits whose per-uid remap was deferred (served as a lazy view).
    lazy_hits: int = 0
    #: Remaps actually materialized (a consumer touched the per-uid maps).
    remaps: int = 0
    #: Deferred remaps whose cache source had mutated by materialization
    #: time; the function was re-analyzed from scratch instead.
    remap_fallbacks: int = 0
    #: Cache entries dropped via :meth:`AnalysisEngine.invalidate_fingerprints`
    #: (the session evicts edited / renamed / deleted functions' artifacts).
    evictions: int = 0
    #: Functions re-analyzed because a call-graph *dependency* changed (a
    #: callee's summary or context made the cache key move), not their own
    #: body — counted by the session layer.
    dependency_invalidations: int = 0
    #: Open files whose merged-program contribution (function list,
    #: fingerprints, signatures) was reused verbatim across a session update
    #: instead of being rebuilt — counted by the session layer.
    assembly_reuses: int = 0
    #: Functions whose call edges were re-derived by the incremental call
    #: graph (:func:`repro.core.callgraph.update_call_graph`) — everyone
    #: else's edge lists were shared with the previous graph.
    edges_recomputed: int = 0
    #: Incremental call-graph updates that fell back to a full SCC
    #: condensation rebuild (an edge changed SCC membership or the function
    #: set changed).
    graph_rebuilds: int = 0
    #: Functions analyzed in worker processes.
    parallel_tasks: int = 0
    #: Process-pool infrastructure failures (BrokenProcessPool, a dead or
    #: hung worker, an unpicklable payload) — each one previously fell back
    #: silently; now counted and surfaced by ``batch --stats``.
    pool_failures: int = 0
    #: Pools respawned after a failure (bounded retry with backoff).
    pool_respawns: int = 0
    #: Analyze calls that gave up on the pool entirely and degraded to the
    #: serial path after the respawn budget was exhausted.
    degraded_serial: int = 0
    #: Functions whose cached artifacts were shifted in place by a
    #: line-offset patch (:meth:`AnalysisEngine.patch_function_lines`)
    #: instead of being re-analyzed.
    line_patches: int = 0
    #: Cache misses satisfied from the shared on-disk artifact store.
    store_hits: int = 0
    #: Cache misses that probed the on-disk store and found nothing.
    store_misses: int = 0
    #: Artifacts written through to the on-disk store.
    store_writes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def deferred_remaps(self) -> int:
        """Lazy hits whose remap was never (or not yet) materialized."""
        return self.lazy_hits - self.remaps - self.remap_fallbacks

    def as_dict(self) -> Dict[str, float]:
        return {
            "programs": self.programs,
            "functions": self.functions,
            "hits": self.hits,
            "misses": self.misses,
            "lazy_hits": self.lazy_hits,
            "remaps": self.remaps,
            "deferred_remaps": self.deferred_remaps,
            "remap_fallbacks": self.remap_fallbacks,
            "evictions": self.evictions,
            "dependency_invalidations": self.dependency_invalidations,
            "assembly_reuses": self.assembly_reuses,
            "edges_recomputed": self.edges_recomputed,
            "graph_rebuilds": self.graph_rebuilds,
            "parallel_tasks": self.parallel_tasks,
            "pool_failures": self.pool_failures,
            "pool_respawns": self.pool_respawns,
            "degraded_serial": self.degraded_serial,
            "line_patches": self.line_patches,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "store_writes": self.store_writes,
            "hit_rate": round(self.hit_rate, 4),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "EngineStats":
        """Inverse of :meth:`as_dict` (derived entries are ignored)."""
        kwargs = {f: int(data[f]) for f in (
            "programs", "functions", "hits", "misses", "lazy_hits", "remaps",
            "remap_fallbacks", "evictions", "dependency_invalidations",
            "assembly_reuses", "edges_recomputed", "graph_rebuilds",
            "parallel_tasks", "pool_failures", "pool_respawns",
            "degraded_serial", "line_patches", "store_hits", "store_misses",
            "store_writes",
        ) if f in data}
        return cls(**kwargs)


@dataclass
class _CacheEntry:
    artifacts: FunctionArtifacts
    #: `structure_version` of `artifacts.func` at analysis time.  In-place
    #: instrumentation bumps the version, so a mutated cache source is
    #: detected in O(1) instead of being served as stale artifacts.
    version: int
    key: _Key
    #: The cached function's uids in pre-order — the content-addressed
    #: store's native coordinate system.  A remap onto a re-parsed tree only
    #: walks the *new* tree (equal fingerprints guarantee equal shape) and
    #: pairs its nodes with this sequence positionally; the old tree is
    #: never re-walked.
    uid_at_pos: Tuple[int, ...] = ()


@dataclass
class _ProgramMemo:
    """Cached program-level facts (index, call graph, requested level) for
    the identity fast path — valid while the program's function list and the
    structure versions of all its functions are unchanged."""

    program: A.Program
    funcs: Tuple[A.FuncDef, ...]
    versions: Tuple[int, ...]
    index: ProgramIndex
    collective_funcs: set
    func_names: set
    requested: object
    #: (entry_context, sorted initial_words items) -> interprocedural plan.
    plans: Dict[tuple, InterproceduralPlan] = field(default_factory=dict)


def _version(func: A.FuncDef) -> int:
    return getattr(func, "structure_version", 0)


#: Bounds for the id-keyed identity/program memos.  They only pay off when
#: the *same object* is re-analyzed, so entries from one-shot parses (e.g.
#: `parcoach batch`, which re-parses per file) are dead weight — evict
#: oldest-first instead of pinning every AST ever seen for the engine's
#: lifetime.  The limit must exceed the function count of the largest
#: project held live in one session (the XXL bench shape is 1000 files
#: x ~8 functions), or every whole-project pass thrashes the memos.
_IDENTITY_MEMO_LIMIT = 65536
_PROGRAM_MEMO_LIMIT = 64


def _evict_oldest(memo: Dict, limit: int) -> None:
    while len(memo) > limit:
        memo.pop(next(iter(memo)))


def _remap_word(word: Word, uid_map: Dict[int, int]) -> Word:
    """Rewrite the region ids inside a parallelism word onto new AST uids."""
    out = []
    for token in word:
        if isinstance(token, P):
            out.append(P(uid_map.get(token.region_id, token.region_id)))
        elif isinstance(token, S):
            out.append(S(uid_map.get(token.region_id, token.region_id), token.kind))
        else:
            out.append(token)
    return tuple(out)


def _remap_artifacts(entry: _CacheEntry,
                     new_func: A.FuncDef) -> Optional[FunctionArtifacts]:
    """Transplant cached artifacts onto a structurally identical AST.

    Equal fingerprints guarantee equal tree shape, so the cached pre-order
    uid sequence (``entry.uid_at_pos``) pairs up position-for-position with
    a single pre-order walk of the *new* function; every uid-keyed map is
    rewritten through that pairing (the old tree is not re-walked and no
    per-node type checks are needed — the fingerprint already proved the
    shapes equal).  The CFG (keyed by block ids, not uids) and the phase-3
    result ride along unchanged — including the dominator trees already
    cached on the CFG.  Returns ``None`` when the node counts do not match
    after all (mutated cache source): caller re-analyzes.
    """
    old = entry.artifacts
    uid_at_pos = entry.uid_at_pos or tuple(n.uid for n in old.func.walk())
    new_nodes = list(new_func.walk())
    if len(uid_at_pos) != len(new_nodes):
        return None
    node_map: Dict[int, A.Node] = dict(zip(uid_at_pos, new_nodes))
    uid_map: Dict[int, int] = {o: n.uid for o, n in zip(uid_at_pos, new_nodes)}

    sites: List[CollectiveSite] = []
    for s in old.sites:
        stmt = node_map[s.stmt.uid]
        assert isinstance(stmt, A.ExprStmt)
        sites.append(CollectiveSite(stmt=stmt, call=stmt.expr,  # type: ignore[arg-type]
                                    kind=s.kind, name=s.name, line=s.line))
    site_by_old_uid = {o.uid: new for o, new in zip(old.sites, sites)}

    mono = MonothreadResult(
        multithreaded_sites=[site_by_old_uid[s.uid]
                             for s in old.monothread.multithreaded_sites],
        sipw_uids={uid_map[u] for u in old.monothread.sipw_uids},
        required_levels={uid_map[k]: v
                         for k, v in old.monothread.required_levels.items()},
        diagnostics=old.monothread.diagnostics,
    )
    conc = ConcurrencyResult(
        concurrent_pairs=[(uid_map[a], uid_map[b])
                          for a, b in old.concurrency.concurrent_pairs],
        scc_uids={uid_map[u] for u in old.concurrency.scc_uids},
        groups={uid_map[k]: uid_map[v]
                for k, v in old.concurrency.groups.items()},
        diagnostics=old.concurrency.diagnostics,
    )
    wi = old.word_info
    word_info = WordInfo(
        words={uid_map[k]: _remap_word(w, uid_map) for k, w in wi.words.items()},
        enclosing={uid_map[k]: tuple(uid_map[e] for e in v)
                   for k, v in wi.enclosing.items()},
        construct_kinds={uid_map[k]: v for k, v in wi.construct_kinds.items()},
        construct_nodes={uid_map[k]: node_map[k] for k in wi.construct_nodes},
    )
    return FunctionArtifacts(
        func=new_func, cfg=old.cfg,
        ast_block={uid_map[k]: v for k, v in old.ast_block.items()},
        word_info=word_info, sites=sites, monothread=mono, concurrency=conc,
        sequence=old.sequence, flagged=old.flagged,
    )


def _shift_artifact_lines(art: FunctionArtifacts, delta: int) -> None:
    """Shift every line-addressed field of one function's artifacts in
    place (the AST itself is shifted separately via ``shift_lines``)."""
    for site in art.sites:
        site.line += delta
    for block in art.cfg:
        block.line += delta
    for result in (art.monothread, art.concurrency, art.sequence):
        for diag in result.diagnostics:
            diag.collectives = tuple(
                SourceRef(ref.name, ref.line + delta)
                for ref in diag.collectives)
            diag.conditionals = tuple(c + delta for c in diag.conditionals)


@dataclass
class _PendingRemap:
    """A reparse cache hit whose per-uid remap has not been materialized.

    Carries everything needed either to materialize the remap (the cache
    entry + the new function) or — if the cached source mutated in the
    meantime — to re-analyze the function from scratch."""

    entry: _CacheEntry
    func: A.FuncDef
    word: Word
    call_stmts: object
    extra: object


class LazyProgramAnalysis:
    """Deferred :class:`~repro.core.driver.ProgramAnalysis`.

    The engine returns this from :meth:`AnalysisEngine.analyze`: cache
    lookups, plan computation and cache-miss analyses have already happened
    eagerly, but per-context merging, program-level synthesis and — crucially
    — the per-uid remap of reparse hits are all deferred until the first
    attribute access (rendering a report, instrumenting, reading
    diagnostics).  A caller that never touches the result (an incremental
    probe, a benchmark round, a session update whose findings are diffed by
    fingerprint) pays nothing beyond the cache lookups.

    The proxy forwards every attribute, so it is a drop-in stand-in for
    ``ProgramAnalysis`` everywhere short of ``isinstance`` checks.
    """

    __slots__ = ("_thunk", "_analysis", "merge_one")

    def __init__(self, thunk, merge_one=None) -> None:
        self._thunk = thunk
        self._analysis = None
        #: Per-function merge hook: ``merge_one(func) -> (artifacts,
        #: context_words, word_infos)`` — lets the session layer assemble a
        #: single function's merged artifacts (materializing only *its*
        #: pending remaps) without forcing the whole program analysis.
        self.merge_one = merge_one

    @property
    def materialized(self) -> bool:
        """True once the underlying analysis has been forced."""
        return self._analysis is not None

    def force(self) -> ProgramAnalysis:
        """Materialize (idempotent) and return the underlying analysis."""
        analysis = self._analysis
        if analysis is None:
            analysis = self._analysis = self._thunk()
            self._thunk = None
        return analysis

    def __getattr__(self, name: str):
        return getattr(self.force(), name)


@dataclass
class AnalyzeRecord:
    """What one :meth:`AnalysisEngine.analyze` call did, per function —
    consumed by the session layer to report which functions were actually
    re-analyzed vs served from the content-addressed store."""

    #: (function name, context word) pairs analyzed from scratch.
    missed: List[Tuple[str, Word]] = field(default_factory=list)
    #: Function names served as deferred (lazy) reparse hits.
    lazy: List[str] = field(default_factory=list)
    #: Function names served by object identity (same AST, warm path).
    identity: List[str] = field(default_factory=list)

    @property
    def missed_functions(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for name, _word in self.missed:
            if name not in seen:
                seen.append(name)
        return tuple(seen)


def _analyze_function_task(payload) -> FunctionArtifacts:
    """Process-pool entry point (top-level so it pickles)."""
    (func, func_names, collective_funcs, word, precision, call_stmts,
     extra_points) = payload
    return _analyze_function(func, func_names, collective_funcs, word,
                             precision, call_stmts, None, extra_points)


class AnalysisEngine:
    """Stateful batch front end over :func:`repro.core.driver.analyze_program`.

    Parameters
    ----------
    jobs:
        Worker processes for cache-miss fan-out.  ``1`` (default) analyzes
        in-process; ``N > 1`` spins up a process pool per :meth:`analyze`
        call when at least two functions missed the cache.  Results are
        deterministic regardless of ``jobs``.
    cache:
        Disable to make the engine a plain driver (no fingerprinting cost);
        :func:`analyze_program` uses exactly that configuration.
    task_timeout:
        Per-task wall-clock deadline (seconds) for pooled analyses.  A task
        that does not finish in time counts as a pool failure: the pool is
        torn down (a hung worker cannot be reasoned with) and the engine
        retries / degrades per the respawn policy.  ``None`` (default)
        keeps the old unbounded behaviour.
    """

    #: Respawn budget after pool failures: attempts = 1 initial try + 2
    #: respawns, with deterministic exponential backoff between them.
    POOL_RETRY = RetryPolicy(attempts=3, base_delay=0.05, max_delay=1.0)

    def __init__(self, jobs: int = 1, cache: bool = True,
                 task_timeout: Optional[float] = None,
                 store=None) -> None:
        self.jobs = max(1, int(jobs))
        self.cache_enabled = bool(cache)
        self.task_timeout = task_timeout
        #: Optional shared on-disk artifact store (duck-typed:
        #: ``load(key) -> (FunctionArtifacts, uid_at_pos) | None`` and
        #: ``save(key, artifacts, uid_at_pos)``, see
        #: :class:`repro.project.store.ShardedStore`).  In-memory misses
        #: probe it; fresh analyses write through.
        self.store = store
        #: Injectable backoff sleep (tests replace it to run instantly).
        self._sleep = time.sleep
        self.stats = EngineStats()
        #: Per-function record of the most recent :meth:`analyze` call.
        self.last = AnalyzeRecord()
        self._cache: Dict[_Key, _CacheEntry] = {}
        #: fingerprint -> set of cache keys with that fingerprint, so
        #: invalidation and line-patch re-keying are O(affected entries)
        #: instead of a scan of the whole cache per edited function.
        self._by_fp: Dict[str, set] = {}
        #: id(func) -> (func, structure_version, fingerprint): skips hashing
        #: when the very same AST object is re-analyzed (warm batch loops).
        self._identity: Dict[int, Tuple[A.FuncDef, int, str]] = {}
        #: id(program) -> memoized program-level facts.
        self._programs: Dict[int, _ProgramMemo] = {}
        #: id(func) -> per-function index entry (see sites.index_program):
        #: re-indexing a program that reuses FuncDef objects (the session
        #: layer's incremental re-parse) costs lookups, not tree walks.
        self._func_index: Dict[int, tuple] = {}
        #: Persistent worker pool, created lazily on the first jobs>1 fan-out
        #: and reused across analyze() calls (spawn cost amortized).
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- worker pool -----------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut the persistent worker pool down (no-op when none was ever
        created).  The engine stays usable — a later ``jobs>1`` analyze
        lazily spawns a fresh pool."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "AnalysisEngine":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False

    # -- cache management ------------------------------------------------------

    def clear_cache(self) -> None:
        self._cache.clear()
        self._by_fp.clear()
        self._identity.clear()
        self._programs.clear()
        self._func_index.clear()

    def _cache_put(self, key: _Key, entry: _CacheEntry) -> None:
        self._cache[key] = entry
        self._by_fp.setdefault(key[0], set()).add(key)

    def _cache_del(self, key: _Key) -> None:
        del self._cache[key]
        keys = self._by_fp.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_fp[key[0]]

    def invalidate_fingerprints(self, fingerprints) -> int:
        """Drop every cache entry whose function fingerprint is in
        ``fingerprints`` (all context words / precisions of it).

        The session layer calls this for edited, renamed or deleted
        functions and counts the drops as dependency invalidations; entries
        of *unchanged* functions stay — content addressing guarantees they
        can only be hit by structurally identical re-parses."""
        doomed = frozenset(fingerprints)
        if not doomed:
            return 0
        fault_site("store.evict")
        victims = [k for fp in doomed for k in self._by_fp.get(fp, ())]
        for key in victims:
            self._cache_del(key)
        self.stats.evictions += len(victims)
        return len(victims)

    def cache_info(self) -> Dict[str, float]:
        info = self.stats.as_dict()
        info["entries"] = len(self._cache)
        return info

    def _load_from_store(self, key: _Key) -> Optional[_CacheEntry]:
        """Probe the shared on-disk store for ``key``; a hit is promoted
        into the in-memory cache (anchored on the unpickled tree)."""
        try:
            payload = self.store.load(key)
        except Exception:
            payload = None  # a corrupt/racing shard read is just a miss
        if payload is None:
            self.stats.store_misses += 1
            return None
        art, uid_at_pos = payload
        self.stats.store_hits += 1
        entry = _CacheEntry(artifacts=art, version=_version(art.func),
                            key=key, uid_at_pos=tuple(uid_at_pos))
        self._cache_put(key, entry)
        return entry

    # -- line-offset patching --------------------------------------------------

    def patch_function_lines(self, func: A.FuncDef, delta: int) -> int:
        """Shift ``func`` (in place) and every cached artifact of it by
        ``delta`` source lines, re-keying the content-addressed store to the
        shifted fingerprint.  Returns the number of re-keyed cache entries.

        This is the line-offset patch pass: an edit that only moves a
        function down/up (a line inserted or deleted *above* it) changes
        nothing but line numbers, yet fingerprints are line-sensitive — so
        without this pass the function would re-analyze from scratch.
        Instead the AST is shifted in place (uids and ``structure_version``
        untouched, so every uid-keyed map and program memo stays valid) and
        all line-addressed artifact state — collective sites, CFG block
        lines, diagnostic source refs and conditional lines — is shifted in
        lock-step.  The on-disk store is *not* patched: its entries stay
        content-addressed to the lines they were analyzed at."""
        if delta == 0:
            return 0
        old_fp = self._fingerprint_for(func)
        A.shift_lines(func, delta)
        new_fp = ast_fingerprint(func)
        self._identity[id(func)] = (func, _version(func), new_fp)
        patched_trees = {id(func)}
        patched_arts: set = set()
        moved = 0
        for key in list(self._by_fp.get(old_fp, ())):
            entry = self._cache[key]
            self._cache_del(key)
            art = entry.artifacts
            if id(art) not in patched_arts:
                patched_arts.add(id(art))
                if id(art.func) not in patched_trees:
                    # Cached tree from an earlier parse: shift it too, so
                    # the entry's fingerprint keeps describing its tree.
                    patched_trees.add(id(art.func))
                    A.shift_lines(art.func, delta)
                    self._identity.pop(id(art.func), None)
                _shift_artifact_lines(art, delta)
            new_key: _Key = (new_fp,) + key[1:]
            entry.key = new_key
            self._cache_put(new_key, entry)
            moved += 1
        self.stats.line_patches += 1
        return moved

    # -- analysis --------------------------------------------------------------

    def _fingerprint_for(self, func: A.FuncDef) -> str:
        version = _version(func)
        ident = self._identity.get(id(func))
        if ident is not None:
            known_func, known_version, fp = ident
            if known_func is func and known_version == version:
                return fp
        fp = ast_fingerprint(func)
        self._identity[id(func)] = (func, version, fp)
        _evict_oldest(self._identity, _IDENTITY_MEMO_LIMIT)
        return fp

    def _program_facts(self, program: A.Program) -> _ProgramMemo:
        funcs = tuple(program.funcs)
        versions = tuple(_version(f) for f in funcs)
        memo = self._programs.get(id(program))
        if (memo is not None and memo.program is program
                and len(memo.funcs) == len(funcs)
                and all(a is b for a, b in zip(memo.funcs, funcs))
                and memo.versions == versions):
            return memo
        index = index_program(program, memo=self._func_index)
        _evict_oldest(self._func_index, _IDENTITY_MEMO_LIMIT)
        memo = _ProgramMemo(
            program=program, funcs=funcs, versions=versions, index=index,
            collective_funcs=collective_call_graph(program, index),
            func_names={f.name for f in funcs},
            requested=_find_requested_level(index),
        )
        self._programs[id(program)] = memo
        _evict_oldest(self._programs, _PROGRAM_MEMO_LIMIT)
        return memo

    def update_program_facts(self, prev_program: A.Program,
                             program: A.Program, changed, removed,
                             collective_funcs=None,
                             index=None,
                             changed_positions=None) -> _ProgramMemo:
        """Derive ``program``'s facts memo from ``prev_program``'s by delta:
        only functions named in ``changed`` have new bodies, ``removed``
        names are gone, everything else reuses the previous program's
        :class:`~repro.minilang.ast_nodes.FuncDef` objects (so their index
        entries hit the per-function memo instead of re-walking trees).

        ``collective_funcs`` short-circuits the collective reachability
        fixpoint — the session layer maintains the set incrementally from
        its summaries — and ``index`` short-circuits re-indexing when the
        caller already holds the new program's index.
        ``changed_positions`` (``[(pos, func), ...]``) names the exact
        positions in ``program.funcs`` holding new objects, turning the
        version splice into O(changed) list patching instead of an
        O(program) zip.  The requested thread
        level is only re-derived when a touched function mentions
        ``MPI_Init``/``MPI_Init_thread`` before or after the edit.  Falls
        back to :meth:`_program_facts` when there is no valid memo for
        ``prev_program``."""
        memo = self._programs.get(id(prev_program))
        if memo is None or memo.program is not prev_program:
            facts = self._program_facts(program)
            if collective_funcs is not None:
                facts.collective_funcs = collective_funcs
            return facts
        if index is None:
            index = index_program(program, memo=self._func_index)
            _evict_oldest(self._func_index, _IDENTITY_MEMO_LIMIT)
        funcs = tuple(program.funcs)

        def mentions_init(calls) -> bool:
            return any(c.name in ("MPI_Init", "MPI_Init_thread")
                       for c in calls or ())

        requested = memo.requested
        for name in set(changed) | set(removed):
            if (mentions_init(memo.index.calls.get(name))
                    or mentions_init(index.calls.get(name))):
                requested = _find_requested_level(index)
                break
        if collective_funcs is None:
            collective_funcs = collective_call_graph(program, index)
        if (not removed and len(funcs) == len(memo.funcs)
                and all(n in memo.func_names for n in changed)):
            # Same name set, positionally aligned: splice versions (only
            # changed positions hold new objects) and share the name set.
            if changed_positions is not None:
                spliced = list(memo.versions)
                for pos, func in changed_positions:
                    spliced[pos] = _version(func)
                versions = tuple(spliced)
            else:
                versions = tuple(v if a is b else _version(b)
                                 for a, b, v in zip(memo.funcs, funcs,
                                                    memo.versions))
            func_names = memo.func_names
        else:
            versions = tuple(_version(f) for f in funcs)
            func_names = {f.name for f in funcs}
        fresh = _ProgramMemo(
            program=program, funcs=funcs,
            versions=versions, index=index,
            collective_funcs=collective_funcs,
            func_names=func_names,
            requested=requested,
        )
        self._programs[id(program)] = fresh
        _evict_oldest(self._programs, _PROGRAM_MEMO_LIMIT)
        return fresh

    def _plan_for(self, memo: _ProgramMemo, program: A.Program,
                  initial_words: Dict[str, Word],
                  entry_context: Word) -> InterproceduralPlan:
        """Interprocedural plan, memoized on the program facts memo (so the
        warm identity fast path skips call-graph + propagation work)."""
        key = (entry_context, tuple(sorted(initial_words.items())))
        plan = memo.plans.get(key)
        if plan is None:
            plan = build_plan(program, memo.index, initial_words, entry_context)
            memo.plans[key] = plan
        return plan

    def analyze(
        self,
        program: A.Program,
        initial_words: Optional[Dict[str, Word]] = None,
        precision: str = "paper",
        instrument_all: bool = False,
        cfgs: Optional[Dict[str, tuple]] = None,
        interprocedural: bool = True,
        entry_context: Word = EMPTY,
        plan: Optional[InterproceduralPlan] = None,
        deadline: Optional[Deadline] = None,
        facts: Optional[_ProgramMemo] = None,
        scope: Optional[set] = None,
        scope_funcs: Optional[List[A.FuncDef]] = None,
    ) -> ProgramAnalysis:
        """Drop-in replacement for :func:`analyze_program` with memoization
        and optional parallel fan-out.  Same signature, same rendered
        output.  ``plan`` short-circuits the interprocedural plan
        computation — the session layer passes the incrementally updated
        plan it already built for its dependency diff.  ``deadline`` is
        checked cooperatively before each cache-miss analysis (cached work
        always completes); expiry raises
        :class:`~repro.util.resilience.DeadlineExceeded` and leaves the
        cache consistent — everything analyzed so far stays stored.

        The result is a :class:`LazyProgramAnalysis`: cache lookups and
        cache-miss analyses happen now (so the store is filled, the stats
        are final for hit/miss accounting, and analysis errors surface
        here), but the per-uid remap of reparse hits plus the per-context
        merge and program-level synthesis are deferred until the result is
        first inspected.  A reparse hit whose result is never rendered does
        zero per-uid remap work.

        ``facts`` injects a program-facts memo the caller maintained by
        delta (:meth:`update_program_facts`), skipping the validity check.
        ``scope`` restricts the per-function loop — cache probing, miss
        analysis, stats — to the named functions; a scoped result cannot be
        forced into a whole-program analysis (``force`` raises
        ``RuntimeError``), only its ``merge_one`` hook may be used.
        ``scope_funcs`` optionally supplies the scope's function objects
        directly, skipping the O(program) filter over ``program.funcs``."""
        initial_words = initial_words or {}
        self.stats.programs += 1
        self.last = record = AnalyzeRecord()
        memo = facts if facts is not None else self._program_facts(program)
        index, collective_funcs = memo.index, memo.collective_funcs
        func_names = memo.func_names
        if not interprocedural:
            plan = None
        elif plan is None:
            plan = self._plan_for(memo, program, initial_words, entry_context)

        #: (function name, context word) -> artifacts or a deferred remap.
        artifacts: Dict[Tuple[str, Word], object] = {}
        #: (func, key, word, call_stmts, prebuilt, extra) per cache miss.
        pending: List[tuple] = []
        func_words: Dict[str, Tuple[Word, ...]] = {}
        if scope is None:
            scoped_funcs = program.funcs
        elif scope_funcs is not None:
            scoped_funcs = scope_funcs
        else:
            scoped_funcs = [f for f in program.funcs if f.name in scope]
        for func in scoped_funcs:
            self.stats.functions += 1
            call_stmts = index.call_stmts.get(func.name)
            prebuilt = cfgs.get(func.name) if cfgs is not None else None
            if plan is not None:
                words = plan.contexts.contexts[func.name]
                extra = plan.extra_points.get(func.name)
                token = plan.extra_tokens.get(func.name, ())
            else:
                words = (initial_words.get(func.name, EMPTY),)
                extra = None
                token = ()
            func_words[func.name] = words
            for word in words:
                if not self.cache_enabled or prebuilt is not None:
                    # A caller-supplied CFG is not part of the fingerprint,
                    # so artifacts built on it must neither be cached nor
                    # satisfied from cache — analyze this function as-is.
                    pending.append((func, None, word, call_stmts, prebuilt,
                                    extra))
                    continue
                called_names = {c.name for c in index.calls.get(func.name, ())}
                key: _Key = (
                    self._fingerprint_for(func), word, precision,
                    tuple(sorted(called_names & func_names)),
                    tuple(sorted(called_names & collective_funcs)),
                    token,
                )
                entry = self._cache.get(key)
                if entry is not None and _version(entry.artifacts.func) == entry.version:
                    self.stats.hits += 1
                    if entry.artifacts.func is func:
                        record.identity.append(func.name)
                        artifacts[(func.name, word)] = entry.artifacts
                    else:
                        # Reparse hit: defer the per-uid remap — the store
                        # is position-keyed, so nothing needs the new uids
                        # until the result is rendered.
                        self.stats.lazy_hits += 1
                        record.lazy.append(func.name)
                        artifacts[(func.name, word)] = _PendingRemap(
                            entry=entry, func=func, word=word,
                            call_stmts=call_stmts, extra=extra)
                    continue
                if entry is not None:
                    # Stale: the cached AST was mutated after analysis.
                    self._cache_del(key)
                if self.store is not None:
                    entry = self._load_from_store(key)
                    if entry is not None:
                        # A disk hit is a reparse hit anchored on the
                        # unpickled tree: same lazy-remap path as a warm
                        # in-memory reparse.
                        self.stats.hits += 1
                        self.stats.lazy_hits += 1
                        record.lazy.append(func.name)
                        artifacts[(func.name, word)] = _PendingRemap(
                            entry=entry, func=func, word=word,
                            call_stmts=call_stmts, extra=extra)
                        continue
                self.stats.misses += 1
                record.missed.append((func.name, word))
                pending.append((func, key, word, call_stmts, prebuilt, extra))

        self._run_pending(pending, func_names, collective_funcs,
                          precision, artifacts, deadline=deadline)

        def merge_one(func: A.FuncDef):
            words = func_words[func.name]
            if plan is not None:
                chains = {w: plan.contexts.chains.get((func.name, w), ())
                          for w in words}
            else:
                chains = {}
            parts = []
            for w in words:
                art = artifacts[(func.name, w)]
                if isinstance(art, _PendingRemap):
                    art = self._materialize(art, func_names,
                                            collective_funcs, precision)
                    artifacts[(func.name, w)] = art
                parts.append((w, art))
            return _merge_artifacts(parts, chains)

        def materialize() -> ProgramAnalysis:
            if scope is not None:
                raise RuntimeError(
                    "a scope-restricted analyze() result cannot be forced "
                    "into a whole-program analysis; use merge_one")
            merged: Dict[str, FunctionArtifacts] = {}
            context_info: Dict[str, Tuple[Tuple[Word, ...],
                                          Tuple[WordInfo, ...]]] = {}
            for func in program.funcs:
                merged[func.name], ctx_words, infos = merge_one(func)
                context_info[func.name] = (ctx_words, infos)
            return _assemble(program, index, collective_funcs, merged,
                             precision, instrument_all, memo.requested,
                             plan=plan, context_info=context_info)

        return LazyProgramAnalysis(materialize, merge_one=merge_one)

    def _materialize(self, pending: _PendingRemap, func_names, collective_funcs,
                     precision: str) -> FunctionArtifacts:
        """Turn a deferred reparse hit into concrete artifacts: remap the
        cached per-uid maps onto the new AST (one walk of the new tree), or
        — if the cached source mutated since the lookup — re-analyze.  The
        fallback also repairs the store: the stale entry is evicted and the
        fresh artifacts take its place (anchored on the new AST, whose
        fingerprint is what the key matched)."""
        entry = pending.entry
        if _version(entry.artifacts.func) == entry.version:
            remapped = _remap_artifacts(entry, pending.func)
            if remapped is not None:
                self.stats.remaps += 1
                return remapped
        self.stats.remap_fallbacks += 1
        art = _analyze_function(pending.func, func_names, collective_funcs,
                                pending.word, precision, pending.call_stmts,
                                None, pending.extra)
        if self.cache_enabled and self._cache.get(entry.key) is entry:
            self._cache_put(entry.key, _CacheEntry(
                artifacts=art, version=_version(art.func), key=entry.key,
                uid_at_pos=tuple(n.uid for n in art.func.walk())))
        return art

    def _pool_map(self, payloads,
                  deadline: Optional[Deadline]) -> Optional[List[FunctionArtifacts]]:
        """Fan ``payloads`` out to the worker pool with bounded
        respawn-on-failure.

        Pool *infrastructure* failures (BrokenProcessPool, no fork/spawn,
        unpicklable payload, a task blowing its ``task_timeout``) are
        counted, the pool is torn down, and — per :data:`POOL_RETRY` — a
        fresh pool is spawned after a deterministic backoff.  When the
        respawn budget is exhausted, returns ``None`` and the caller
        degrades to the serial path (``stats.degraded_serial``).  Genuine
        analysis errors raised *by* a worker's task are NOT caught — they
        propagate exactly as in a serial run."""
        policy = self.POOL_RETRY
        for attempt in range(1, policy.attempts + 1):
            try:
                fault_site("engine.pool.submit")
                pool = self._ensure_pool()
                if self.task_timeout is None:
                    return list(pool.map(_analyze_function_task, payloads))
                futures = [pool.submit(_analyze_function_task, p)
                           for p in payloads]
                return [f.result(timeout=self.task_timeout) for f in futures]
            except (BrokenProcessPool, OSError, pickle.PicklingError,
                    FutureTimeoutError):
                self.stats.pool_failures += 1
                if self._pool is not None:
                    self._pool.shutdown(wait=False, cancel_futures=True)
                    self._pool = None
                if attempt < policy.attempts:
                    self.stats.pool_respawns += 1
                    self._sleep(policy.delay(attempt))
        self.stats.degraded_serial += 1
        return None

    def _run_pending(self, pending, func_names, collective_funcs,
                     precision, artifacts,
                     deadline: Optional[Deadline] = None) -> None:
        """Analyze the cache misses — in the persistent process pool when
        profitable."""
        pooled = [p for p in pending if p[4] is None]
        use_pool = self.jobs > 1 and len(pooled) > 1
        results: Dict[Tuple[int, Word], FunctionArtifacts] = {}
        if use_pool:
            if deadline is not None:
                deadline.check("engine.pool.submit")
            payloads = [
                (func, func_names, collective_funcs, word, precision,
                 call_stmts, extra)
                for func, _key, word, call_stmts, _pre, extra in pooled
            ]
            arts = self._pool_map(payloads, deadline)
            if arts is not None:
                for (func, _key, word, *_rest), art in zip(pooled, arts):
                    results[(id(func), word)] = art
                self.stats.parallel_tasks += len(results)

        uid_seqs: Dict[int, Tuple[int, ...]] = {}
        for func, key, word, call_stmts, prebuilt, extra in pending:
            art = results.get((id(func), word))
            if art is None:
                if deadline is not None:
                    deadline.check("engine.task")
                fault_site("engine.task")
                art = _analyze_function(func, func_names, collective_funcs,
                                        word, precision, call_stmts, prebuilt,
                                        extra)
            else:
                # Workers return a pickled copy of the AST; re-anchor the
                # artifacts on the caller's objects (uids are preserved by
                # pickling, so every uid-keyed map stays valid).
                art.func = func
            artifacts[(func.name, word)] = art
            if self.cache_enabled and key is not None:
                seq = uid_seqs.get(id(art.func))
                if seq is None:
                    seq = tuple(n.uid for n in art.func.walk())
                    uid_seqs[id(art.func)] = seq
                self._cache_put(key, _CacheEntry(
                    artifacts=art, version=_version(art.func), key=key,
                    uid_at_pos=seq))
                if self.store is not None:
                    try:
                        self.store.save(key, art, seq)
                        self.stats.store_writes += 1
                    except Exception:
                        pass  # a full/readonly shard must not fail analysis
