"""Memoized + parallel batch analysis engine.

Batch workloads (the errors gallery, the EPCC suite, `parcoach batch`, the
compile pipeline run once per mode) re-analyze structurally identical
functions over and over.  :class:`AnalysisEngine` removes that redundancy:

* **Memoization** — per-function artifacts are cached under a *structural
  fingerprint* of the function AST (type/field/position-sensitive, uid-
  insensitive), plus everything else the per-function pipeline depends on:
  the initial parallelism word, the phase-3 precision, and the function's
  calls that resolve to user / collective functions.  A re-parse of the same
  source hits the cache; the uid-keyed artifacts are *remapped* onto the new
  AST by walking both trees in lock-step (identical fingerprint ⇒ identical
  shape ⇒ the pre-order walks pair up 1:1).

* **Parallel fan-out** — the per-function phases are independent, so cache
  misses can be analyzed in a process pool (``jobs > 1``).  Results are
  merged back in program order, which keeps diagnostics, check-group
  numbering, and the instrumentation plan byte-identical to a serial run.

Caveats (by design):

* Analyzed ASTs are treated as immutable.  The one sanctioned in-place
  mutator, ``instrument_program(..., in_place=True)``, bumps a
  ``structure_version`` marker on every function it rewrites; the engine
  checks the marker in O(1) and re-analyzes instead of serving stale
  artifacts.  Other out-of-band AST mutation is undefined behaviour.
* Cached diagnostics are shared objects.  Their rendered text embeds the
  parallelism-word region ids of the *first* analyzed instance; a remapped
  hit reuses that text (semantically identical — region ids are arbitrary
  internal labels).
"""

from __future__ import annotations

import hashlib
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..minilang import ast_nodes as A
from ..parallelism import EMPTY, Word, WordInfo
from ..parallelism.word import P, S
from .concurrency import ConcurrencyResult
from .driver import (
    FunctionArtifacts,
    InterproceduralPlan,
    ProgramAnalysis,
    _analyze_function,
    _assemble,
    _find_requested_level,
    _merge_artifacts,
    build_plan,
)
from .monothread import MonothreadResult
from .sites import (
    CollectiveSite,
    ProgramIndex,
    collective_call_graph,
    index_program,
)


def ast_fingerprint(func: A.FuncDef) -> str:
    """Structural hash of a function AST.

    Dataclass ``repr`` recursively serializes every node with its fields and
    ``line``/``col`` but *excludes* ``uid`` (declared ``repr=False``), so two
    byte-equal re-parses of the same source share a fingerprint while any
    structural or positional difference changes it."""
    return hashlib.sha256(repr(func).encode("utf-8")).hexdigest()


#: Cache key: fingerprint + everything else `_analyze_function` reads —
#: the context word, the precision, the resolved call sets, and the
#: structural token of the interprocedural expression-call points.
_Key = Tuple[str, Word, str, Tuple[str, ...], Tuple[str, ...],
             Tuple[Tuple[int, str], ...]]


@dataclass
class EngineStats:
    """Counters exposed by :meth:`AnalysisEngine.cache_info`."""

    programs: int = 0
    functions: int = 0
    hits: int = 0
    misses: int = 0
    #: Hits served by remapping artifacts onto a re-parsed (different) AST.
    remaps: int = 0
    #: Functions analyzed in worker processes.
    parallel_tasks: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "programs": self.programs,
            "functions": self.functions,
            "hits": self.hits,
            "misses": self.misses,
            "remaps": self.remaps,
            "parallel_tasks": self.parallel_tasks,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _CacheEntry:
    artifacts: FunctionArtifacts
    #: `structure_version` of `artifacts.func` at analysis time.  In-place
    #: instrumentation bumps the version, so a mutated cache source is
    #: detected in O(1) instead of being served as stale artifacts.
    version: int
    key: _Key


@dataclass
class _ProgramMemo:
    """Cached program-level facts (index, call graph, requested level) for
    the identity fast path — valid while the program's function list and the
    structure versions of all its functions are unchanged."""

    program: A.Program
    funcs: Tuple[A.FuncDef, ...]
    versions: Tuple[int, ...]
    index: ProgramIndex
    collective_funcs: set
    func_names: set
    requested: object
    #: (entry_context, sorted initial_words items) -> interprocedural plan.
    plans: Dict[tuple, InterproceduralPlan] = field(default_factory=dict)


def _version(func: A.FuncDef) -> int:
    return getattr(func, "structure_version", 0)


#: Bounds for the id-keyed identity/program memos.  They only pay off when
#: the *same object* is re-analyzed, so entries from one-shot parses (e.g.
#: `parcoach batch`, which re-parses per file) are dead weight — evict
#: oldest-first instead of pinning every AST ever seen for the engine's
#: lifetime.
_IDENTITY_MEMO_LIMIT = 4096
_PROGRAM_MEMO_LIMIT = 64


def _evict_oldest(memo: Dict, limit: int) -> None:
    while len(memo) > limit:
        memo.pop(next(iter(memo)))


def _remap_word(word: Word, uid_map: Dict[int, int]) -> Word:
    """Rewrite the region ids inside a parallelism word onto new AST uids."""
    out = []
    for token in word:
        if isinstance(token, P):
            out.append(P(uid_map.get(token.region_id, token.region_id)))
        elif isinstance(token, S):
            out.append(S(uid_map.get(token.region_id, token.region_id), token.kind))
        else:
            out.append(token)
    return tuple(out)


def _remap_artifacts(entry: _CacheEntry,
                     new_func: A.FuncDef) -> Optional[FunctionArtifacts]:
    """Transplant cached artifacts onto a structurally identical AST.

    Equal fingerprints guarantee equal tree shape, so the pre-order walks of
    the cached and the new function pair up node-for-node; every uid-keyed
    map is rewritten through that pairing.  The CFG (keyed by block ids, not
    uids) and the phase-3 result ride along unchanged — including the
    dominator trees already cached on the CFG.  Returns ``None`` when the
    shapes do not match after all (mutated cache source): caller re-analyzes.
    """
    old = entry.artifacts
    old_nodes = list(old.func.walk())
    new_nodes = list(new_func.walk())
    if len(old_nodes) != len(new_nodes):
        return None
    node_map: Dict[int, A.Node] = {}
    uid_map: Dict[int, int] = {}
    for o, n in zip(old_nodes, new_nodes):
        if type(o) is not type(n):
            return None
        node_map[o.uid] = n
        uid_map[o.uid] = n.uid

    sites: List[CollectiveSite] = []
    for s in old.sites:
        stmt = node_map[s.stmt.uid]
        assert isinstance(stmt, A.ExprStmt)
        sites.append(CollectiveSite(stmt=stmt, call=stmt.expr,  # type: ignore[arg-type]
                                    kind=s.kind, name=s.name, line=s.line))
    site_by_old_uid = {o.uid: new for o, new in zip(old.sites, sites)}

    mono = MonothreadResult(
        multithreaded_sites=[site_by_old_uid[s.uid]
                             for s in old.monothread.multithreaded_sites],
        sipw_uids={uid_map[u] for u in old.monothread.sipw_uids},
        required_levels={uid_map[k]: v
                         for k, v in old.monothread.required_levels.items()},
        diagnostics=old.monothread.diagnostics,
    )
    conc = ConcurrencyResult(
        concurrent_pairs=[(uid_map[a], uid_map[b])
                          for a, b in old.concurrency.concurrent_pairs],
        scc_uids={uid_map[u] for u in old.concurrency.scc_uids},
        groups={uid_map[k]: uid_map[v]
                for k, v in old.concurrency.groups.items()},
        diagnostics=old.concurrency.diagnostics,
    )
    wi = old.word_info
    word_info = WordInfo(
        words={uid_map[k]: _remap_word(w, uid_map) for k, w in wi.words.items()},
        enclosing={uid_map[k]: tuple(uid_map[e] for e in v)
                   for k, v in wi.enclosing.items()},
        construct_kinds={uid_map[k]: v for k, v in wi.construct_kinds.items()},
        construct_nodes={uid_map[k]: node_map[k] for k in wi.construct_nodes},
    )
    return FunctionArtifacts(
        func=new_func, cfg=old.cfg,
        ast_block={uid_map[k]: v for k, v in old.ast_block.items()},
        word_info=word_info, sites=sites, monothread=mono, concurrency=conc,
        sequence=old.sequence, flagged=old.flagged,
    )


def _analyze_function_task(payload) -> FunctionArtifacts:
    """Process-pool entry point (top-level so it pickles)."""
    (func, func_names, collective_funcs, word, precision, call_stmts,
     extra_points) = payload
    return _analyze_function(func, func_names, collective_funcs, word,
                             precision, call_stmts, None, extra_points)


class AnalysisEngine:
    """Stateful batch front end over :func:`repro.core.driver.analyze_program`.

    Parameters
    ----------
    jobs:
        Worker processes for cache-miss fan-out.  ``1`` (default) analyzes
        in-process; ``N > 1`` spins up a process pool per :meth:`analyze`
        call when at least two functions missed the cache.  Results are
        deterministic regardless of ``jobs``.
    cache:
        Disable to make the engine a plain driver (no fingerprinting cost);
        :func:`analyze_program` uses exactly that configuration.
    """

    def __init__(self, jobs: int = 1, cache: bool = True) -> None:
        self.jobs = max(1, int(jobs))
        self.cache_enabled = bool(cache)
        self.stats = EngineStats()
        self._cache: Dict[_Key, _CacheEntry] = {}
        #: id(func) -> (func, structure_version, fingerprint): skips hashing
        #: when the very same AST object is re-analyzed (warm batch loops).
        self._identity: Dict[int, Tuple[A.FuncDef, int, str]] = {}
        #: id(program) -> memoized program-level facts.
        self._programs: Dict[int, _ProgramMemo] = {}
        #: Persistent worker pool, created lazily on the first jobs>1 fan-out
        #: and reused across analyze() calls (spawn cost amortized).
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- worker pool -----------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut the persistent worker pool down (no-op when none was ever
        created).  The engine stays usable — a later ``jobs>1`` analyze
        lazily spawns a fresh pool."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "AnalysisEngine":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False

    # -- cache management ------------------------------------------------------

    def clear_cache(self) -> None:
        self._cache.clear()
        self._identity.clear()
        self._programs.clear()

    def cache_info(self) -> Dict[str, float]:
        info = self.stats.as_dict()
        info["entries"] = len(self._cache)
        return info

    # -- analysis --------------------------------------------------------------

    def _fingerprint_for(self, func: A.FuncDef) -> str:
        version = _version(func)
        ident = self._identity.get(id(func))
        if ident is not None:
            known_func, known_version, fp = ident
            if known_func is func and known_version == version:
                return fp
        fp = ast_fingerprint(func)
        self._identity[id(func)] = (func, version, fp)
        _evict_oldest(self._identity, _IDENTITY_MEMO_LIMIT)
        return fp

    def _program_facts(self, program: A.Program) -> _ProgramMemo:
        funcs = tuple(program.funcs)
        versions = tuple(_version(f) for f in funcs)
        memo = self._programs.get(id(program))
        if (memo is not None and memo.program is program
                and len(memo.funcs) == len(funcs)
                and all(a is b for a, b in zip(memo.funcs, funcs))
                and memo.versions == versions):
            return memo
        index = index_program(program)
        memo = _ProgramMemo(
            program=program, funcs=funcs, versions=versions, index=index,
            collective_funcs=collective_call_graph(program, index),
            func_names={f.name for f in funcs},
            requested=_find_requested_level(index),
        )
        self._programs[id(program)] = memo
        _evict_oldest(self._programs, _PROGRAM_MEMO_LIMIT)
        return memo

    def _plan_for(self, memo: _ProgramMemo, program: A.Program,
                  initial_words: Dict[str, Word],
                  entry_context: Word) -> InterproceduralPlan:
        """Interprocedural plan, memoized on the program facts memo (so the
        warm identity fast path skips call-graph + propagation work)."""
        key = (entry_context, tuple(sorted(initial_words.items())))
        plan = memo.plans.get(key)
        if plan is None:
            plan = build_plan(program, memo.index, initial_words, entry_context)
            memo.plans[key] = plan
        return plan

    def analyze(
        self,
        program: A.Program,
        initial_words: Optional[Dict[str, Word]] = None,
        precision: str = "paper",
        instrument_all: bool = False,
        cfgs: Optional[Dict[str, tuple]] = None,
        interprocedural: bool = True,
        entry_context: Word = EMPTY,
    ) -> ProgramAnalysis:
        """Drop-in replacement for :func:`analyze_program` with memoization
        and optional parallel fan-out.  Same signature, same output."""
        initial_words = initial_words or {}
        self.stats.programs += 1
        memo = self._program_facts(program)
        index, collective_funcs = memo.index, memo.collective_funcs
        func_names = memo.func_names
        plan = (self._plan_for(memo, program, initial_words, entry_context)
                if interprocedural else None)

        #: (function name, context word) -> artifacts.
        artifacts: Dict[Tuple[str, Word], FunctionArtifacts] = {}
        #: (func, key, word, call_stmts, prebuilt, extra) per cache miss.
        pending: List[tuple] = []
        func_words: Dict[str, Tuple[Word, ...]] = {}
        for func in program.funcs:
            self.stats.functions += 1
            call_stmts = index.call_stmts.get(func.name)
            prebuilt = cfgs.get(func.name) if cfgs is not None else None
            if plan is not None:
                words = plan.contexts.contexts[func.name]
                extra = plan.extra_points.get(func.name)
                token = plan.extra_tokens.get(func.name, ())
            else:
                words = (initial_words.get(func.name, EMPTY),)
                extra = None
                token = ()
            func_words[func.name] = words
            for word in words:
                if not self.cache_enabled or prebuilt is not None:
                    # A caller-supplied CFG is not part of the fingerprint,
                    # so artifacts built on it must neither be cached nor
                    # satisfied from cache — analyze this function as-is.
                    pending.append((func, None, word, call_stmts, prebuilt,
                                    extra))
                    continue
                called_names = {c.name for c in index.calls.get(func.name, ())}
                key: _Key = (
                    self._fingerprint_for(func), word, precision,
                    tuple(sorted(called_names & func_names)),
                    tuple(sorted(called_names & collective_funcs)),
                    token,
                )
                entry = self._cache.get(key)
                if entry is not None and _version(entry.artifacts.func) == entry.version:
                    if entry.artifacts.func is func:
                        self.stats.hits += 1
                        artifacts[(func.name, word)] = entry.artifacts
                        continue
                    remapped = _remap_artifacts(entry, func)
                    if remapped is not None:
                        self.stats.hits += 1
                        self.stats.remaps += 1
                        artifacts[(func.name, word)] = remapped
                        continue
                if entry is not None:
                    # Stale: the cached AST was mutated after analysis.
                    del self._cache[key]
                self.stats.misses += 1
                pending.append((func, key, word, call_stmts, prebuilt, extra))

        self._run_pending(pending, func_names, collective_funcs,
                          precision, artifacts)

        merged: Dict[str, FunctionArtifacts] = {}
        context_info: Dict[str, Tuple[Tuple[Word, ...], Tuple[WordInfo, ...]]] = {}
        for func in program.funcs:
            words = func_words[func.name]
            if plan is not None:
                chains = {w: plan.contexts.chains.get((func.name, w), ())
                          for w in words}
            else:
                chains = {}
            parts = [(w, artifacts[(func.name, w)]) for w in words]
            merged[func.name], ctx_words, infos = _merge_artifacts(parts, chains)
            context_info[func.name] = (ctx_words, infos)
        return _assemble(program, index, collective_funcs, merged,
                         precision, instrument_all, memo.requested,
                         plan=plan, context_info=context_info)

    def _run_pending(self, pending, func_names, collective_funcs,
                     precision, artifacts) -> None:
        """Analyze the cache misses — in the persistent process pool when
        profitable."""
        pooled = [p for p in pending if p[4] is None]
        use_pool = self.jobs > 1 and len(pooled) > 1
        results: Dict[Tuple[int, Word], FunctionArtifacts] = {}
        if use_pool:
            payloads = [
                (func, func_names, collective_funcs, word, precision,
                 call_stmts, extra)
                for func, _key, word, call_stmts, _pre, extra in pooled
            ]
            try:
                pool = self._ensure_pool()
                for (func, _key, word, *_rest), art in zip(
                        pooled, pool.map(_analyze_function_task, payloads)):
                    results[(id(func), word)] = art
            except (BrokenProcessPool, OSError, pickle.PicklingError):
                # Pool infrastructure failure (no fork/spawn, unpicklable
                # payload, worker killed): drop the broken pool and fall
                # back to the serial path below.  Genuine analysis errors
                # raised by a worker are NOT caught — they propagate exactly
                # as in a serial run.
                results.clear()
                if self._pool is not None:
                    self._pool.shutdown(wait=False, cancel_futures=True)
                    self._pool = None
            else:
                self.stats.parallel_tasks += len(results)

        for func, key, word, call_stmts, prebuilt, extra in pending:
            art = results.get((id(func), word))
            if art is None:
                art = _analyze_function(func, func_names, collective_funcs,
                                        word, precision, call_stmts, prebuilt,
                                        extra)
            else:
                # Workers return a pickled copy of the AST; re-anchor the
                # artifacts on the caller's objects (uids are preserved by
                # pickling, so every uid-keyed map stays valid).
                art.func = func
            artifacts[(func.name, word)] = art
            if self.cache_enabled and key is not None:
                self._cache[key] = _CacheEntry(
                    artifacts=art, version=_version(art.func), key=key)
