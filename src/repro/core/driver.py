"""Whole-program analysis driver.

Runs, per function: CFG construction, parallelism-word computation, phase 1
(monothread), phase 2 (concurrency), phase 3 (Algorithm 1 / PDF+); then the
program-level passes: collective call graph, MPI thread-level check against
``MPI_Init_thread``, check-group assignment, and the selective
instrumentation plan (which functions get CC/ENTER checks).

Selective instrumentation rule: a function is instrumented when any phase
flagged it, or when it may execute collectives and is transitively callable
from a flagged function (keeps the CC pairing aligned across processes
while leaving fully verified call trees untouched — the property Figure 1's
"verification code generation" overhead and the ablation bench measure).

The module is split so the batch engine (:mod:`repro.core.engine`) can reuse
the pieces: :func:`_analyze_function` is the pure per-function pipeline (no
shared state — safe to run in a process pool), ``_assemble`` is the
program-level synthesis, and :func:`analyze_program` wires both together for
the classic one-shot call.  For memoized / parallel batch analysis use
:class:`repro.core.engine.AnalysisEngine` (or ``parcoach analyze --jobs`` /
``parcoach batch`` from the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..cfg import CFG, build_cfg
from ..minilang import ast_nodes as A
from ..mpi.collectives import COLLECTIVES
from ..mpi.thread_levels import LEVEL_FROM_INT, ThreadLevel
from ..parallelism import EMPTY, Word, WordInfo, compute_words, is_monothreaded
from .concurrency import ConcurrencyResult, analyze_concurrency
from .diagnostics import Diagnostic, DiagnosticBag, ErrorCode, SourceRef
from .monothread import MonothreadResult, analyze_monothread
from .sequence import SequenceResult, analyze_sequence
from .sites import (
    CollectiveSite,
    ProgramIndex,
    collect_sites,
    collective_call_graph,
    index_program,
)


@dataclass
class FunctionAnalysis:
    """All per-function analysis artefacts."""

    func: A.FuncDef
    cfg: CFG
    ast_block: Dict[int, int]
    word_info: WordInfo
    sites: List[CollectiveSite]
    monothread: MonothreadResult
    concurrency: ConcurrencyResult
    sequence: SequenceResult
    #: True when any phase flagged this function.
    flagged: bool = False
    #: True when the instrumentation plan covers this function.
    instrumented: bool = False
    #: Site uid -> check-group ids whose ENTER/EXIT counters wrap the site.
    check_groups: Dict[int, List[int]] = field(default_factory=dict)
    #: Site uids that receive a CC call (all sites of instrumented functions).
    cc_sites: Set[int] = field(default_factory=set)
    #: Site uids whose context is multithreaded (ENTER aborts >1 threads).
    multithreaded_sites: Set[int] = field(default_factory=set)

    @property
    def n_collectives(self) -> int:
        return sum(1 for s in self.sites if s.kind == "collective")


@dataclass
class ProgramAnalysis:
    program: A.Program
    functions: Dict[str, FunctionAnalysis]
    diagnostics: DiagnosticBag
    collective_funcs: Set[str]
    requested_level: Optional[ThreadLevel]
    precision: str = "paper"
    #: Check-group id -> "multithread" | "concurrent" (selects the runtime
    #: error type raised when the group's counter overlaps).
    group_kinds: Dict[int, str] = field(default_factory=dict)

    @property
    def flagged_functions(self) -> List[str]:
        return [n for n, fa in self.functions.items() if fa.flagged]

    @property
    def instrumented_functions(self) -> List[str]:
        return [n for n, fa in self.functions.items() if fa.instrumented]

    @property
    def verified(self) -> bool:
        """True when no warnings were produced — the program is statically
        proven correct and needs zero runtime checks."""
        return len(self.diagnostics) == 0

    def function(self, name: str) -> FunctionAnalysis:
        return self.functions[name]


def _find_requested_level(index: ProgramIndex) -> Optional[ThreadLevel]:
    """Thread level requested via MPI_Init_thread(n) / MPI_Init()."""
    for calls in index.calls.values():
        for node in calls:
            if node.name == "MPI_Init_thread" and node.args:
                arg = node.args[0]
                if isinstance(arg, A.IntLit):
                    return LEVEL_FROM_INT.get(arg.value, ThreadLevel.MULTIPLE)
                return None  # dynamic level: cannot check statically
            if node.name == "MPI_Init":
                return ThreadLevel.SINGLE
    return None


def _call_edges(program: A.Program, index: ProgramIndex) -> Dict[str, Set[str]]:
    funcs = {f.name for f in program.funcs}
    return {
        name: {c.name for c in calls if c.name in funcs}
        for name, calls in index.calls.items()
    }


# ---------------------------------------------------------------------------
# Per-function pipeline (pure — no shared state, process-pool friendly)
# ---------------------------------------------------------------------------


@dataclass
class FunctionArtifacts:
    """Everything the per-function pipeline produces.

    This is the unit the :class:`repro.core.engine.AnalysisEngine` caches and
    ships across process boundaries; the driver re-wraps it into a fresh
    :class:`FunctionAnalysis` per program (the check-group / instrumentation
    fields are program-level state and must not be shared).
    """

    func: A.FuncDef
    cfg: CFG
    ast_block: Dict[int, int]
    word_info: WordInfo
    sites: List[CollectiveSite]
    monothread: MonothreadResult
    concurrency: ConcurrencyResult
    sequence: SequenceResult
    flagged: bool


def _analyze_function(
    func: A.FuncDef,
    func_names: Set[str],
    collective_funcs: Set[str],
    word: Word,
    precision: str,
    call_stmts: Optional[List[A.ExprStmt]] = None,
    prebuilt: Optional[Tuple[CFG, Dict[int, int]]] = None,
) -> FunctionArtifacts:
    """Run all per-function phases for one function."""
    if prebuilt is not None:
        cfg, ast_block = prebuilt
    else:
        cfg, ast_block = build_cfg(func, func_names)
    info = compute_words(func, word)
    sites = collect_sites(func, collective_funcs, call_stmts)
    mono = analyze_monothread(func, info, sites)
    conc = analyze_concurrency(func, info, sites)
    seq = analyze_sequence(func.name, cfg, collective_funcs, precision)
    flagged = bool(
        mono.multithreaded_sites or conc.concurrent_pairs or seq.conditionals
    )
    return FunctionArtifacts(
        func=func, cfg=cfg, ast_block=ast_block, word_info=info,
        sites=sites, monothread=mono, concurrency=conc, sequence=seq,
        flagged=flagged,
    )


def _assemble(
    program: A.Program,
    index: ProgramIndex,
    collective_funcs: Set[str],
    artifacts: Dict[str, FunctionArtifacts],
    precision: str,
    instrument_all: bool,
    requested: Optional[ThreadLevel],
) -> ProgramAnalysis:
    """Program-level synthesis: diagnostics bag, check groups, thread-level
    comparison, and the selective instrumentation plan.

    Deterministic: iterates ``program.funcs`` in source order, so group
    numbering and diagnostic order are identical however the per-function
    artifacts were produced (serial, cached, or parallel)."""
    diagnostics = DiagnosticBag()
    functions: Dict[str, FunctionAnalysis] = {}
    group_counter = 0
    group_kinds: Dict[int, str] = {}

    for func in program.funcs:
        art = artifacts[func.name]
        fa = FunctionAnalysis(
            func=func, cfg=art.cfg, ast_block=art.ast_block,
            word_info=art.word_info, sites=art.sites,
            monothread=art.monothread, concurrency=art.concurrency,
            sequence=art.sequence, flagged=art.flagged,
        )

        # Check-group assignment: one group per multithreaded site, one per
        # concurrency component.
        for site in art.monothread.multithreaded_sites:
            group_counter += 1
            group_kinds[group_counter] = "multithread"
            fa.check_groups.setdefault(site.uid, []).append(group_counter)
            fa.multithreaded_sites.add(site.uid)
        component_group: Dict[int, int] = {}
        for site_uid, root in art.concurrency.groups.items():
            if root not in component_group:
                group_counter += 1
                group_kinds[group_counter] = "concurrent"
                component_group[root] = group_counter
            fa.check_groups.setdefault(site_uid, []).append(component_group[root])

        diagnostics.extend(art.monothread.diagnostics)
        diagnostics.extend(art.concurrency.diagnostics)
        diagnostics.extend(art.sequence.diagnostics)
        functions[func.name] = fa

    # Thread-level comparison against the requested level.
    if requested is not None:
        for name, fa in functions.items():
            needed = fa.monothread.max_required_level
            if needed > requested:
                offenders = tuple(
                    SourceRef(site.name, site.line)
                    for site in fa.sites
                    if fa.monothread.required_levels.get(site.uid, ThreadLevel.SINGLE) > requested
                )
                diagnostics.add(Diagnostic(
                    code=ErrorCode.THREAD_LEVEL,
                    function=name,
                    message=(
                        f"collectives require {needed.mpi_name} but the program "
                        f"requests only {requested.mpi_name}"
                    ),
                    collectives=offenders,
                ))

    # Selective instrumentation plan.
    flagged = {n for n, fa in functions.items() if fa.flagged}
    if instrument_all:
        to_instrument = {n for n, fa in functions.items() if fa.sites}
    else:
        to_instrument = set(flagged)
        edges = _call_edges(program, index)
        # Transitive closure of calls from flagged functions.
        work = list(flagged)
        reachable: Set[str] = set()
        while work:
            f = work.pop()
            for callee in edges.get(f, ()):
                if callee not in reachable:
                    reachable.add(callee)
                    work.append(callee)
        to_instrument |= {f for f in reachable if f in collective_funcs}

    for name in to_instrument:
        fa = functions[name]
        if not fa.sites:
            continue
        fa.instrumented = True
        fa.cc_sites = {s.uid for s in fa.sites}

    return ProgramAnalysis(
        program=program, functions=functions, diagnostics=diagnostics,
        collective_funcs=collective_funcs, requested_level=requested,
        precision=precision, group_kinds=group_kinds,
    )


def analyze_program(
    program: A.Program,
    initial_words: Optional[Dict[str, Word]] = None,
    precision: str = "paper",
    instrument_all: bool = False,
    cfgs: Optional[Dict[str, tuple]] = None,
) -> ProgramAnalysis:
    """Run the full static analysis (one-shot, no caching).

    Parameters
    ----------
    initial_words:
        Per-function initial parallelism word (the paper's initial-level
        option).  Functions default to the empty (monothreaded) word.
    precision:
        Passed to phase 3 (``"paper"`` or ``"counting"``).
    instrument_all:
        Ablation switch: plan CC/ENTER checks for *every* collective of every
        function, regardless of the static verdict (blanket instrumentation
        baseline for the selective-instrumentation ablation).
    cfgs:
        Pre-built CFGs (``{name: (cfg, ast_block)}``) from the compiler's
        middle end; PARCOACH reuses them instead of rebuilding (the paper's
        pass works directly on GCC's CFG).
    """
    initial_words = initial_words or {}
    index = index_program(program)
    collective_funcs = collective_call_graph(program, index)
    func_names = {f.name for f in program.funcs}
    artifacts: Dict[str, FunctionArtifacts] = {}
    for func in program.funcs:
        prebuilt = cfgs.get(func.name) if cfgs is not None else None
        artifacts[func.name] = _analyze_function(
            func, func_names, collective_funcs,
            initial_words.get(func.name, EMPTY), precision,
            index.call_stmts.get(func.name), prebuilt,
        )
    return _assemble(program, index, collective_funcs, artifacts,
                     precision, instrument_all, _find_requested_level(index))
