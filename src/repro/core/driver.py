"""Whole-program analysis driver.

Runs, per function: CFG construction, parallelism-word computation, phase 1
(monothread), phase 2 (concurrency), phase 3 (Algorithm 1 / PDF+); then the
program-level passes: collective call graph, MPI thread-level check against
``MPI_Init_thread``, check-group assignment, and the selective
instrumentation plan (which functions get CC/ENTER checks).

Interprocedural context propagation (default on, see
:mod:`repro.core.callgraph`): instead of analyzing every function under the
empty (monothreaded) parallelism word, the driver first computes, per
function, the set of calling-context words reaching it over the call graph
(seeded at ``main``/entries with ``entry_context``), then analyzes the
function *once per distinct context word* and merges the per-context
artifacts.  Diagnostics produced under a non-empty context carry the witness
call chain (``main → worker → helper``).  Calls embedded in expressions —
which have no ``CALL`` block and are invisible to the intraprocedural
phases — become phase-3 sequence points when the callee's summary says it
executes collectives.  ``interprocedural=False`` restores the paper's pure
per-function behaviour.

Selective instrumentation rule: a function is instrumented when any phase
flagged it, or when it may execute collectives and is transitively callable
from a flagged function (keeps the CC pairing aligned across processes
while leaving fully verified call trees untouched — the property Figure 1's
"verification code generation" overhead and the ablation bench measure).

The module is split so the batch engine (:mod:`repro.core.engine`) can reuse
the pieces: :func:`_analyze_function` is the pure per-function pipeline (no
shared state — safe to run in a process pool), :func:`build_plan` computes
the interprocedural plan, :func:`_merge_artifacts` folds per-context
artifacts together, ``_assemble`` is the program-level synthesis, and
:func:`analyze_program` wires everything together for the classic one-shot
call.  For memoized / parallel batch analysis use
:class:`repro.core.engine.AnalysisEngine` (or ``parcoach analyze --jobs`` /
``parcoach batch`` from the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from ..cfg import CFG, build_cfg
from ..minilang import ast_nodes as A
from ..mpi.collectives import COLLECTIVES
from ..mpi.thread_levels import LEVEL_FROM_INT, ThreadLevel
from ..parallelism import EMPTY, Word, WordInfo, compute_words, is_monothreaded
from ..util.probe import probe, probes_active
from .callgraph import (
    CallGraph,
    ContextMap,
    FunctionSummary,
    build_call_graph,
    collective_summaries,
    propagate_contexts,
)
from .concurrency import ConcurrencyResult, analyze_concurrency
from .diagnostics import Diagnostic, DiagnosticBag, ErrorCode, SourceRef
from .monothread import MonothreadResult, analyze_monothread
from .sequence import SequenceResult, analyze_sequence
from .sites import (
    CollectiveSite,
    ProgramIndex,
    collect_sites,
    collective_call_graph,
    index_program,
)


@dataclass
class FunctionAnalysis:
    """All per-function analysis artefacts."""

    func: A.FuncDef
    cfg: CFG
    ast_block: Dict[int, int]
    word_info: WordInfo
    sites: List[CollectiveSite]
    monothread: MonothreadResult
    concurrency: ConcurrencyResult
    sequence: SequenceResult
    #: True when any phase flagged this function.
    flagged: bool = False
    #: True when the instrumentation plan covers this function.
    instrumented: bool = False
    #: Site uid -> check-group ids whose ENTER/EXIT counters wrap the site.
    check_groups: Dict[int, List[int]] = field(default_factory=dict)
    #: Site uids that receive a CC call (all sites of instrumented functions).
    cc_sites: Set[int] = field(default_factory=set)
    #: Site uids whose context is multithreaded (ENTER aborts >1 threads).
    multithreaded_sites: Set[int] = field(default_factory=set)
    #: Calling-context words this function was analyzed under (one entry —
    #: the empty word — in intraprocedural mode).
    context_words: Tuple[Word, ...] = (EMPTY,)
    #: Per-context word maps, aligned with ``context_words`` (``word_info``
    #: is the first one).
    word_infos: Tuple[WordInfo, ...] = ()

    @property
    def n_collectives(self) -> int:
        return sum(1 for s in self.sites if s.kind == "collective")


@dataclass
class ProgramAnalysis:
    program: A.Program
    functions: Dict[str, FunctionAnalysis]
    diagnostics: DiagnosticBag
    collective_funcs: Set[str]
    requested_level: Optional[ThreadLevel]
    precision: str = "paper"
    #: Check-group id -> "multithread" | "concurrent" (selects the runtime
    #: error type raised when the group's counter overlaps).
    group_kinds: Dict[int, str] = field(default_factory=dict)
    #: True when interprocedural context propagation ran.
    interprocedural: bool = False
    #: The call graph / summaries the interprocedural layer computed
    #: (``None`` in intraprocedural mode).
    callgraph: Optional[CallGraph] = None
    summaries: Optional[Dict[str, FunctionSummary]] = None

    @property
    def flagged_functions(self) -> List[str]:
        return [n for n, fa in self.functions.items() if fa.flagged]

    @property
    def instrumented_functions(self) -> List[str]:
        return [n for n, fa in self.functions.items() if fa.instrumented]

    @property
    def verified(self) -> bool:
        """True when no warnings were produced — the program is statically
        proven correct and needs zero runtime checks."""
        return len(self.diagnostics) == 0

    def function(self, name: str) -> FunctionAnalysis:
        return self.functions[name]


def _find_requested_level(index: ProgramIndex) -> Optional[ThreadLevel]:
    """Thread level requested via MPI_Init_thread(n) / MPI_Init()."""
    for calls in index.calls.values():
        for node in calls:
            if node.name == "MPI_Init_thread" and node.args:
                arg = node.args[0]
                if isinstance(arg, A.IntLit):
                    return LEVEL_FROM_INT.get(arg.value, ThreadLevel.MULTIPLE)
                return None  # dynamic level: cannot check statically
            if node.name == "MPI_Init":
                return ThreadLevel.SINGLE
    return None


def _call_edges(program: A.Program, index: ProgramIndex) -> Dict[str, Set[str]]:
    funcs = {f.name for f in program.funcs}
    return {
        name: {c.name for c in calls if c.name in funcs}
        for name, calls in index.calls.items()
    }


# ---------------------------------------------------------------------------
# Interprocedural plan
# ---------------------------------------------------------------------------

#: One expression-call sequence point: (anchor-uid chain, point name).
ExtraPoint = Tuple[Tuple[int, ...], str]


@dataclass
class InterproceduralPlan:
    """Everything the interprocedural layer feeds into the per-function
    pipeline and the program-level synthesis."""

    graph: CallGraph
    contexts: ContextMap
    summaries: Dict[str, FunctionSummary]
    #: func -> expression-call sequence points (anchor chain + name).
    extra_points: Dict[str, Tuple[ExtraPoint, ...]]
    #: func -> structural (uid-free) cache token for the extra points.
    extra_tokens: Dict[str, Tuple[Tuple[int, str], ...]]


def build_plan(program: A.Program, index: ProgramIndex,
               initial_words: Optional[Dict[str, Word]] = None,
               entry_context: Word = EMPTY,
               graph: Optional[CallGraph] = None,
               contexts: Optional[ContextMap] = None,
               summaries: Optional[Dict[str, FunctionSummary]] = None
               ) -> InterproceduralPlan:
    """Call graph + context propagation + summaries + expression-call
    sequence points for one program.

    The three whole-program passes can be supplied precomputed — the
    session layer builds the summaries incrementally (previous summaries +
    dirty set) and reuses this function only for the expression-call
    sequence-point tail."""
    if graph is None:
        graph = build_call_graph(program, index)
    if contexts is None:
        contexts = propagate_contexts(program, graph, seeds=initial_words,
                                      entry_context=entry_context)
    if summaries is None:
        summaries = collective_summaries(program, graph, index)
    extra_points: Dict[str, Tuple[ExtraPoint, ...]] = {}
    extra_tokens: Dict[str, Tuple[Tuple[int, str], ...]] = {}
    for name in graph.order:
        points: List[ExtraPoint] = []
        token: List[Tuple[int, str]] = []
        for edge in graph.edges[name]:
            if not edge.expression:
                continue  # statement calls already have a CALL block
            if not summaries[edge.callee].collectives:
                continue
            points.append((edge.anchor_uids, f"call:{edge.callee}"))
            token.append((edge.anchor_pos, f"call:{edge.callee}"))
        if points:
            extra_points[name] = tuple(points)
            extra_tokens[name] = tuple(sorted(token))
    return InterproceduralPlan(graph=graph, contexts=contexts,
                               summaries=summaries,
                               extra_points=extra_points,
                               extra_tokens=extra_tokens)


def update_plan(prev: InterproceduralPlan,
                graph: CallGraph,
                contexts: ContextMap,
                summaries: Dict[str, FunctionSummary],
                dirty: Set[str],
                removed: Set[str]) -> InterproceduralPlan:
    """Delta version of :func:`build_plan`'s expression-call sequence-point
    tail: recompute the extra points only for ``dirty`` functions (changed
    bodies plus callers of functions whose collective summary flipped) and
    drop ``removed`` ones; everything else is carried over from ``prev``.
    The whole-program passes (graph / contexts / summaries) are supplied
    already updated by the session layer."""
    extra_points = dict(prev.extra_points)
    extra_tokens = dict(prev.extra_tokens)
    for name in removed:
        extra_points.pop(name, None)
        extra_tokens.pop(name, None)
    for name in dirty:
        if name not in graph.edges:
            extra_points.pop(name, None)
            extra_tokens.pop(name, None)
            continue
        points: List[ExtraPoint] = []
        token: List[Tuple[int, str]] = []
        for edge in graph.edges[name]:
            if not edge.expression:
                continue
            if not summaries[edge.callee].collectives:
                continue
            points.append((edge.anchor_uids, f"call:{edge.callee}"))
            token.append((edge.anchor_pos, f"call:{edge.callee}"))
        if points:
            extra_points[name] = tuple(points)
            extra_tokens[name] = tuple(sorted(token))
        else:
            extra_points.pop(name, None)
            extra_tokens.pop(name, None)
    return InterproceduralPlan(graph=graph, contexts=contexts,
                               summaries=summaries,
                               extra_points=extra_points,
                               extra_tokens=extra_tokens)


# ---------------------------------------------------------------------------
# Per-function pipeline (pure — no shared state, process-pool friendly)
# ---------------------------------------------------------------------------


@dataclass
class FunctionArtifacts:
    """Everything the per-function pipeline produces.

    This is the unit the :class:`repro.core.engine.AnalysisEngine` caches and
    ships across process boundaries; the driver re-wraps it into a fresh
    :class:`FunctionAnalysis` per program (the check-group / instrumentation
    fields are program-level state and must not be shared).
    """

    func: A.FuncDef
    cfg: CFG
    ast_block: Dict[int, int]
    word_info: WordInfo
    sites: List[CollectiveSite]
    monothread: MonothreadResult
    concurrency: ConcurrencyResult
    sequence: SequenceResult
    flagged: bool


def _analyze_function(
    func: A.FuncDef,
    func_names: Set[str],
    collective_funcs: Set[str],
    word: Word,
    precision: str,
    call_stmts: Optional[List[A.ExprStmt]] = None,
    prebuilt: Optional[Tuple[CFG, Dict[int, int]]] = None,
    extra_points: Optional[Tuple[ExtraPoint, ...]] = None,
) -> FunctionArtifacts:
    """Run all per-function phases for one function under one context word."""
    if prebuilt is not None:
        cfg, ast_block = prebuilt
    else:
        cfg, ast_block = build_cfg(func, func_names)
    info = compute_words(func, word)
    sites = collect_sites(func, collective_funcs, call_stmts)
    mono = analyze_monothread(func, info, sites)
    conc = analyze_concurrency(func, info, sites)
    seq_extra: Optional[Dict[str, List[int]]] = None
    if extra_points:
        seq_extra = {}
        for anchor_uids, name in extra_points:
            block = next((ast_block[u] for u in anchor_uids if u in ast_block),
                         None)
            # Statements in dead code (after an unconditional return/break)
            # keep their ast_block entry, but the block itself is pruned
            # from the CFG — an unreachable call can never diverge, so it
            # contributes no PDF+ point (found by ``parcoach fuzz``).
            if block is not None and block in cfg.blocks:
                seq_extra.setdefault(name, []).append(block)
    seq = analyze_sequence(func.name, cfg, collective_funcs, precision,
                           extra_points=seq_extra)
    flagged = bool(
        mono.multithreaded_sites or conc.concurrent_pairs or seq.conditionals
    )
    return FunctionArtifacts(
        func=func, cfg=cfg, ast_block=ast_block, word_info=info,
        sites=sites, monothread=mono, concurrency=conc, sequence=seq,
        flagged=flagged,
    )


# ---------------------------------------------------------------------------
# Per-context artifact merging
# ---------------------------------------------------------------------------


def _diag_identity(diag: Diagnostic) -> tuple:
    """Dedup key for context-merged diagnostics (ignores the call path: the
    same finding reached over two chains is reported once)."""
    return (diag.code, diag.function, diag.message, diag.collectives,
            diag.conditionals, diag.severity, diag.context)


def _with_chain(diags: List[Diagnostic],
                chain: Tuple[str, ...]) -> List[Diagnostic]:
    if len(chain) < 2:
        return diags
    return [replace(d, call_path=chain) for d in diags]


def _merge_artifacts(
    parts: List[Tuple[Word, FunctionArtifacts]],
    chains: Dict[Word, Tuple[str, ...]],
) -> Tuple[FunctionArtifacts, Tuple[Word, ...], Tuple[WordInfo, ...]]:
    """Fold the per-context artifacts of one function into a single view.

    With one empty-context part this is the identity (byte-for-byte the
    intraprocedural result — cached objects pass through untouched).
    Otherwise a fresh :class:`FunctionArtifacts` is built: sites/CFG come
    from the first context, phase results are unioned (deduplicating by site
    uid / diagnostic identity), and every diagnostic produced under a
    non-empty context gets that context's witness call chain attached
    (copies — cached artifacts are shared and must not be mutated).
    """
    words = tuple(w for w, _art in parts)
    infos = tuple(art.word_info for _w, art in parts)
    if len(parts) == 1:
        word, art = parts[0]
        chain = chains.get(word, ())
        if word == EMPTY or len(chain) < 2:
            return art, words, infos
        merged = replace(
            art,
            monothread=replace(art.monothread, diagnostics=_with_chain(
                art.monothread.diagnostics, chain)),
            concurrency=replace(art.concurrency, diagnostics=_with_chain(
                art.concurrency.diagnostics, chain)),
            sequence=replace(art.sequence, diagnostics=_with_chain(
                art.sequence.diagnostics, chain)),
        )
        return merged, words, infos

    base = parts[0][1]
    mono = MonothreadResult()
    conc = ConcurrencyResult()
    seq = SequenceResult()
    seen_sites: Set[int] = set()
    seen_pairs: Set[Tuple[int, int]] = set()
    seen_diags: Set[tuple] = set()
    flagged = False

    def extend_diags(out: List[Diagnostic], diags: List[Diagnostic],
                     word: Word) -> None:
        chain = chains.get(word, ())
        for diag in _with_chain(list(diags), chain) if word != EMPTY else diags:
            key = _diag_identity(diag)
            if key in seen_diags:
                continue
            seen_diags.add(key)
            out.append(diag)

    for word, art in parts:
        flagged = flagged or art.flagged
        for site in art.monothread.multithreaded_sites:
            if site.uid not in seen_sites:
                seen_sites.add(site.uid)
                mono.multithreaded_sites.append(site)
        mono.sipw_uids |= art.monothread.sipw_uids
        for uid, level in art.monothread.required_levels.items():
            if uid not in mono.required_levels or mono.required_levels[uid] < level:
                mono.required_levels[uid] = level
        extend_diags(mono.diagnostics, art.monothread.diagnostics, word)

        for pair in art.concurrency.concurrent_pairs:
            if pair not in seen_pairs:
                seen_pairs.add(pair)
                conc.concurrent_pairs.append(pair)
        conc.scc_uids |= art.concurrency.scc_uids
        extend_diags(conc.diagnostics, art.concurrency.diagnostics, word)

        for name, finding in art.sequence.findings.items():
            merged_finding = seq.findings.get(name)
            if merged_finding is None:
                seq.findings[name] = replace(
                    finding,
                    divergence_blocks=set(finding.divergence_blocks),
                    suppressed_blocks=set(finding.suppressed_blocks),
                )
            else:
                merged_finding.divergence_blocks |= finding.divergence_blocks
                merged_finding.suppressed_blocks |= finding.suppressed_blocks
        seq.conditionals |= art.sequence.conditionals
        extend_diags(seq.diagnostics, art.sequence.diagnostics, word)

    # Concurrency groups: connected components over the merged pair set.
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in conc.concurrent_pairs:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
    for uid in parent:
        conc.groups[uid] = find(uid)

    merged = FunctionArtifacts(
        func=base.func, cfg=base.cfg, ast_block=base.ast_block,
        word_info=base.word_info, sites=base.sites,
        monothread=mono, concurrency=conc, sequence=seq, flagged=flagged,
    )
    return merged, words, infos


# ---------------------------------------------------------------------------
# Program-level synthesis
# ---------------------------------------------------------------------------


def _assemble(
    program: A.Program,
    index: ProgramIndex,
    collective_funcs: Set[str],
    artifacts: Dict[str, FunctionArtifacts],
    precision: str,
    instrument_all: bool,
    requested: Optional[ThreadLevel],
    plan: Optional[InterproceduralPlan] = None,
    context_info: Optional[Dict[str, Tuple[Tuple[Word, ...],
                                           Tuple[WordInfo, ...]]]] = None,
) -> ProgramAnalysis:
    """Program-level synthesis: diagnostics bag, check groups, thread-level
    comparison, and the selective instrumentation plan.

    Deterministic: iterates ``program.funcs`` in source order, so group
    numbering and diagnostic order are identical however the per-function
    artifacts were produced (serial, cached, or parallel)."""
    diagnostics = DiagnosticBag()
    functions: Dict[str, FunctionAnalysis] = {}
    group_counter = 0
    group_kinds: Dict[int, str] = {}

    for func in program.funcs:
        art = artifacts[func.name]
        words, infos = (EMPTY,), ()
        if context_info is not None and func.name in context_info:
            words, infos = context_info[func.name]
        fa = FunctionAnalysis(
            func=func, cfg=art.cfg, ast_block=art.ast_block,
            word_info=art.word_info, sites=art.sites,
            monothread=art.monothread, concurrency=art.concurrency,
            sequence=art.sequence, flagged=art.flagged,
            context_words=words, word_infos=infos,
        )

        # Check-group assignment: one group per multithreaded site, one per
        # concurrency component.
        for site in art.monothread.multithreaded_sites:
            group_counter += 1
            group_kinds[group_counter] = "multithread"
            fa.check_groups.setdefault(site.uid, []).append(group_counter)
            fa.multithreaded_sites.add(site.uid)
        component_group: Dict[int, int] = {}
        for site_uid, root in art.concurrency.groups.items():
            if root not in component_group:
                group_counter += 1
                group_kinds[group_counter] = "concurrent"
                component_group[root] = group_counter
            fa.check_groups.setdefault(site_uid, []).append(component_group[root])

        diagnostics.extend(art.monothread.diagnostics)
        diagnostics.extend(art.concurrency.diagnostics)
        diagnostics.extend(art.sequence.diagnostics)
        functions[func.name] = fa

    # Thread-level comparison against the requested level.
    if requested is not None:
        for name, fa in functions.items():
            needed = fa.monothread.max_required_level
            if needed > requested:
                offenders = tuple(
                    SourceRef(site.name, site.line)
                    for site in fa.sites
                    if fa.monothread.required_levels.get(site.uid, ThreadLevel.SINGLE) > requested
                )
                diagnostics.add(Diagnostic(
                    code=ErrorCode.THREAD_LEVEL,
                    function=name,
                    message=(
                        f"collectives require {needed.mpi_name} but the program "
                        f"requests only {requested.mpi_name}"
                    ),
                    collectives=offenders,
                ))

    # Selective instrumentation plan.
    flagged = {n for n, fa in functions.items() if fa.flagged}
    if instrument_all:
        to_instrument = {n for n, fa in functions.items() if fa.sites}
    else:
        to_instrument = set(flagged)
        edges = _call_edges(program, index)
        # Transitive closure of calls from flagged functions.
        work = list(flagged)
        reachable: Set[str] = set()
        while work:
            f = work.pop()
            for callee in edges.get(f, ()):
                if callee not in reachable:
                    reachable.add(callee)
                    work.append(callee)
        to_instrument |= {f for f in reachable if f in collective_funcs}

    for name in to_instrument:
        fa = functions[name]
        if not fa.sites:
            continue
        fa.instrumented = True
        fa.cc_sites = {s.uid for s in fa.sites}

    return ProgramAnalysis(
        program=program, functions=functions, diagnostics=diagnostics,
        collective_funcs=collective_funcs, requested_level=requested,
        precision=precision, group_kinds=group_kinds,
        interprocedural=plan is not None,
        callgraph=plan.graph if plan is not None else None,
        summaries=plan.summaries if plan is not None else None,
    )


def analyze_program(
    program: A.Program,
    initial_words: Optional[Dict[str, Word]] = None,
    precision: str = "paper",
    instrument_all: bool = False,
    cfgs: Optional[Dict[str, tuple]] = None,
    interprocedural: bool = True,
    entry_context: Word = EMPTY,
) -> ProgramAnalysis:
    """Run the full static analysis (one-shot, no caching).

    Parameters
    ----------
    initial_words:
        Per-function initial parallelism word (the paper's initial-level
        option).  In interprocedural mode these are *additional* seed
        contexts for the named functions; in intraprocedural mode each
        function is analyzed under exactly this word (default empty).
    precision:
        Passed to phase 3 (``"paper"`` or ``"counting"``).
    instrument_all:
        Ablation switch: plan CC/ENTER checks for *every* collective of every
        function, regardless of the static verdict (blanket instrumentation
        baseline for the selective-instrumentation ablation).
    cfgs:
        Pre-built CFGs (``{name: (cfg, ast_block)}``) from the compiler's
        middle end; PARCOACH reuses them instead of rebuilding (the paper's
        pass works directly on GCC's CFG).
    interprocedural:
        Propagate calling-context words over the call graph and analyze each
        function once per distinct context (default).  ``False`` restores
        the paper's intraprocedural behaviour.
    entry_context:
        Parallelism word seeding the entry functions (``main`` / functions
        nobody calls) in interprocedural mode — the CLI's
        ``--initial-context``.
    """
    initial_words = initial_words or {}
    index = index_program(program)
    collective_funcs = collective_call_graph(program, index)
    func_names = {f.name for f in program.funcs}
    plan: Optional[InterproceduralPlan] = None
    if interprocedural:
        plan = build_plan(program, index, initial_words, entry_context)

    artifacts: Dict[str, FunctionArtifacts] = {}
    context_info: Dict[str, Tuple[Tuple[Word, ...], Tuple[WordInfo, ...]]] = {}
    for func in program.funcs:
        prebuilt = cfgs.get(func.name) if cfgs is not None else None
        call_stmts = index.call_stmts.get(func.name)
        if plan is not None:
            words = plan.contexts.contexts[func.name]
            extra = plan.extra_points.get(func.name)
            chains = {w: plan.contexts.chains.get((func.name, w), ())
                      for w in words}
        else:
            words = (initial_words.get(func.name, EMPTY),)
            extra = None
            chains = {}
        parts = [
            (word, _analyze_function(func, func_names, collective_funcs,
                                     word, precision, call_stmts, prebuilt,
                                     extra))
            for word in words
        ]
        merged, ctx_words, infos = _merge_artifacts(parts, chains)
        artifacts[func.name] = merged
        context_info[func.name] = (ctx_words, infos)

    analysis = _assemble(program, index, collective_funcs, artifacts,
                         precision, instrument_all,
                         _find_requested_level(index),
                         plan=plan, context_info=context_info)
    if probes_active():
        probe("drv:mode:" + ("inter" if plan is not None else "intra"))
        if plan is not None and plan.extra_points:
            probe("drv:extra-points")
        for diag in analysis.diagnostics:
            probe("drv:diag:" + diag.code.value)
        for fa in analysis.functions.values():
            if fa.instrumented:
                probe("drv:instrumented")
    return analysis
