"""The paper's contribution: PARCOACH static analysis + instrumentation for
MPI collectives in multi-threaded (MPI+OpenMP) context."""

from .callgraph import (
    CallGraph,
    ContextMap,
    FunctionSummary,
    build_call_graph,
    collective_summaries,
    propagate_contexts,
)
from .concurrency import ConcurrencyResult, analyze_concurrency, words_concurrent
from .diagnostics import Diagnostic, DiagnosticBag, ErrorCode, SourceRef
from .driver import FunctionAnalysis, ProgramAnalysis, analyze_program
from .engine import AnalysisEngine, EngineStats, ast_fingerprint
from .instrument import InstrumentationReport, instrument_program
from .monothread import MonothreadResult, analyze_monothread
from .report import (
    REPORT_SCHEMA,
    REPORT_VERSION,
    analysis_summary,
    render_json,
    render_report,
    report_from_analysis,
    validate_report,
)
from .sequence import CollectiveFinding, SequenceResult, analyze_sequence
from .sites import CollectiveSite, collect_sites, collective_call_graph

__all__ = [
    "AnalysisEngine",
    "EngineStats",
    "ast_fingerprint",
    "CallGraph",
    "ContextMap",
    "FunctionSummary",
    "build_call_graph",
    "collective_summaries",
    "propagate_contexts",
    "ConcurrencyResult",
    "analyze_concurrency",
    "words_concurrent",
    "Diagnostic",
    "DiagnosticBag",
    "ErrorCode",
    "SourceRef",
    "FunctionAnalysis",
    "ProgramAnalysis",
    "analyze_program",
    "InstrumentationReport",
    "instrument_program",
    "MonothreadResult",
    "analyze_monothread",
    "analysis_summary",
    "render_report",
    "REPORT_SCHEMA",
    "REPORT_VERSION",
    "render_json",
    "report_from_analysis",
    "validate_report",
    "CollectiveFinding",
    "SequenceResult",
    "analyze_sequence",
    "CollectiveSite",
    "collect_sites",
    "collective_call_graph",
]
