"""Phase 3 — inter-process verification (PARCOACH Algorithm 1).

All MPI processes must execute the same sequence of collectives.  On the
function's CFG, for each collective name ``c``, the iterated post-dominance
frontier ``PDF+(S_c)`` of the set ``S_c`` of nodes calling ``c`` is exactly
the set of conditionals where the control flow may diverge between processes
with different outcomes for the remaining ``c`` sequence.  A non-empty
``PDF+`` yields a ``COLLECTIVE_MISMATCH`` warning naming the collective, the
call lines and the guilty conditional lines; those conditionals drive the
*selective* instrumentation.

``precision="counting"`` adds a refinement beyond the paper: a flagged
conditional is suppressed when, on the loop-free part of the CFG, every
outgoing path provably executes the same number of ``c`` calls (e.g.
``if/else`` with one call in each branch).  The default ``"paper"`` mode
reproduces PARCOACH's published behaviour, where such patterns warn and are
cleared by the dynamic check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..cfg import CFG, BlockKind, DominatorTree, dominators, post_dominators
from ..cfg.loops import find_back_edges
from .diagnostics import Diagnostic, ErrorCode, SourceRef

#: Cap on the possible-count sets of the counting refinement.
_MAX_COUNTS = 8
_UNKNOWN: FrozenSet[int] = frozenset()  # sentinel: "too many / loop-tainted"


@dataclass
class CollectiveFinding:
    """Algorithm 1 output for one collective name."""

    name: str
    call_blocks: List[int]
    divergence_blocks: Set[int]
    suppressed_blocks: Set[int] = field(default_factory=set)


@dataclass
class SequenceResult:
    """Output of phase 3 for one function."""

    findings: Dict[str, CollectiveFinding] = field(default_factory=dict)
    #: Union of divergence blocks over all collective names (the set O).
    conditionals: Set[int] = field(default_factory=set)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def needs_dynamic_check(self) -> bool:
        return bool(self.conditionals)


def _collective_points(cfg: CFG, collective_funcs: Set[str]) -> Dict[str, List[int]]:
    points: Dict[str, List[int]] = {}
    for block in cfg:
        if block.kind is BlockKind.COLLECTIVE and block.collective:
            points.setdefault(block.collective, []).append(block.id)
        elif block.kind is BlockKind.CALL and block.callee in collective_funcs:
            points.setdefault(f"call:{block.callee}", []).append(block.id)
    return points


def _possible_counts(cfg: CFG, target_blocks: Set[int],
                     loop_nodes: Set[int],
                     back: FrozenSet[Tuple[int, int]]) -> Dict[int, FrozenSet[int]]:
    """Possible number of executions of ``target_blocks`` from each node to
    exit, on the back-edge-free graph (``back`` holds the back edges,
    computed once per function by the caller); loop-tainted nodes get
    ``_UNKNOWN``."""
    # Reverse topological order on the DAG (exit first).
    order = cfg.reverse_postorder()
    counts: Dict[int, FrozenSet[int]] = {}
    for node in reversed(order):
        if node in loop_nodes:
            counts[node] = _UNKNOWN
            continue
        succs = [s for s in cfg.successors(node) if (node, s) not in back]
        if not succs:
            base: FrozenSet[int] = frozenset([0])
        else:
            acc: Set[int] = set()
            unknown = False
            for s in succs:
                c = counts.get(s, _UNKNOWN)
                if c is _UNKNOWN or not c:
                    unknown = True
                    break
                acc |= c
            if unknown or len(acc) > _MAX_COUNTS:
                counts[node] = _UNKNOWN
                continue
            base = frozenset(acc)
        here = 1 if node in target_blocks else 0
        counts[node] = frozenset(c + here for c in base)
    return counts


def analyze_sequence(func_name: str, cfg: CFG,
                     collective_funcs: Optional[Set[str]] = None,
                     precision: str = "paper",
                     extra_points: Optional[Dict[str, List[int]]] = None
                     ) -> SequenceResult:
    """Run Algorithm 1 on one function's CFG.

    Parameters
    ----------
    precision:
        ``"paper"`` (PDF+ exactly as published) or ``"counting"`` (suppress
        provably-balanced conditionals; see module docstring).
    extra_points:
        Additional collective points (name -> block ids) the CFG itself
        cannot see — the interprocedural layer supplies one per
        expression-level call to a collective-executing helper (those calls
        have no ``CALL`` block).
    """
    if precision not in ("paper", "counting"):
        raise ValueError(f"unknown precision {precision!r}")
    collective_funcs = collective_funcs or set()
    result = SequenceResult()
    points = _collective_points(cfg, collective_funcs)
    if extra_points:
        for name, blocks in extra_points.items():
            merged = points.setdefault(name, [])
            merged.extend(b for b in blocks if b not in merged)
    if not points:
        return result

    pdom = post_dominators(cfg)
    loop_nodes: Set[int] = set()
    # Dominators and back edges depend only on the CFG — compute them once
    # per function and thread them through; the counting path used to redo
    # both for every collective name.
    back_edges: FrozenSet[Tuple[int, int]] = frozenset()
    if precision == "counting":
        dom = dominators(cfg)
        back_edges = frozenset(find_back_edges(cfg, dom))
        for src, header in back_edges:
            body = {header, src}
            stack = [src]
            while stack:
                node = stack.pop()
                if node == header:
                    continue
                for pred in cfg.predecessors(node):
                    if pred not in body:
                        body.add(pred)
                        stack.append(pred)
            loop_nodes |= body

    for name in sorted(points):
        call_blocks = points[name]
        divergence = pdom.iterated_frontier(call_blocks)
        suppressed: Set[int] = set()
        if precision == "counting" and divergence:
            counts = _possible_counts(cfg, set(call_blocks), loop_nodes, back_edges)
            for cond in sorted(divergence):
                succ_counts = [counts.get(s, _UNKNOWN) for s in cfg.successors(cond)]
                if (
                    succ_counts
                    and all(c is not _UNKNOWN and len(c) == 1 for c in succ_counts)
                    and len({next(iter(c)) for c in succ_counts}) == 1
                ):
                    suppressed.add(cond)
            divergence = divergence - suppressed

        finding = CollectiveFinding(
            name=name, call_blocks=sorted(call_blocks),
            divergence_blocks=divergence, suppressed_blocks=suppressed,
        )
        result.findings[name] = finding
        if not divergence:
            continue
        result.conditionals |= divergence
        call_refs = tuple(
            SourceRef(name, cfg.block(b).line) for b in sorted(call_blocks)
        )
        cond_lines = tuple(cfg.block(b).line for b in sorted(divergence))
        result.diagnostics.append(Diagnostic(
            code=ErrorCode.COLLECTIVE_MISMATCH,
            function=func_name,
            message=(
                f"{name}: MPI processes may execute different numbers of "
                f"calls depending on control flow — possible deadlock"
            ),
            collectives=call_refs,
            conditionals=cond_lines,
        ))
    return result
