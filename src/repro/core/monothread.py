"""Phase 1 — every MPI collective must execute in a monothreaded context.

For each collective site, check whether its parallelism word belongs to the
language ``L``.  Sites outside ``L`` form the paper's set **S** (with the
innermost parallel construct entries as **Sipw**, the nodes to instrument
with runtime thread-count checks) and produce a
``COLLECTIVE_MULTITHREADED`` warning that names the collective, its source
line, and the word (thread context) that rejected it.

The phase also derives the minimum MPI thread level each site requires; the
driver compares these against the level the program requests via
``MPI_Init_thread``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..minilang import ast_nodes as A
from ..mpi.thread_levels import ThreadLevel, required_level
from ..parallelism import (
    WordInfo,
    format_word,
    has_parallel,
    innermost_single,
    is_monothreaded,
)
from .diagnostics import Diagnostic, ErrorCode, SourceRef
from .sites import CollectiveSite


@dataclass
class MonothreadResult:
    """Output of phase 1 for one function."""

    #: Sites whose word is outside L (the paper's set S).
    multithreaded_sites: List[CollectiveSite] = field(default_factory=list)
    #: AST uids of the innermost enclosing parallel constructs of those sites
    #: (the paper's Sipw — where the multithreaded execution is created).
    sipw_uids: Set[int] = field(default_factory=set)
    #: Site uid -> minimal MPI thread level it requires.
    required_levels: Dict[int, ThreadLevel] = field(default_factory=dict)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def max_required_level(self) -> ThreadLevel:
        if not self.required_levels:
            return ThreadLevel.SINGLE
        return max(self.required_levels.values())


def _innermost_parallel_uid(site: CollectiveSite, info: WordInfo) -> Optional[int]:
    """The uid of the innermost enclosing parallel/task construct of a site."""
    for uid in reversed(info.enclosing.get(site.uid, ())):
        if info.construct_kinds.get(uid) in ("parallel", "task"):
            return uid
    return None


def analyze_monothread(func: A.FuncDef, info: WordInfo,
                       sites: List[CollectiveSite]) -> MonothreadResult:
    result = MonothreadResult()
    for site in sites:
        word = info.words[site.uid]
        mono = is_monothreaded(word)
        single = innermost_single(word)
        master_only = single is not None and single.kind == "master"
        result.required_levels[site.uid] = required_level(
            has_parallel(word), mono, master_only
        )
        in_task = any(
            info.construct_kinds.get(uid) == "task"
            for uid in info.enclosing.get(site.uid, ())
        )
        if mono and not in_task:
            continue
        result.multithreaded_sites.append(site)
        parallel_uid = _innermost_parallel_uid(site, info)
        if parallel_uid is not None:
            result.sipw_uids.add(parallel_uid)
        code = ErrorCode.TASK_CONTEXT if in_task else ErrorCode.COLLECTIVE_MULTITHREADED
        what = "task region" if in_task else "multithreaded context"
        result.diagnostics.append(Diagnostic(
            code=code,
            function=func.name,
            message=(
                f"{site.name} may be executed in a {what}; requires "
                f"MPI_THREAD_MULTIPLE and a single executing thread"
            ),
            collectives=(SourceRef(site.name, site.line),),
            context=f"parallelism word {format_word(word)}",
        ))
    return result
