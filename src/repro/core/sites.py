"""Collective call sites — the unit all three analysis phases operate on.

A *site* is either a direct MPI collective call statement or a call to a
user function that may (transitively) execute collectives; the latter lets
the per-function analyses stay intraprocedural, PARCOACH-style, while still
covering collectives reached through calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..minilang import ast_nodes as A
from ..mpi.collectives import is_collective


@dataclass(frozen=True)
class ExprCallSite:
    """A call that is *not* a standalone call statement (it sits inside an
    initializer, an assignment, a condition, an argument list, ...).

    Such calls have no ``CALL`` basic block and no :class:`CollectiveSite`,
    so the intraprocedural phases cannot see them; the interprocedural layer
    (:mod:`repro.core.callgraph`) anchors them on the nearest enclosing
    statement instead.
    """

    call: A.Call
    #: uids of the enclosing statements, innermost first (the anchor chain —
    #: the first uid with a CFG block is the call's sequence point).
    stmt_uids: Tuple[int, ...]
    #: Pre-order position of the innermost enclosing statement inside the
    #: function AST (structural — stable across re-parses, unlike uids; the
    #: engine keys its cache on this).
    stmt_pos: int
    line: int


@dataclass
class ProgramIndex:
    """One-walk-per-function index of call expressions and call statements
    (every analysis that needs "all calls of f" reads this instead of
    re-walking the AST)."""

    #: function name -> every Call node in its body.
    calls: Dict[str, List[A.Call]] = field(default_factory=dict)
    #: function name -> statement-level calls (ExprStmt wrapping a Call).
    call_stmts: Dict[str, List[A.ExprStmt]] = field(default_factory=dict)
    #: function name -> calls embedded in expressions (no CALL block).
    expr_calls: Dict[str, List[ExprCallSite]] = field(default_factory=dict)


#: One per-function index memo entry: (func ref, calls, call_stmts,
#: expr_calls).  The func reference guards against id() reuse after GC.
_IndexEntry = Tuple[A.FuncDef, List[A.Call], List[A.ExprStmt],
                    List[ExprCallSite]]


def index_function(func: A.FuncDef) -> Tuple[List[A.Call], List[A.ExprStmt],
                                             List[ExprCallSite]]:
    """Index one function: every call node, the statement-level calls, and
    the expression-embedded calls with their anchor chains.  Pure per
    function — the results only depend on the function's own AST, which is
    what makes the per-function memo of :func:`index_program` sound."""
    calls: List[A.Call] = []
    stmts: List[A.ExprStmt] = []
    expr_calls: List[ExprCallSite] = []
    # Pre-order walk mirroring Node.walk(), tracking the enclosing
    # statement chain (innermost first) and the statement positions.
    stack: List[Tuple[A.Node, Tuple[A.Stmt, ...]]] = [(func, ())]
    pos = 0
    stmt_pos: Dict[int, int] = {}
    while stack:
        node, enclosing = stack.pop()
        if isinstance(node, A.Stmt):
            stmt_pos[node.uid] = pos
            enclosing = (node,) + enclosing
        pos += 1
        if isinstance(node, A.Call):
            calls.append(node)
            stmt = enclosing[0] if enclosing else None
            if isinstance(stmt, A.ExprStmt) and stmt.expr is node:
                stmts.append(stmt)
            elif stmt is not None:
                expr_calls.append(ExprCallSite(
                    call=node,
                    stmt_uids=tuple(s.uid for s in enclosing),
                    stmt_pos=stmt_pos[stmt.uid],
                    line=node.line or stmt.line,
                ))
        stack.extend((child, enclosing)
                     for child in reversed(node.children()))
    return calls, stmts, expr_calls


def index_program(program: A.Program,
                  memo: Optional[Dict[int, _IndexEntry]] = None
                  ) -> ProgramIndex:
    """Index every function of ``program``.

    ``memo`` (``id(func)`` → entry) makes re-indexing incremental: a
    function object already indexed — the session layer reuses unchanged
    ``FuncDef`` objects across re-parses — costs a dict lookup instead of a
    tree walk.  Callers owning a memo are responsible for bounding it."""
    index = ProgramIndex()
    for func in program.funcs:
        if memo is not None:
            entry = memo.get(id(func))
            if entry is not None and entry[0] is func:
                _f, calls, stmts, expr_calls = entry
                index.calls[func.name] = calls
                index.call_stmts[func.name] = stmts
                index.expr_calls[func.name] = expr_calls
                continue
        calls, stmts, expr_calls = index_function(func)
        if memo is not None:
            memo[id(func)] = (func, calls, stmts, expr_calls)
        index.calls[func.name] = calls
        index.call_stmts[func.name] = stmts
        index.expr_calls[func.name] = expr_calls
    return index


@dataclass
class CollectiveSite:
    """One collective-relevant call statement inside a function."""

    stmt: A.ExprStmt
    call: A.Call
    kind: str  # "collective" | "call"
    name: str  # MPI name, or "call:<func>" for user calls
    line: int

    @property
    def uid(self) -> int:
        return self.stmt.uid


def collect_sites(func: A.FuncDef,
                  collective_funcs: Optional[Set[str]] = None,
                  call_stmts: Optional[List[A.ExprStmt]] = None) -> List[CollectiveSite]:
    """All collective sites of ``func`` in source order.

    ``collective_funcs`` is the set of user functions that may execute a
    collective (computed by the driver's call-graph pass); ``call_stmts``
    optionally provides the pre-indexed statement-level calls.
    """
    collective_funcs = collective_funcs or set()
    sites: List[CollectiveSite] = []
    if call_stmts is None:
        call_stmts = [
            node for node in func.walk()
            if isinstance(node, A.ExprStmt) and isinstance(node.expr, A.Call)
        ]
    for node in call_stmts:
        expr = node.expr
        assert isinstance(expr, A.Call)
        if is_collective(expr.name):
            sites.append(CollectiveSite(
                stmt=node, call=expr, kind="collective",
                name=expr.name, line=node.line or expr.line,
            ))
        elif expr.name in collective_funcs:
            sites.append(CollectiveSite(
                stmt=node, call=expr, kind="call",
                name=f"call:{expr.name}", line=node.line or expr.line,
            ))
    return sites


def collective_call_graph(program: A.Program,
                          index: Optional[ProgramIndex] = None) -> Set[str]:
    """Names of user functions that may (transitively) execute an MPI
    collective — fixpoint over the call graph."""
    funcs = {f.name: f for f in program.funcs}
    if index is None:
        index = index_program(program)
    direct: dict = {}
    calls: dict = {}
    for name in funcs:
        func_calls = index.calls.get(name, [])
        direct[name] = any(is_collective(c.name) for c in func_calls)
        calls[name] = {c.name for c in func_calls if c.name in funcs}
    callers: dict = {}
    for name, callees in calls.items():
        for callee in callees:
            callers.setdefault(callee, []).append(name)
    result = {name for name, has in direct.items() if has}
    worklist = list(result)
    while worklist:
        member = worklist.pop()
        for caller in callers.get(member, ()):
            if caller not in result:
                result.add(caller)
                worklist.append(caller)
    return result
