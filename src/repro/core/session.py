"""Persistent incremental analysis sessions — ``parcoach serve`` / ``watch``.

The batch pipeline is one-shot: parse, analyze, report, exit.  This module
turns it into a standing service.  An :class:`AnalysisSession` owns one
:class:`~repro.core.engine.AnalysisEngine` and, per source file, the state
needed to make a re-analysis after an edit cost work proportional to the
*edit*, not the program:

* **Chunked incremental re-parse** — the source is split into top-level
  function chunks (a brace/string/comment scanner).  A chunk whose text and
  start line are unchanged reuses the previous ``FuncDef`` *object*, so the
  engine serves it through the identity fast path with zero hashing; only
  edited chunks are re-parsed (padded to their original line/column so
  positions match a full parse byte-for-byte).  Any anomaly — unbalanced
  braces, a chunk that does not parse to exactly one function — falls back
  to a full parse, which is always correct.

* **Fingerprint diff + dependency invalidation** — per-function structural
  fingerprints (:func:`~repro.core.engine.ast_fingerprint`) of the new parse
  are diffed against the previous ones: the *changed* set (edited, renamed
  or added functions) and the *removed* set drive everything downstream.
  Changed/removed fingerprints are evicted from the engine's
  content-addressed store; the transitive reverse-call-graph closure of the
  changed set (over both the old and new call graphs) is the *dependents*
  set — callers whose context words or collective summaries may change.
  Unchanged functions are never re-analyzed: content addressing guarantees
  their artifacts can only be hit by structurally identical code.

* **Incremental interprocedural plan** — the collective summaries are
  recomputed only for dirty SCCs and the callers whose callee summaries
  actually changed (:func:`~repro.core.callgraph.collective_summaries` with
  ``prev``/``dirty``); call-graph construction and context propagation are
  cheap and rebuilt; the per-function call index is memoized on the reused
  ``FuncDef`` objects.

* **Finding deltas** — every update renders the unified Report IR and diffs
  the finding *fingerprints* against the previous update: the serve stream
  re-emits only findings that appeared, plus the fingerprints of findings
  that disappeared.

Edits that keep every function's fingerprint (same-line whitespace, comment
churn) invalidate nothing: the previous analysis and report are reused
outright.  Line-shifting edits change the fingerprints of the shifted
functions (diagnostics are line-addressed) — those re-analyze; the
in-place, line-count-preserving edit of one function is the designed fast
path and the shape ``benchmarks/bench_incremental.py`` gates.
"""

from __future__ import annotations

import hashlib
import re
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..minilang import ast_nodes as A
from ..minilang.parser import parse_program
from ..minilang.semantics import Checker, check_program
from ..parallelism import EMPTY, Word
from ..util.faultinject import fault_site
from ..util.resilience import Deadline, DeadlineExceeded, Failure
from .callgraph import (
    FunctionSummary,
    build_call_graph,
    collective_summaries,
    propagate_contexts,
)
from .driver import build_plan
from .engine import AnalysisEngine
from .report import (
    REPORT_VERSION,
    build_report,
    render_json,
    report_from_analysis,
    source_stamp,
)
from .sites import index_program


class SessionError(Exception):
    """A source update that cannot be analyzed (parse or semantic errors).

    The session state is untouched: the previous program version stays
    current and the next good update diffs against it."""

    def __init__(self, path: str, messages: List[str]) -> None:
        super().__init__(f"{path}: {len(messages)} error(s)")
        self.path = path
        self.messages = messages


# ---------------------------------------------------------------------------
# Chunked source splitting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SourceChunk:
    """One top-level brace-balanced region of the source (a function)."""

    start_line: int
    start_col: int
    text: str

    @property
    def key(self) -> Tuple[str, int]:
        digest = hashlib.sha256(self.text.encode("utf-8")).hexdigest()
        return (digest, self.start_line)


#: Characters that can change the scanner state: string/comment starts and
#: braces.  Everything between two matches is ordinary code.
_INTERESTING = re.compile(r'["/{}]')
_NON_WS = re.compile(r"\S")


def _string_end(source: str, opening: int) -> int:
    """Index one past the closing quote of the string starting at
    ``opening`` — -1 when unterminated (or broken by a newline)."""
    k = opening + 1
    while True:
        quote = source.find('"', k)
        if quote < 0:
            return -1
        newline = source.find("\n", k, quote)
        if newline >= 0:
            return -1
        backslashes = 0
        b = quote - 1
        while b >= 0 and source[b] == "\\":
            backslashes += 1
            b -= 1
        if backslashes % 2 == 0:
            return quote + 1
        k = quote + 1


def split_chunks(source: str) -> Optional[List[SourceChunk]]:
    """Split ``source`` into top-level function chunks.

    Tracks strings (with escapes), ``//`` and ``/* */`` comments and brace
    depth; a chunk runs from the first non-trivia character at depth 0 to
    the brace that closes back to depth 0.  Returns ``None`` on anything
    unbalanced — the caller falls back to a full parse.  The scanner jumps
    between interesting characters with C-speed searches, so re-splitting a
    large file per update costs single-digit milliseconds."""
    chunks: List[SourceChunk] = []
    depth = 0
    start = -1
    i, n = 0, len(source)
    # Incremental line bookkeeping for chunk starts (emitted in order).
    last_pos = 0
    last_line = 1
    while i < n:
        if depth == 0 and start < 0:
            # Looking for the next chunk start: skip whitespace + comments.
            match = _NON_WS.search(source, i)
            if match is None:
                break
            j = match.start()
            two = source[j:j + 2]
            if two == "//":
                end = source.find("\n", j)
                i = n if end < 0 else end + 1
                continue
            if two == "/*":
                end = source.find("*/", j + 2)
                if end < 0:
                    return None
                i = end + 2
                continue
            start = j
            i = j
        match = _INTERESTING.search(source, i)
        if match is None:
            break
        j = match.start()
        ch = source[j]
        if ch == '"':
            end = _string_end(source, j)
            if end < 0:
                return None
            i = end
        elif ch == "/":
            nxt = source[j + 1:j + 2]
            if nxt == "/":
                end = source.find("\n", j)
                i = n if end < 0 else end + 1
            elif nxt == "*":
                end = source.find("*/", j + 2)
                if end < 0:
                    return None
                i = end + 2
            else:
                i = j + 1
        elif ch == "{":
            depth += 1
            i = j + 1
        else:  # "}"
            depth -= 1
            if depth < 0:
                return None
            i = j + 1
            if depth == 0 and start >= 0:
                last_line += source.count("\n", last_pos, start)
                last_pos = start
                newline = source.rfind("\n", 0, start)
                chunks.append(SourceChunk(start_line=last_line,
                                          start_col=start - newline,
                                          text=source[start:j + 1]))
                start = -1
    if depth != 0 or start >= 0:
        return None
    return chunks


def _parse_chunk(chunk: SourceChunk, filename: str) -> Optional[A.FuncDef]:
    """Parse one chunk standalone, padded so every node's line/col matches
    what a full-file parse would assign.  ``None`` when the chunk is not
    exactly one function (the caller falls back to a full parse)."""
    fault_site("session.parse_chunk")
    padded = ("\n" * (chunk.start_line - 1) + " " * (chunk.start_col - 1)
              + chunk.text)
    try:
        program = parse_program(padded, filename)
    except Exception:
        return None
    if len(program.funcs) != 1:
        return None
    return program.funcs[0]


# ---------------------------------------------------------------------------
# Session state
# ---------------------------------------------------------------------------


@dataclass
class SessionUpdate:
    """The delta produced by one :meth:`AnalysisSession.update_source`."""

    path: str
    #: Monotonic per-file update counter (1 = first analysis).
    seq: int
    #: True when the previous analysis was reused outright (identical
    #: source, or an edit that moved no function fingerprint).
    no_op: bool
    #: True when the update could not use chunk-level parse reuse.
    full_parse: bool
    #: Function names whose fingerprint moved or appeared.
    changed: Tuple[str, ...]
    #: Function names that disappeared.
    removed: Tuple[str, ...]
    #: Reverse-call-graph transitive closure of changed ∪ removed (the
    #: callers that *may* need re-analysis), excluding the seeds.
    dependents: Tuple[str, ...]
    #: Functions the engine actually re-analyzed this update.
    reanalyzed: Tuple[str, ...]
    #: Cache entries evicted for changed/removed fingerprints.
    invalidated_entries: int
    #: Findings that appeared this update (full Report IR finding objects).
    findings_added: Tuple[dict, ...]
    #: Fingerprints of findings that disappeared.
    findings_removed: Tuple[str, ...]
    #: Total live findings after the update.
    findings_total: int
    #: Serve-flavoured Report IR document for this delta.
    report: dict = field(repr=False, default_factory=dict)


@dataclass
class _FileState:
    source: str
    program: A.Program
    fingerprints: Dict[str, str]
    #: chunk key -> FuncDef of the current program (None: chunking disabled
    #: for this file; every update full-parses).
    chunks: Optional[Dict[Tuple[str, int], A.FuncDef]]
    #: function -> caller names (reverse call-graph edges, current version).
    callers: Dict[str, Tuple[str, ...]]
    summaries: Optional[Dict[str, FunctionSummary]]
    #: finding fingerprint -> finding (insertion-ordered as reported).
    findings: Dict[str, dict]
    #: The full analyze-flavoured Report IR of the current version.
    report: dict
    seq: int = 1


class AnalysisSession:
    """A long-lived, incremental front end over one analysis engine.

    ``update_source``/``update`` are the whole API: feed the current text of
    a file, get back a :class:`SessionUpdate` describing exactly what was
    re-analyzed and which findings changed.  See the module docstring for
    the invalidation strategy."""

    #: Recent failures kept for ``stats`` (bounded: the record is
    #: diagnostic, not a log).
    MAX_FAILURES = 8

    def __init__(self, jobs: int = 1, precision: str = "paper",
                 interprocedural: bool = True,
                 entry_context: Word = EMPTY) -> None:
        self.jobs = jobs
        self.engine = AnalysisEngine(jobs=jobs)
        self.precision = precision
        self.interprocedural = interprocedural
        self.entry_context = entry_context
        self.updates = 0
        self.no_op_updates = 0
        #: Resilience counters (see ``docs/resilience.md``): requests healed
        #: by targeted file-state invalidation, full session rebuilds,
        #: per-request deadline expiries, and requests answered by a
        #: degraded (no-interprocedural / cold single-file) analysis.
        self.recoveries = 0
        self.rebuilds = 0
        self.timeouts = 0
        self.degraded = 0
        self.failures: List[Failure] = []
        self._files: Dict[str, _FileState] = {}
        #: id(func) -> func: functions already semantically checked (valid
        #: while the program's function-name set is unchanged — the checks
        #: are per-function except for call resolution against that set).
        self._checked: Dict[int, A.FuncDef] = {}

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False

    def stats(self) -> Dict[str, object]:
        return {
            "engine": self.engine.cache_info(),
            "session": {
                "files": len(self._files),
                "updates": self.updates,
                "no_op_updates": self.no_op_updates,
                "recoveries": self.recoveries,
                "rebuilds": self.rebuilds,
                "timeouts": self.timeouts,
                "degraded": self.degraded,
                "failures": [f.as_dict() for f in self.failures],
            },
        }

    # -- self-healing ----------------------------------------------------------

    def record_failure(self, site: str, exc: BaseException,
                       attempt: int = 1) -> Failure:
        """Keep a bounded, structured trail of what went wrong (surfaced by
        the ``stats`` command so supervisors can see *why* the counters
        moved without scraping stderr)."""
        failure = Failure.from_exception(site, attempt, exc)
        self.failures.append(failure)
        del self.failures[:-self.MAX_FAILURES]
        return failure

    def recover_file(self, path: str) -> None:
        """Targeted self-heal: forget everything the session knows about
        ``path`` and evict its functions' artifacts from the store.  The
        next update of the file is a cold, from-scratch analysis; every
        other file's warm state survives."""
        state = self._files.pop(path, None)
        if state is not None:
            self.engine.invalidate_fingerprints(set(state.fingerprints.values()))

    def rebuild(self) -> None:
        """Last-resort self-heal: throw the whole warm state away — a fresh
        engine (the old pool is shut down) and no per-file state.  The
        session object itself survives, so the serve loop keeps running."""
        try:
            self.engine.close()
        except Exception:
            pass  # a wedged pool must not block the rebuild
        self.engine = AnalysisEngine(jobs=self.jobs)
        self._files.clear()
        self._checked.clear()

    # -- parsing ---------------------------------------------------------------

    def _full_parse(self, path: str, source: str) -> A.Program:
        try:
            program = parse_program(source, path)
        except Exception as exc:
            raise SessionError(path, [str(exc)]) from exc
        self._check(path, program, prev=None)
        return program

    @staticmethod
    def _signatures(program: A.Program) -> Dict[str, tuple]:
        return {f.name: (f.ret_type, len(f.params)) for f in program.funcs}

    def _check(self, path: str, program: A.Program,
               prev: Optional[_FileState]) -> None:
        """Semantic checks, incremental where sound: a reused ``FuncDef``
        was already checked, and per-function checks depend on the other
        functions only through their *signatures* (name, return type,
        arity — call resolution and arity checks) — so while the signature
        map is unchanged, only re-parsed functions are re-checked.  Any
        signature change (rename, add/remove, arity or return-type edit)
        re-checks the whole program: callers of the edited function may be
        unchanged text yet newly wrong."""
        prev_sigs = (self._signatures(prev.program)
                     if prev is not None else None)
        sigs = self._signatures(program)
        unchecked = [f for f in program.funcs
                     if self._checked.get(id(f)) is not f]
        if (prev_sigs == sigs and len(sigs) == len(program.funcs)):
            checker = Checker(program)
            for func in unchecked:
                checker._check_func(func)
            issues = checker.issues
        else:
            issues = check_program(program)
            unchecked = list(program.funcs)
        errors = [str(i) for i in issues if i.severity == "error"]
        if errors:
            raise SessionError(path, errors)
        for func in unchecked:
            self._checked[id(func)] = func
        while len(self._checked) > 65536:
            self._checked.pop(next(iter(self._checked)))

    def _parse_incremental(
        self, path: str, source: str, prev: Optional[_FileState]
    ) -> Tuple[A.Program, Optional[Dict[Tuple[str, int], A.FuncDef]], bool]:
        """Parse ``source``, reusing the previous version's ``FuncDef``
        objects for unchanged chunks.  Returns (program, chunk map or None,
        full_parse flag)."""
        chunks = split_chunks(source)
        if chunks is None:
            return self._full_parse(path, source), None, True
        reused_any = False
        funcs: List[A.FuncDef] = []
        chunk_map: Dict[Tuple[str, int], A.FuncDef] = {}
        prev_chunks = prev.chunks if prev is not None else None
        for chunk in chunks:
            key = chunk.key
            func = prev_chunks.get(key) if prev_chunks else None
            if func is not None:
                reused_any = True
            else:
                func = _parse_chunk(chunk, path)
                if func is None:
                    # Oddly shaped chunk: full parse decides (and reports
                    # real errors with real positions).
                    program = self._full_parse(path, source)
                    return program, None, True
            funcs.append(func)
            chunk_map[key] = func
        program = A.Program(funcs=funcs, filename=path,
                            line=funcs[0].line if funcs else 1)
        self._check(path, program, prev)
        return program, chunk_map, not reused_any and prev is not None

    # -- updates ---------------------------------------------------------------

    def update(self, path: str, deadline: Optional[Deadline] = None,
               interprocedural: Optional[bool] = None) -> SessionUpdate:
        """Re-read ``path`` from disk and fold it into the session."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            # Fault site: an injected OSError here is a failed read (a
            # SessionError like any other); an injected `truncate` hands a
            # half-read file downstream, which the parse layer must survive.
            source = fault_site("session.read_file", source)
        except OSError as exc:
            raise SessionError(path, [str(exc)]) from exc
        return self.update_source(path, source, deadline=deadline,
                                  interprocedural=interprocedural)

    def _no_op_update(self, path: str, prev: _FileState,
                      source: str, full_parse: bool) -> SessionUpdate:
        prev.source = source
        prev.seq += 1
        self.no_op_updates += 1
        delta = SessionUpdate(
            path=path, seq=prev.seq, no_op=True, full_parse=full_parse,
            changed=(), removed=(), dependents=(), reanalyzed=(),
            invalidated_entries=0, findings_added=(), findings_removed=(),
            findings_total=len(prev.findings),
        )
        delta.report = self._delta_report(path, source, delta, prev)
        return delta

    def update_source(self, path: str, source: str,
                      deadline: Optional[Deadline] = None,
                      interprocedural: Optional[bool] = None) -> SessionUpdate:
        """Fold the current text of ``path`` into the session and return
        what changed.  Raises :class:`SessionError` (state untouched) when
        the text does not parse or check.

        ``deadline`` is checked cooperatively at every phase boundary
        (parse, plan, each cache-miss analysis, render); expiry raises
        :class:`~repro.util.resilience.DeadlineExceeded` with the session
        state *untouched* — the previous version stays current, exactly
        like a :class:`SessionError`.  ``interprocedural`` overrides the
        session default for this one update (the serve deadline ladder
        degrades to the cheaper per-function plan)."""
        interproc = (self.interprocedural if interprocedural is None
                     else interprocedural)
        self.updates += 1
        prev = self._files.get(path)
        if prev is not None and prev.source == source:
            return self._no_op_update(path, prev, source, full_parse=False)

        program, chunk_map, full_parse = self._parse_incremental(path, source,
                                                                 prev)
        if deadline is not None:
            deadline.check("session.parse")
        # Unchanged chunks reuse the previous FuncDef objects, so the
        # engine's id-keyed identity memo skips re-hashing them.
        fingerprints = {f.name: self.engine._fingerprint_for(f)
                        for f in program.funcs}
        prev_fps = prev.fingerprints if prev is not None else {}
        changed = tuple(n for n in fingerprints
                        if fingerprints[n] != prev_fps.get(n))
        removed = tuple(n for n in prev_fps if n not in fingerprints)

        if prev is not None and not changed and not removed:
            # Same structure on every function (whitespace / comment edit):
            # nothing to invalidate, the previous analysis stands.  Keep the
            # OLD program object — its artifacts are the cached ones.
            prev.chunks = (
                {k: prev.program.func(v.name)
                 for k, v in chunk_map.items()} if chunk_map is not None
                else None)
            return self._no_op_update(path, prev, source, full_parse)

        # Dependency closure over reverse call edges — both versions' edges,
        # so callers of deleted functions and new callers both count.
        dirty: Set[str] = set(changed) | set(removed)
        index = index_program(program, memo=self.engine._func_index)
        graph = build_call_graph(program, index)
        callers: Dict[str, Tuple[str, ...]] = {
            name: tuple(e.caller for e in graph.callers[name])
            for name in graph.order
        }
        merged_callers: Dict[str, Set[str]] = {}
        for source_map in (prev.callers if prev is not None else {}, callers):
            for name, who in source_map.items():
                merged_callers.setdefault(name, set()).update(who)
        dependents: List[str] = []
        work = list(dirty)
        seen = set(dirty)
        while work:
            name = work.pop()
            for caller in sorted(merged_callers.get(name, ())):
                if caller not in seen:
                    seen.add(caller)
                    dependents.append(caller)
                    work.append(caller)
        dependents_t = tuple(d for d in dependents if d in fingerprints)

        # Evict the edited functions' artifacts from the store.
        doomed = {prev_fps[n] for n in dirty if n in prev_fps}
        invalidated = self.engine.invalidate_fingerprints(doomed)

        plan = None
        initial_words: Dict[str, Word] = {}
        if interproc:
            contexts = propagate_contexts(program, graph,
                                          entry_context=self.entry_context)
            summaries = collective_summaries(
                program, graph, index,
                prev=prev.summaries if prev is not None else None,
                dirty=set(changed))
            plan = build_plan(program, index,
                              entry_context=self.entry_context,
                              graph=graph, contexts=contexts,
                              summaries=summaries)
        else:
            summaries = None
            if self.entry_context:
                # Mirror the CLI's --no-interprocedural semantics: the
                # initial context applies to every function directly.
                initial_words = {f.name: self.entry_context
                                 for f in program.funcs}
        if deadline is not None:
            deadline.check("session.plan")

        fault_site("session.analyze")
        analysis = self.engine.analyze(
            program, initial_words=initial_words, precision=self.precision,
            interprocedural=interproc,
            entry_context=self.entry_context, plan=plan, deadline=deadline)
        record = self.engine.last
        reanalyzed = record.missed_functions
        dep_reanalyzed = [n for n in reanalyzed if n not in dirty]
        self.engine.stats.dependency_invalidations += len(dep_reanalyzed)

        if deadline is not None:
            deadline.check("session.render")
        report = report_from_analysis(analysis, source_path=path,
                                      source_text=source)
        new_findings = {f["fingerprint"]: f for f in report["findings"]}
        old_findings = prev.findings if prev is not None else {}
        added = tuple(f for fp, f in new_findings.items()
                      if fp not in old_findings)
        gone = tuple(fp for fp in old_findings if fp not in new_findings)

        seq = prev.seq + 1 if prev is not None else 1
        self._files[path] = _FileState(
            source=source, program=program, fingerprints=fingerprints,
            chunks=chunk_map, callers=callers, summaries=summaries,
            findings=new_findings, report=report, seq=seq,
        )
        delta = SessionUpdate(
            path=path, seq=seq, no_op=False, full_parse=full_parse,
            changed=changed, removed=removed, dependents=dependents_t,
            reanalyzed=reanalyzed, invalidated_entries=invalidated,
            findings_added=added, findings_removed=gone,
            findings_total=len(new_findings),
        )
        delta.report = self._delta_report(path, source, delta,
                                          self._files[path])
        return delta

    def report_for(self, path: str) -> Optional[dict]:
        """The full analyze-flavoured Report IR of a file's current
        version (None when the file was never analyzed)."""
        state = self._files.get(path)
        return state.report if state is not None else None

    def _delta_report(self, path: str, source: str, delta: SessionUpdate,
                      state: _FileState) -> dict:
        """The serve-flavoured Report IR: only the findings that appeared,
        plus the incremental bookkeeping every consumer of the stream needs
        to reconstruct the full picture."""
        return build_report(
            "serve",
            source=source_stamp(path, source),
            findings=list(delta.findings_added),
            verdict="findings" if delta.findings_total else "clean",
            summary={
                "update": delta.seq,
                "incremental": {
                    "no_op": delta.no_op,
                    "full_parse": delta.full_parse,
                    "changed": list(delta.changed),
                    "removed": list(delta.removed),
                    "dependents": list(delta.dependents),
                    "reanalyzed": list(delta.reanalyzed),
                    "invalidated_entries": delta.invalidated_entries,
                    "findings_added": len(delta.findings_added),
                    "findings_removed": list(delta.findings_removed),
                    "findings_total": delta.findings_total,
                },
            },
        )


# ---------------------------------------------------------------------------
# serve / watch front ends
# ---------------------------------------------------------------------------


def _error_report(path: Optional[str], messages: List[str],
                  tool: str = "serve") -> dict:
    return build_report(tool, source=source_stamp(path, None), findings=[],
                        verdict="error",
                        summary={"errors": list(messages)})


def _timeout_report(path: str, exc: DeadlineExceeded,
                    deadline_ms: float) -> dict:
    return build_report(
        "serve", source=source_stamp(path, None), findings=[],
        verdict="error",
        summary={
            "errors": [str(exc)],
            "timeout": {
                "deadline_ms": deadline_ms,
                "site": exc.site,
                "elapsed_ms": round(exc.elapsed * 1000.0, 1),
            },
        })


def _internal_error_report(path: Optional[str], failure: Failure,
                           request: str) -> dict:
    """The catch-all response: *any* unexpected exception becomes a valid
    Report IR line instead of a dead server."""
    return build_report(
        "serve", source=source_stamp(path, None), findings=[],
        verdict="error",
        summary={
            "errors": [f"internal error: {failure.error_type}: "
                       f"{failure.message}"],
            "failure": failure.as_dict(),
            "request": request,
        })


def run_serve(session: AnalysisSession, stdin=None, stdout=None,
              deadline_ms: Optional[float] = None,
              clock=time.monotonic) -> int:
    """The ``parcoach serve`` loop: a line protocol on stdin, one Report IR
    JSON document per line on stdout.

    Commands (any may be prefixed ``@ID`` — the id is echoed back as a
    top-level ``request_id`` key on every response to that request)::

        analyze PATH   (re)analyze PATH incrementally, emit the delta report
        stats          emit engine + session counters
        ping           emit a liveness report (cheap, never analyzes)
        quit           exit 0 (EOF does the same)

    The loop is crash-isolated: no request can kill the server.  A
    ``SessionError`` is a normal error report; any *other* exception runs
    the self-heal ladder — invalidate the offending file and retry
    (``recoveries``), then rebuild the whole session and retry
    (``rebuilds``), then answer with an ``internal-error`` report carrying
    a traceback digest.  ``KeyboardInterrupt`` exits 0 cleanly.

    ``deadline_ms`` arms a per-request budget: on expiry the request emits
    a ``timeout`` report, then degrades — retry once with the
    interprocedural plan off, then a cold single-file analysis with no
    deadline (``timeouts`` / ``degraded`` counters)."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout

    def respond(doc: dict, request_id: Optional[str]) -> None:
        if request_id is not None:
            doc = dict(doc)
            doc["request_id"] = request_id
        payload = render_json(doc)
        try:
            written = fault_site("serve.emit", payload)
            if written != payload:
                # A short write would corrupt the line protocol; treat it
                # like any other emit failure and resend the full line.
                raise OSError("short write on response stream")
            stdout.write(payload)
            stdout.flush()
            return
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            session.record_failure("serve.emit", exc)
            session.recoveries += 1
        stdout.write(payload)
        stdout.flush()

    def analyze_with_deadline(path: str, request_id: Optional[str]) -> None:
        """The deadline ladder: emit the delta report, or on budget expiry
        a timeout report followed by the best degraded answer we can
        still produce."""
        if deadline_ms is None:
            respond(session.update(path).report, request_id)
            return
        try:
            delta = session.update(
                path, deadline=Deadline.after_ms(deadline_ms, clock))
        except DeadlineExceeded as exc:
            session.timeouts += 1
            session.record_failure(exc.site or "deadline", exc)
            respond(_timeout_report(path, exc, deadline_ms), request_id)
            try:
                delta = session.update(
                    path, deadline=Deadline.after_ms(deadline_ms, clock),
                    interprocedural=False)
            except DeadlineExceeded as exc2:
                session.record_failure(exc2.site or "deadline", exc2, 2)
                # Last rung: cold single-file, no deadline — always answers.
                session.recover_file(path)
                delta = session.update(path, interprocedural=False)
            session.degraded += 1
        respond(delta.report, request_id)

    def handle_analyze(path: str, request_id: Optional[str],
                       request: str) -> None:
        """The self-heal ladder around one analyze request."""
        for attempt in (1, 2, 3):
            try:
                analyze_with_deadline(path, request_id)
                return
            except SessionError as exc:
                respond(_error_report(exc.path, exc.messages), request_id)
                return
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                failure = session.record_failure("serve.analyze", exc,
                                                 attempt)
                if attempt == 1:
                    session.recover_file(path)
                    session.recoveries += 1
                elif attempt == 2:
                    session.rebuild()
                    session.rebuilds += 1
                else:
                    respond(_internal_error_report(path, failure, request),
                            request_id)
                    return

    try:
        for raw in stdin:
            line = raw.strip()
            if not line:
                continue
            request_id: Optional[str] = None
            if line.startswith("@"):
                head, _, rest = line.partition(" ")
                request_id = head[1:]
                line = rest.strip()
                if not line:
                    respond(_error_report(
                        None, ["empty command after request id"]), request_id)
                    continue
            parts = line.split(None, 1)
            command = parts[0]
            if command == "quit":
                break
            if command == "ping":
                respond(build_report(
                    "serve", source=None, findings=[], verdict="clean",
                    summary={"ping": {
                        "ok": True,
                        "files": len(session._files),
                        "updates": session.updates,
                        "recoveries": session.recoveries,
                        "rebuilds": session.rebuilds,
                    }}), request_id)
                continue
            if command == "stats":
                respond(build_report("serve", source=None, findings=[],
                                     verdict="clean",
                                     summary={"stats": session.stats()}),
                        request_id)
                continue
            if command == "analyze":
                if len(parts) != 2:
                    respond(_error_report(None, ["usage: analyze PATH"]),
                            request_id)
                    continue
                handle_analyze(parts[1], request_id, line)
                continue
            respond(_error_report(
                None, [f"unknown command {command!r} "
                       f"(expected analyze/stats/ping/quit)"]), request_id)
    except KeyboardInterrupt:
        return 0
    return 0


def run_watch(session: AnalysisSession, path: str, interval: float = 0.5,
              max_updates: int = 0, stdout=None,
              clock=time.monotonic, sleep=time.sleep) -> int:
    """The ``parcoach watch`` loop: analyze ``path`` now, then poll it and
    re-emit a delta report whenever its content changes.  ``max_updates``
    bounds the number of emitted updates (0 = until interrupted).

    Crash-isolated like serve: a ``SessionError`` (or any unexpected
    exception, after a targeted ``recover_file`` self-heal) becomes an
    error report, de-duplicated so a persistently broken file reports
    once per distinct error, not once per poll.  ``KeyboardInterrupt``
    anywhere in the loop — including mid-analysis — exits 0 cleanly."""
    stdout = stdout if stdout is not None else sys.stdout

    def emit(doc: dict) -> None:
        stdout.write(render_json(doc))
        stdout.flush()

    emitted = 0
    last_reported_error: Optional[str] = None
    try:
        while True:
            try:
                delta = session.update(path)
            except SessionError as exc:
                message = "\n".join(exc.messages)
                if message != last_reported_error:
                    emit(_error_report(exc.path, exc.messages, tool="watch"))
                    emitted += 1
                    last_reported_error = message
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                failure = session.record_failure("watch.update", exc)
                session.recover_file(path)
                session.recoveries += 1
                message = f"{failure.error_type}: {failure.message}"
                if message != last_reported_error:
                    emit(build_report(
                        "watch", source=source_stamp(path, None),
                        findings=[], verdict="error",
                        summary={"errors": [message],
                                 "failure": failure.as_dict()}))
                    emitted += 1
                    last_reported_error = message
            else:
                last_reported_error = None
                if delta.seq == 1 or not delta.no_op:
                    report = dict(delta.report)
                    report["tool"] = "watch"
                    emit(report)
                    emitted += 1
            if max_updates and emitted >= max_updates:
                return 0
            sleep(interval)
    except KeyboardInterrupt:
        return 0


# Re-exported for the CLI and tests.
__all__ = [
    "AnalysisSession",
    "SessionError",
    "SessionUpdate",
    "SourceChunk",
    "run_serve",
    "run_watch",
    "split_chunks",
    "REPORT_VERSION",
]
