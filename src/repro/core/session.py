"""Persistent incremental analysis sessions — ``parcoach serve`` / ``watch``.

The batch pipeline is one-shot: parse, analyze, report, exit.  This module
turns it into a standing service.  An :class:`AnalysisSession` owns one
:class:`~repro.core.engine.AnalysisEngine` and, per source file, the state
needed to make a re-analysis after an edit cost work proportional to the
*edit*, not the program:

* **Chunked incremental re-parse** — the source is split into top-level
  function chunks (a brace/string/comment scanner).  A chunk whose text and
  start line are unchanged reuses the previous ``FuncDef`` *object*, so the
  engine serves it through the identity fast path with zero hashing; only
  edited chunks are re-parsed (padded to their original line/column so
  positions match a full parse byte-for-byte).  Any anomaly — unbalanced
  braces, a chunk that does not parse to exactly one function — falls back
  to a full parse, which is always correct.

* **Fingerprint diff + dependency invalidation** — per-function structural
  fingerprints (:func:`~repro.core.engine.ast_fingerprint`) of the new parse
  are diffed against the previous ones: the *changed* set (edited, renamed
  or added functions) and the *removed* set drive everything downstream.
  Changed/removed fingerprints are evicted from the engine's
  content-addressed store; the transitive reverse-call-graph closure of the
  changed set (over both the old and new call graphs) is the *dependents*
  set — callers whose context words or collective summaries may change.
  Unchanged functions are never re-analyzed: content addressing guarantees
  their artifacts can only be hit by structurally identical code.

* **Incremental interprocedural plan** — the collective summaries are
  recomputed only for dirty SCCs and the callers whose callee summaries
  actually changed (:func:`~repro.core.callgraph.collective_summaries` with
  ``prev``/``dirty``); call-graph construction and context propagation are
  cheap and rebuilt; the per-function call index is memoized on the reused
  ``FuncDef`` objects.

* **Finding deltas** — every update renders the unified Report IR and diffs
  the finding *fingerprints* against the previous update: the serve stream
  re-emits only findings that appeared, plus the fingerprints of findings
  that disappeared.

Edits that keep every function's fingerprint (same-line whitespace, comment
churn) invalidate nothing: the previous analysis and report are reused
outright.  Line-shifting edits change the fingerprints of the shifted
functions (diagnostics are line-addressed) — those re-analyze; the
in-place, line-count-preserving edit of one function is the designed fast
path and the shape ``benchmarks/bench_incremental.py`` gates.
"""

from __future__ import annotations

import hashlib
import re
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..minilang import ast_nodes as A
from ..minilang.parser import parse_program
from ..minilang.semantics import Checker, check_program
from ..parallelism import EMPTY, Word
from .callgraph import (
    FunctionSummary,
    build_call_graph,
    collective_summaries,
    propagate_contexts,
)
from .driver import build_plan
from .engine import AnalysisEngine
from .report import (
    REPORT_VERSION,
    build_report,
    render_json,
    report_from_analysis,
    source_stamp,
)
from .sites import index_program


class SessionError(Exception):
    """A source update that cannot be analyzed (parse or semantic errors).

    The session state is untouched: the previous program version stays
    current and the next good update diffs against it."""

    def __init__(self, path: str, messages: List[str]) -> None:
        super().__init__(f"{path}: {len(messages)} error(s)")
        self.path = path
        self.messages = messages


# ---------------------------------------------------------------------------
# Chunked source splitting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SourceChunk:
    """One top-level brace-balanced region of the source (a function)."""

    start_line: int
    start_col: int
    text: str

    @property
    def key(self) -> Tuple[str, int]:
        digest = hashlib.sha256(self.text.encode("utf-8")).hexdigest()
        return (digest, self.start_line)


#: Characters that can change the scanner state: string/comment starts and
#: braces.  Everything between two matches is ordinary code.
_INTERESTING = re.compile(r'["/{}]')
_NON_WS = re.compile(r"\S")


def _string_end(source: str, opening: int) -> int:
    """Index one past the closing quote of the string starting at
    ``opening`` — -1 when unterminated (or broken by a newline)."""
    k = opening + 1
    while True:
        quote = source.find('"', k)
        if quote < 0:
            return -1
        newline = source.find("\n", k, quote)
        if newline >= 0:
            return -1
        backslashes = 0
        b = quote - 1
        while b >= 0 and source[b] == "\\":
            backslashes += 1
            b -= 1
        if backslashes % 2 == 0:
            return quote + 1
        k = quote + 1


def split_chunks(source: str) -> Optional[List[SourceChunk]]:
    """Split ``source`` into top-level function chunks.

    Tracks strings (with escapes), ``//`` and ``/* */`` comments and brace
    depth; a chunk runs from the first non-trivia character at depth 0 to
    the brace that closes back to depth 0.  Returns ``None`` on anything
    unbalanced — the caller falls back to a full parse.  The scanner jumps
    between interesting characters with C-speed searches, so re-splitting a
    large file per update costs single-digit milliseconds."""
    chunks: List[SourceChunk] = []
    depth = 0
    start = -1
    i, n = 0, len(source)
    # Incremental line bookkeeping for chunk starts (emitted in order).
    last_pos = 0
    last_line = 1
    while i < n:
        if depth == 0 and start < 0:
            # Looking for the next chunk start: skip whitespace + comments.
            match = _NON_WS.search(source, i)
            if match is None:
                break
            j = match.start()
            two = source[j:j + 2]
            if two == "//":
                end = source.find("\n", j)
                i = n if end < 0 else end + 1
                continue
            if two == "/*":
                end = source.find("*/", j + 2)
                if end < 0:
                    return None
                i = end + 2
                continue
            start = j
            i = j
        match = _INTERESTING.search(source, i)
        if match is None:
            break
        j = match.start()
        ch = source[j]
        if ch == '"':
            end = _string_end(source, j)
            if end < 0:
                return None
            i = end
        elif ch == "/":
            nxt = source[j + 1:j + 2]
            if nxt == "/":
                end = source.find("\n", j)
                i = n if end < 0 else end + 1
            elif nxt == "*":
                end = source.find("*/", j + 2)
                if end < 0:
                    return None
                i = end + 2
            else:
                i = j + 1
        elif ch == "{":
            depth += 1
            i = j + 1
        else:  # "}"
            depth -= 1
            if depth < 0:
                return None
            i = j + 1
            if depth == 0 and start >= 0:
                last_line += source.count("\n", last_pos, start)
                last_pos = start
                newline = source.rfind("\n", 0, start)
                chunks.append(SourceChunk(start_line=last_line,
                                          start_col=start - newline,
                                          text=source[start:j + 1]))
                start = -1
    if depth != 0 or start >= 0:
        return None
    return chunks


def _parse_chunk(chunk: SourceChunk, filename: str) -> Optional[A.FuncDef]:
    """Parse one chunk standalone, padded so every node's line/col matches
    what a full-file parse would assign.  ``None`` when the chunk is not
    exactly one function (the caller falls back to a full parse)."""
    padded = ("\n" * (chunk.start_line - 1) + " " * (chunk.start_col - 1)
              + chunk.text)
    try:
        program = parse_program(padded, filename)
    except Exception:
        return None
    if len(program.funcs) != 1:
        return None
    return program.funcs[0]


# ---------------------------------------------------------------------------
# Session state
# ---------------------------------------------------------------------------


@dataclass
class SessionUpdate:
    """The delta produced by one :meth:`AnalysisSession.update_source`."""

    path: str
    #: Monotonic per-file update counter (1 = first analysis).
    seq: int
    #: True when the previous analysis was reused outright (identical
    #: source, or an edit that moved no function fingerprint).
    no_op: bool
    #: True when the update could not use chunk-level parse reuse.
    full_parse: bool
    #: Function names whose fingerprint moved or appeared.
    changed: Tuple[str, ...]
    #: Function names that disappeared.
    removed: Tuple[str, ...]
    #: Reverse-call-graph transitive closure of changed ∪ removed (the
    #: callers that *may* need re-analysis), excluding the seeds.
    dependents: Tuple[str, ...]
    #: Functions the engine actually re-analyzed this update.
    reanalyzed: Tuple[str, ...]
    #: Cache entries evicted for changed/removed fingerprints.
    invalidated_entries: int
    #: Findings that appeared this update (full Report IR finding objects).
    findings_added: Tuple[dict, ...]
    #: Fingerprints of findings that disappeared.
    findings_removed: Tuple[str, ...]
    #: Total live findings after the update.
    findings_total: int
    #: Serve-flavoured Report IR document for this delta.
    report: dict = field(repr=False, default_factory=dict)


@dataclass
class _FileState:
    source: str
    program: A.Program
    fingerprints: Dict[str, str]
    #: chunk key -> FuncDef of the current program (None: chunking disabled
    #: for this file; every update full-parses).
    chunks: Optional[Dict[Tuple[str, int], A.FuncDef]]
    #: function -> caller names (reverse call-graph edges, current version).
    callers: Dict[str, Tuple[str, ...]]
    summaries: Optional[Dict[str, FunctionSummary]]
    #: finding fingerprint -> finding (insertion-ordered as reported).
    findings: Dict[str, dict]
    #: The full analyze-flavoured Report IR of the current version.
    report: dict
    seq: int = 1


class AnalysisSession:
    """A long-lived, incremental front end over one analysis engine.

    ``update_source``/``update`` are the whole API: feed the current text of
    a file, get back a :class:`SessionUpdate` describing exactly what was
    re-analyzed and which findings changed.  See the module docstring for
    the invalidation strategy."""

    def __init__(self, jobs: int = 1, precision: str = "paper",
                 interprocedural: bool = True,
                 entry_context: Word = EMPTY) -> None:
        self.engine = AnalysisEngine(jobs=jobs)
        self.precision = precision
        self.interprocedural = interprocedural
        self.entry_context = entry_context
        self.updates = 0
        self.no_op_updates = 0
        self._files: Dict[str, _FileState] = {}
        #: id(func) -> func: functions already semantically checked (valid
        #: while the program's function-name set is unchanged — the checks
        #: are per-function except for call resolution against that set).
        self._checked: Dict[int, A.FuncDef] = {}

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False

    def stats(self) -> Dict[str, object]:
        return {
            "engine": self.engine.cache_info(),
            "session": {
                "files": len(self._files),
                "updates": self.updates,
                "no_op_updates": self.no_op_updates,
            },
        }

    # -- parsing ---------------------------------------------------------------

    def _full_parse(self, path: str, source: str) -> A.Program:
        try:
            program = parse_program(source, path)
        except Exception as exc:
            raise SessionError(path, [str(exc)]) from exc
        self._check(path, program, prev=None)
        return program

    @staticmethod
    def _signatures(program: A.Program) -> Dict[str, tuple]:
        return {f.name: (f.ret_type, len(f.params)) for f in program.funcs}

    def _check(self, path: str, program: A.Program,
               prev: Optional[_FileState]) -> None:
        """Semantic checks, incremental where sound: a reused ``FuncDef``
        was already checked, and per-function checks depend on the other
        functions only through their *signatures* (name, return type,
        arity — call resolution and arity checks) — so while the signature
        map is unchanged, only re-parsed functions are re-checked.  Any
        signature change (rename, add/remove, arity or return-type edit)
        re-checks the whole program: callers of the edited function may be
        unchanged text yet newly wrong."""
        prev_sigs = (self._signatures(prev.program)
                     if prev is not None else None)
        sigs = self._signatures(program)
        unchecked = [f for f in program.funcs
                     if self._checked.get(id(f)) is not f]
        if (prev_sigs == sigs and len(sigs) == len(program.funcs)):
            checker = Checker(program)
            for func in unchecked:
                checker._check_func(func)
            issues = checker.issues
        else:
            issues = check_program(program)
            unchecked = list(program.funcs)
        errors = [str(i) for i in issues if i.severity == "error"]
        if errors:
            raise SessionError(path, errors)
        for func in unchecked:
            self._checked[id(func)] = func
        while len(self._checked) > 65536:
            self._checked.pop(next(iter(self._checked)))

    def _parse_incremental(
        self, path: str, source: str, prev: Optional[_FileState]
    ) -> Tuple[A.Program, Optional[Dict[Tuple[str, int], A.FuncDef]], bool]:
        """Parse ``source``, reusing the previous version's ``FuncDef``
        objects for unchanged chunks.  Returns (program, chunk map or None,
        full_parse flag)."""
        chunks = split_chunks(source)
        if chunks is None:
            return self._full_parse(path, source), None, True
        reused_any = False
        funcs: List[A.FuncDef] = []
        chunk_map: Dict[Tuple[str, int], A.FuncDef] = {}
        prev_chunks = prev.chunks if prev is not None else None
        for chunk in chunks:
            key = chunk.key
            func = prev_chunks.get(key) if prev_chunks else None
            if func is not None:
                reused_any = True
            else:
                func = _parse_chunk(chunk, path)
                if func is None:
                    # Oddly shaped chunk: full parse decides (and reports
                    # real errors with real positions).
                    program = self._full_parse(path, source)
                    return program, None, True
            funcs.append(func)
            chunk_map[key] = func
        program = A.Program(funcs=funcs, filename=path,
                            line=funcs[0].line if funcs else 1)
        self._check(path, program, prev)
        return program, chunk_map, not reused_any and prev is not None

    # -- updates ---------------------------------------------------------------

    def update(self, path: str) -> SessionUpdate:
        """Re-read ``path`` from disk and fold it into the session."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise SessionError(path, [str(exc)]) from exc
        return self.update_source(path, source)

    def _no_op_update(self, path: str, prev: _FileState,
                      source: str, full_parse: bool) -> SessionUpdate:
        prev.source = source
        prev.seq += 1
        self.no_op_updates += 1
        delta = SessionUpdate(
            path=path, seq=prev.seq, no_op=True, full_parse=full_parse,
            changed=(), removed=(), dependents=(), reanalyzed=(),
            invalidated_entries=0, findings_added=(), findings_removed=(),
            findings_total=len(prev.findings),
        )
        delta.report = self._delta_report(path, source, delta, prev)
        return delta

    def update_source(self, path: str, source: str) -> SessionUpdate:
        """Fold the current text of ``path`` into the session and return
        what changed.  Raises :class:`SessionError` (state untouched) when
        the text does not parse or check."""
        self.updates += 1
        prev = self._files.get(path)
        if prev is not None and prev.source == source:
            return self._no_op_update(path, prev, source, full_parse=False)

        program, chunk_map, full_parse = self._parse_incremental(path, source,
                                                                 prev)
        # Unchanged chunks reuse the previous FuncDef objects, so the
        # engine's id-keyed identity memo skips re-hashing them.
        fingerprints = {f.name: self.engine._fingerprint_for(f)
                        for f in program.funcs}
        prev_fps = prev.fingerprints if prev is not None else {}
        changed = tuple(n for n in fingerprints
                        if fingerprints[n] != prev_fps.get(n))
        removed = tuple(n for n in prev_fps if n not in fingerprints)

        if prev is not None and not changed and not removed:
            # Same structure on every function (whitespace / comment edit):
            # nothing to invalidate, the previous analysis stands.  Keep the
            # OLD program object — its artifacts are the cached ones.
            prev.chunks = (
                {k: prev.program.func(v.name)
                 for k, v in chunk_map.items()} if chunk_map is not None
                else None)
            return self._no_op_update(path, prev, source, full_parse)

        # Dependency closure over reverse call edges — both versions' edges,
        # so callers of deleted functions and new callers both count.
        dirty: Set[str] = set(changed) | set(removed)
        index = index_program(program, memo=self.engine._func_index)
        graph = build_call_graph(program, index)
        callers: Dict[str, Tuple[str, ...]] = {
            name: tuple(e.caller for e in graph.callers[name])
            for name in graph.order
        }
        merged_callers: Dict[str, Set[str]] = {}
        for source_map in (prev.callers if prev is not None else {}, callers):
            for name, who in source_map.items():
                merged_callers.setdefault(name, set()).update(who)
        dependents: List[str] = []
        work = list(dirty)
        seen = set(dirty)
        while work:
            name = work.pop()
            for caller in sorted(merged_callers.get(name, ())):
                if caller not in seen:
                    seen.add(caller)
                    dependents.append(caller)
                    work.append(caller)
        dependents_t = tuple(d for d in dependents if d in fingerprints)

        # Evict the edited functions' artifacts from the store.
        doomed = {prev_fps[n] for n in dirty if n in prev_fps}
        invalidated = self.engine.invalidate_fingerprints(doomed)

        plan = None
        initial_words: Dict[str, Word] = {}
        if self.interprocedural:
            contexts = propagate_contexts(program, graph,
                                          entry_context=self.entry_context)
            summaries = collective_summaries(
                program, graph, index,
                prev=prev.summaries if prev is not None else None,
                dirty=set(changed))
            plan = build_plan(program, index,
                              entry_context=self.entry_context,
                              graph=graph, contexts=contexts,
                              summaries=summaries)
        else:
            summaries = None
            if self.entry_context:
                # Mirror the CLI's --no-interprocedural semantics: the
                # initial context applies to every function directly.
                initial_words = {f.name: self.entry_context
                                 for f in program.funcs}

        analysis = self.engine.analyze(
            program, initial_words=initial_words, precision=self.precision,
            interprocedural=self.interprocedural,
            entry_context=self.entry_context, plan=plan)
        record = self.engine.last
        reanalyzed = record.missed_functions
        dep_reanalyzed = [n for n in reanalyzed if n not in dirty]
        self.engine.stats.dependency_invalidations += len(dep_reanalyzed)

        report = report_from_analysis(analysis, source_path=path,
                                      source_text=source)
        new_findings = {f["fingerprint"]: f for f in report["findings"]}
        old_findings = prev.findings if prev is not None else {}
        added = tuple(f for fp, f in new_findings.items()
                      if fp not in old_findings)
        gone = tuple(fp for fp in old_findings if fp not in new_findings)

        seq = prev.seq + 1 if prev is not None else 1
        self._files[path] = _FileState(
            source=source, program=program, fingerprints=fingerprints,
            chunks=chunk_map, callers=callers, summaries=summaries,
            findings=new_findings, report=report, seq=seq,
        )
        delta = SessionUpdate(
            path=path, seq=seq, no_op=False, full_parse=full_parse,
            changed=changed, removed=removed, dependents=dependents_t,
            reanalyzed=reanalyzed, invalidated_entries=invalidated,
            findings_added=added, findings_removed=gone,
            findings_total=len(new_findings),
        )
        delta.report = self._delta_report(path, source, delta,
                                          self._files[path])
        return delta

    def report_for(self, path: str) -> Optional[dict]:
        """The full analyze-flavoured Report IR of a file's current
        version (None when the file was never analyzed)."""
        state = self._files.get(path)
        return state.report if state is not None else None

    def _delta_report(self, path: str, source: str, delta: SessionUpdate,
                      state: _FileState) -> dict:
        """The serve-flavoured Report IR: only the findings that appeared,
        plus the incremental bookkeeping every consumer of the stream needs
        to reconstruct the full picture."""
        return build_report(
            "serve",
            source=source_stamp(path, source),
            findings=list(delta.findings_added),
            verdict="findings" if delta.findings_total else "clean",
            summary={
                "update": delta.seq,
                "incremental": {
                    "no_op": delta.no_op,
                    "full_parse": delta.full_parse,
                    "changed": list(delta.changed),
                    "removed": list(delta.removed),
                    "dependents": list(delta.dependents),
                    "reanalyzed": list(delta.reanalyzed),
                    "invalidated_entries": delta.invalidated_entries,
                    "findings_added": len(delta.findings_added),
                    "findings_removed": list(delta.findings_removed),
                    "findings_total": delta.findings_total,
                },
            },
        )


# ---------------------------------------------------------------------------
# serve / watch front ends
# ---------------------------------------------------------------------------


def _error_report(path: Optional[str], messages: List[str],
                  tool: str = "serve") -> dict:
    return build_report(tool, source=source_stamp(path, None), findings=[],
                        verdict="error",
                        summary={"errors": list(messages)})


def run_serve(session: AnalysisSession, stdin=None, stdout=None) -> int:
    """The ``parcoach serve`` loop: a line protocol on stdin, one Report IR
    JSON document per line on stdout.

    Commands::

        analyze PATH   (re)analyze PATH incrementally, emit the delta report
        stats          emit engine + session counters
        quit           exit 0 (EOF does the same)
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout

    def emit(doc: dict) -> None:
        stdout.write(render_json(doc))
        stdout.flush()

    for raw in stdin:
        line = raw.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        command = parts[0]
        if command == "quit":
            break
        if command == "stats":
            emit(build_report("serve", source=None, findings=[],
                              verdict="clean",
                              summary={"stats": session.stats()}))
            continue
        if command == "analyze":
            if len(parts) != 2:
                emit(_error_report(None, ["usage: analyze PATH"]))
                continue
            path = parts[1]
            try:
                delta = session.update(path)
            except SessionError as exc:
                emit(_error_report(exc.path, exc.messages))
                continue
            emit(delta.report)
            continue
        emit(_error_report(None, [f"unknown command {command!r} "
                                  f"(expected analyze/stats/quit)"]))
    return 0


def run_watch(session: AnalysisSession, path: str, interval: float = 0.5,
              max_updates: int = 0, stdout=None,
              clock=time.monotonic, sleep=time.sleep) -> int:
    """The ``parcoach watch`` loop: analyze ``path`` now, then poll it and
    re-emit a delta report whenever its content changes.  ``max_updates``
    bounds the number of emitted updates (0 = until interrupted)."""
    stdout = stdout if stdout is not None else sys.stdout

    def emit(doc: dict) -> None:
        stdout.write(render_json(doc))
        stdout.flush()

    emitted = 0
    last_reported_error: Optional[str] = None
    while True:
        try:
            delta = session.update(path)
        except SessionError as exc:
            message = "\n".join(exc.messages)
            if message != last_reported_error:
                emit(_error_report(exc.path, exc.messages, tool="watch"))
                emitted += 1
                last_reported_error = message
        else:
            last_reported_error = None
            if delta.seq == 1 or not delta.no_op:
                report = dict(delta.report)
                report["tool"] = "watch"
                emit(report)
                emitted += 1
        if max_updates and emitted >= max_updates:
            return 0
        try:
            sleep(interval)
        except KeyboardInterrupt:
            return 0


# Re-exported for the CLI and tests.
__all__ = [
    "AnalysisSession",
    "SessionError",
    "SessionUpdate",
    "SourceChunk",
    "run_serve",
    "run_watch",
    "split_chunks",
    "REPORT_VERSION",
]
