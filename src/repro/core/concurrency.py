"""Phase 2 — detection of *concurrent monothreaded regions*.

Two collectives, each in a monothreaded region, may still execute
simultaneously when the regions themselves can run in parallel: the paper's
criterion is ``pw[n1] = w·S_j·u``, ``pw[n2] = w·S_k·v`` with ``j ≠ k`` and
the same number of ``B`` tokens (no barrier orders the two regions; this is
exactly what ``single nowait`` or two ``section``s of one ``sections``
construct produce).

Flagged sites form the set **S**; the region-begin construct uids form
**Scc** — instrumented with runtime concurrency counters.  Sites in one
connected component of the "may-run-concurrently" relation share a *check
group*: at run time a per-process counter is incremented on entry of any
site of the group and an overlap (counter ≥ 2) aborts the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..minilang import ast_nodes as A
from ..parallelism import (
    S,
    WordInfo,
    common_prefix,
    count_barriers,
    format_word,
    is_monothreaded,
)
from .diagnostics import Diagnostic, ErrorCode, SourceRef
from .sites import CollectiveSite


@dataclass
class ConcurrencyResult:
    """Output of phase 2 for one function."""

    #: Pairs of site uids that may execute concurrently.
    concurrent_pairs: List[Tuple[int, int]] = field(default_factory=list)
    #: Region-begin construct uids (the paper's Scc).
    scc_uids: Set[int] = field(default_factory=set)
    #: Site uid -> check-group id (connected components of the relation).
    groups: Dict[int, int] = field(default_factory=dict)
    diagnostics: List[Diagnostic] = field(default_factory=list)


def words_concurrent(w1, w2) -> bool:
    """The paper's concurrency criterion on two parallelism words."""
    if w1 == w2:
        return False
    prefix = common_prefix(w1, w2)
    if len(prefix) >= len(w1) or len(prefix) >= len(w2):
        return False  # one word prefixes the other: same thread, sequential
    t1, t2 = w1[len(prefix)], w2[len(prefix)]
    if not (isinstance(t1, S) and isinstance(t2, S)):
        return False
    if t1.region_id == t2.region_id:
        return False
    return count_barriers(w1) == count_barriers(w2)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[int, int] = {}

    def find(self, x: int) -> int:
        self.parent.setdefault(x, x)
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def analyze_concurrency(func: A.FuncDef, info: WordInfo,
                        sites: List[CollectiveSite]) -> ConcurrencyResult:
    result = ConcurrencyResult()
    mono_sites = [s for s in sites if is_monothreaded(info.words[s.uid])]
    uf = _UnionFind()

    for i in range(len(mono_sites)):
        for j in range(i + 1, len(mono_sites)):
            s1, s2 = mono_sites[i], mono_sites[j]
            w1, w2 = info.words[s1.uid], info.words[s2.uid]
            if not words_concurrent(w1, w2):
                continue
            result.concurrent_pairs.append((s1.uid, s2.uid))
            uf.union(s1.uid, s2.uid)
            prefix_len = len(common_prefix(w1, w2))
            for word in (w1, w2):
                token = word[prefix_len]
                assert isinstance(token, S)
                result.scc_uids.add(token.region_id)
            result.diagnostics.append(Diagnostic(
                code=ErrorCode.COLLECTIVE_CONCURRENT,
                function=func.name,
                message=(
                    f"{s1.name} and {s2.name} are in concurrent monothreaded "
                    f"regions and may execute simultaneously"
                ),
                collectives=(SourceRef(s1.name, s1.line), SourceRef(s2.name, s2.line)),
                context=(
                    f"words {format_word(w1)} / {format_word(w2)}"
                ),
            ))

    for uid in uf.parent:
        result.groups[uid] = uf.find(uid)
    return result
