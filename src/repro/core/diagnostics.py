"""Diagnostic records emitted by the static analyses.

The paper (§4): "our analysis issues warnings for potential MPI collective
errors within an MPI process and between MPI processes. The type of each
potential error is specified (collective mismatch, concurrent collective
calls, ...) with the names and lines in the source code of MPI collective
calls involved."  :class:`Diagnostic` captures exactly that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class ErrorCode(enum.Enum):
    COLLECTIVE_MULTITHREADED = "collective-multithreaded"
    COLLECTIVE_CONCURRENT = "concurrent-collective-calls"
    COLLECTIVE_MISMATCH = "collective-mismatch"
    THREAD_LEVEL = "insufficient-thread-level"
    TASK_CONTEXT = "collective-in-task"


@dataclass(frozen=True)
class SourceRef:
    """A (collective name, source line) pair as reported to the user."""

    name: str
    line: int

    def __str__(self) -> str:
        return f"{self.name} (line {self.line})"


@dataclass
class Diagnostic:
    code: ErrorCode
    function: str
    message: str
    collectives: Tuple[SourceRef, ...] = ()
    conditionals: Tuple[int, ...] = ()  # source lines of guilty control flow
    severity: str = "warning"
    #: Parallelism word(s) involved, pre-formatted (context for the user).
    context: str = ""
    #: Witness call chain from an entry function to the offending function
    #: (attached by the interprocedural layer when the calling context is
    #: what makes the finding possible).
    call_path: Tuple[str, ...] = ()

    def render(self) -> str:
        parts = [f"[{self.code.value}] {self.function}: {self.message}"]
        if self.collectives:
            parts.append("  collectives: " + ", ".join(str(c) for c in self.collectives))
        if self.conditionals:
            lines = ", ".join(str(line) for line in sorted(set(self.conditionals)))
            parts.append(f"  control-flow divergence at line(s): {lines}")
        if self.context:
            parts.append(f"  context: {self.context}")
        if self.call_path:
            parts.append("  call path: " + " → ".join(self.call_path))
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()


@dataclass
class DiagnosticBag:
    """Accumulates diagnostics across functions and phases."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: List[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def by_code(self, code: ErrorCode) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code is code]

    def count(self, code: Optional[ErrorCode] = None) -> int:
        if code is None:
            return len(self.diagnostics)
        return len(self.by_code(code))

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def render(self) -> str:
        if not self.diagnostics:
            return "no warnings\n"
        return "\n".join(d.render() for d in self.diagnostics) + "\n"
