"""Verification code generation (the paper's §3).

Transforms the AST of every function the driver planned for instrumentation:

* before each MPI collective call: ``PARCOACH_CC(color, name, line)`` —
  the CC check (Allreduce of the collective color; min ≠ max aborts the run
  *before* the divergent collective executes);
* before each ``return`` and at the end of the function body:
  ``PARCOACH_CC(0, "<return>", line)`` — "no more collectives here";
* around collective sites flagged by phases 1/2:
  ``PARCOACH_ENTER(group, name)`` / ``PARCOACH_EXIT(group)`` — a per-process
  concurrency counter; two threads inside the same group simultaneously
  abort the run (multithreaded execution of a collective, or two concurrent
  monothreaded regions).

Deviation from the paper, documented in DESIGN.md: the paper wraps CC calls
in ``#pragma omp single`` when several threads may reach them.  minilang's
semantic checker forbids ``return`` inside OpenMP regions (structured-block
rule), so return-CCs are always monothreaded here; for collective sites in
multithreaded contexts the ENTER counter aborts before a second thread could
issue a duplicate CC, which preserves the CC pairing invariant without the
``single`` (and avoids the team-deadlock a barrier-carrying ``single`` would
cause on thread-divergent paths).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List

from ..minilang import ast_nodes as A
from ..mpi.collectives import RETURN_COLOR, collective_color
from .driver import FunctionAnalysis, ProgramAnalysis
from .sites import CollectiveSite

CC_FUNC = "PARCOACH_CC"
ENTER_FUNC = "PARCOACH_ENTER"
EXIT_FUNC = "PARCOACH_EXIT"


@dataclass
class InstrumentationReport:
    """What the code generator inserted (drives the ablation benches)."""

    cc_calls: int = 0
    return_ccs: int = 0
    enter_checks: int = 0
    per_function: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.cc_calls + self.return_ccs + self.enter_checks


def _cc_stmt(color: int, name: str, line: int) -> A.ExprStmt:
    return A.ExprStmt(expr=A.Call(
        name=CC_FUNC,
        args=[A.IntLit(value=color), A.StringLit(value=name), A.IntLit(value=line)],
        line=line,
    ), line=line)


def _enter_stmt(group: int, what: str, line: int) -> A.ExprStmt:
    return A.ExprStmt(expr=A.Call(
        name=ENTER_FUNC,
        args=[A.IntLit(value=group), A.StringLit(value=what)],
        line=line,
    ), line=line)


def _exit_stmt(group: int, line: int) -> A.ExprStmt:
    return A.ExprStmt(expr=A.Call(
        name=EXIT_FUNC, args=[A.IntLit(value=group)], line=line,
    ), line=line)


class _FunctionInstrumenter:
    def __init__(self, fa: FunctionAnalysis, report: InstrumentationReport) -> None:
        self.fa = fa
        self.report = report
        self.sites_by_uid: Dict[int, CollectiveSite] = {s.uid: s for s in fa.sites}
        self.count = 0

    def apply(self, func: A.FuncDef) -> None:
        self._transform_block(func.body)
        last = func.body.stmts[-1] if func.body.stmts else None
        if not isinstance(last, A.Return):
            line = last.line if last is not None else func.line
            func.body.stmts.append(_cc_stmt(RETURN_COLOR, "<return>", line))
            self.report.return_ccs += 1
            self.count += 1
        # Structural mutation marker: the AnalysisEngine's identity fast path
        # checks this instead of re-walking the tree, so an in-place
        # instrumented function is never served stale cached artifacts.
        func.structure_version = getattr(func, "structure_version", 0) + 1

    # -- recursion -------------------------------------------------------------

    def _transform_block(self, block: A.Block) -> None:
        new: List[A.Stmt] = []
        for stmt in block.stmts:
            self._transform_stmt(stmt, new)
        block.stmts = new

    def _transform_stmt(self, stmt: A.Stmt, out: List[A.Stmt]) -> None:
        if isinstance(stmt, A.Return):
            out.append(_cc_stmt(RETURN_COLOR, "<return>", stmt.line))
            self.report.return_ccs += 1
            self.count += 1
            out.append(stmt)
            return

        if stmt.uid in self.fa.cc_sites:
            site = self.sites_by_uid[stmt.uid]
            groups = self.fa.check_groups.get(stmt.uid, [])
            for g in groups:
                out.append(_enter_stmt(g, site.name, stmt.line))
                self.report.enter_checks += 1
                self.count += 1
            if site.kind == "collective":
                out.append(_cc_stmt(collective_color(site.name), site.name, site.line))
                self.report.cc_calls += 1
                self.count += 1
            out.append(stmt)
            for g in reversed(groups):
                out.append(_exit_stmt(g, stmt.line))
            return

        # Recurse into compound statements.
        if isinstance(stmt, A.Block):
            self._transform_block(stmt)
        elif isinstance(stmt, A.If):
            self._transform_block(stmt.then_body)
            if stmt.else_body is not None:
                self._transform_block(stmt.else_body)
        elif isinstance(stmt, A.While):
            self._transform_block(stmt.body)
        elif isinstance(stmt, A.For):
            self._transform_block(stmt.body)
        elif isinstance(stmt, A.OmpParallel):
            self._transform_block(stmt.body)
        elif isinstance(stmt, A.OmpSingle):
            self._transform_block(stmt.body)
        elif isinstance(stmt, A.OmpMaster):
            self._transform_block(stmt.body)
        elif isinstance(stmt, A.OmpCritical):
            self._transform_block(stmt.body)
        elif isinstance(stmt, A.OmpTask):
            self._transform_block(stmt.body)
        elif isinstance(stmt, A.OmpFor):
            self._transform_block(stmt.loop.body)
        elif isinstance(stmt, A.OmpSections):
            for section in stmt.sections:
                self._transform_block(section)
        out.append(stmt)


def instrument_program(analysis: ProgramAnalysis,
                       in_place: bool = False) -> tuple[A.Program, InstrumentationReport]:
    """Produce the instrumented version of the analysed program.

    By default the original AST is left untouched (``deepcopy`` keeps node
    uids stable, so the analysis maps keyed by uid apply to the copy
    directly).  ``in_place=True`` mutates the analysed AST instead — what a
    compiler pass does, and what the compile-time benchmark measures.
    """
    program = analysis.program if in_place else copy.deepcopy(analysis.program)
    report = InstrumentationReport()
    for func in program.funcs:
        fa = analysis.functions.get(func.name)
        if fa is None or not fa.instrumented:
            continue
        inst = _FunctionInstrumenter(fa, report)
        inst.apply(func)
        report.per_function[func.name] = inst.count
    return program, report
