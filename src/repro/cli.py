"""``parcoach`` command-line interface.

Subcommands::

    parcoach analyze FILE [--precision paper|counting] [--initial-context W]
                          [--jobs N] [--no-interprocedural]
        run the static analysis, print the warning report (exit 1 if
        warnings).  Interprocedural context propagation is on by default:
        calling-context parallelism words flow over the call graph from the
        entry functions (seeded by ``--initial-context``), each function is
        analyzed once per distinct context, and diagnostics caused by a
        non-empty context carry the witness call chain
        (``main → worker → helper``).  ``--no-interprocedural`` restores the
        paper's pure per-function analysis, where ``--initial-context``
        applies to every function directly.
    parcoach callgraph FILE [--dot] [--initial-context W]
        print the call graph: per function the calling-context words, the
        collective summary (always/conditionally/never executes each
        collective), recursion markers and call sites (expression-level
        calls marked ``expr``); ``--dot`` emits Graphviz instead
    parcoach batch FILE [FILE ...] [--precision P] [--jobs N] [--repeat R]
                        [--no-cache] [--stats] [--no-interprocedural]
        analyze many files through one memoized AnalysisEngine (with a
        persistent worker pool when --jobs > 1); one summary line per file,
        cache statistics at the end (exit 1 if any warnings)
    parcoach instrument FILE [-o OUT]
        emit the instrumented source
    parcoach run FILE [-np N] [-nt T] [--instrument] [--thread-level L]
        execute under the simulator, print outputs and the verdict
    parcoach explore FILE [--strategy dfs|dpor|random] [--preemptions K]
                          [--runs N] [--jobs N] [--budget SECS]
                          [--replay TRACE] [-np LIST] [-nt LIST]
                          [--thread-level LIST] [--instrument] [--seed S]
                          [--save-trace PATH] [--no-minimize]
        deterministic schedule exploration: run the program under many
        thread interleavings per (nprocs, num_threads, thread_level)
        configuration — exhaustive DFS with a preemption bound, dynamic
        partial-order reduction (``dpor``: sleep sets + race reversal +
        state fingerprints, same verdicts in far fewer schedules; see
        ``docs/explore.md``), or seeded-random sampling — and summarize
        the verdict of every interleaving ("mismatch in 3/120
        schedules").  The first failing schedule is delta-debugged and
        saved as a compact JSON trace; ``--replay TRACE`` re-executes a
        saved trace deterministically.  ``--jobs N`` executes the dpor
        frontier on N worker processes with byte-identical output;
        ``--budget SECS`` stops cleanly with a partial summary.
        ``-np``/``-nt``/``--thread-level`` accept comma-separated lists and
        are cross-producted.  Exit 1 when any schedule fails.
    parcoach fuzz [--seeds N] [--seed S] [--budget SECS] [--jobs N]
                  [--shrink] [--corpus DIR] [--explore-runs N] [-v]
                  [--seed-timeout SECS] [--checkpoint PATH] [--resume]
                  [--coverage]
        differential fuzzing: generate N seeded random minilang programs
        and cross-check every verdict source (intra- + interprocedural
        static analysis vs. deterministic raw / instrumented / explored
        dynamic runs).  Each program is classified *agree*, *static-miss*
        (dynamic error without a static warning — a soundness bug),
        *static-overapprox* (warning, all explored schedules clean —
        allowed, tracked) or *crash* (internal error).  ``--shrink``
        ddmin-reduces each disagreement; with ``--corpus DIR`` the reduced
        ``.mini``/``.json`` pair is persisted for regression replay.
        ``--coverage`` turns the campaign feedback-driven: per-seed
        coverage signatures schedule an AFL-style mutation queue and
        findings dedupe by fingerprint (see docs/fuzzing.md).
        Every finding reproduces alone via ``fuzz --seeds 1 --seed S``.
    parcoach serve [--jobs N] [--precision P] [--no-interprocedural]
                   [--initial-context W] [--deadline-ms MS]
        persistent incremental analysis session: a line protocol on stdin
        (``analyze PATH`` / ``stats`` / ``ping`` / ``quit``, optionally
        prefixed ``@ID`` to echo a request id), one Report IR JSON
        document per line on stdout.  Edits are diffed by per-function
        structural fingerprint; only changed functions (plus their
        call-graph dependents whose summaries/contexts moved) re-analyze,
        and only changed findings are re-emitted.  The loop is
        crash-isolated and self-healing (``docs/resilience.md``);
        ``--deadline-ms`` arms a per-request budget with graceful
        degradation on expiry.
    parcoach watch FILE [--interval SECS] [--max-updates N]
        analyze FILE now, then poll it and re-emit a delta report on every
        content change
    parcoach project analyze DIR [--file PATH ...] [--json] [--no-store]
        one-shot whole-project analysis: the manifest (``parcoach.toml``,
        an explicit ``--file`` list, or a recursive ``*.mc``/``*.mini``
        scan) selects the sources, every file merges into one program, and
        the interprocedural analysis crosses file boundaries — findings
        are file-qualified and witness call chains may span files (a bug
        invisible to per-file ``analyze`` runs).  Warm artifacts are
        shared with concurrent sessions via the sharded store under
        ``.parcoach/store``.
    parcoach project serve DIR [--deadline-ms MS] [--no-store]
        persistent multi-file incremental session: ``open PATH`` /
        ``edit PATH`` / ``close PATH`` / ``analyze`` / ``stats`` /
        ``ping`` / ``quit`` on stdin, one Report IR JSON line per
        response.  Cross-file edits re-analyze only the edited functions
        plus their cross-file dependent closure; whole-chunk line moves
        take the line-offset patch path (zero engine misses).  See
        ``docs/project-protocol.md``.
    parcoach project gc DIR [--keep N]
        prune stale artifact-store generations: the store writes into a
        per-version directory (``g<format>-<version>``), so upgrades
        abandon the previous generation's entries — ``gc`` reclaims them,
        keeping the current generation (plus the ``N`` most recent stale
        ones with ``--keep``).
    parcoach validate-report [FILE ...]
        validate Report IR documents (``-``/stdin supported; exit 2 on any
        schema or fingerprint violation)
    parcoach cfg FILE FUNC [-o OUT.dot]
        dump one function's CFG as Graphviz DOT

Machine-readable output: ``analyze``, ``callgraph``, ``explore`` and
``fuzz`` accept ``--json`` and then emit the unified, versioned Report IR
(schema ``parcoach-report`` v1, see ``docs/report-schema.md``) instead of
their text output — byte-identical across re-parses of identical source,
with a stable fingerprint per finding.  Exit codes are unchanged.

Exit-code contract (uniform across subcommands)::

    0   clean / verified / successful emission
    1   findings: static warnings, a failing run, failing schedules,
        fuzzer disagreements (static-miss)
    2   internal or usage errors: unparseable or semantically invalid
        input, unknown function, replay divergence, fuzzer crash class

Performance knobs: ``--jobs N`` fans independent per-function phases out to
``N`` worker processes (identical output, useful on many-function programs);
``batch`` keeps a per-function analysis cache across files and repeats, so
structurally identical functions are analyzed once (see
``benchmarks/bench_scale.py`` for the measured effect;
``benchmarks/bench_explore.py`` tracks schedules/sec for ``explore``,
``benchmarks/bench_fuzz.py`` programs/sec for ``fuzz``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .cfg import to_dot
from .core import AnalysisEngine, analyze_program, instrument_program, render_report
from .core.callgraph import callgraph_to_dot
from .core.driver import build_plan
from .core.sites import index_program
from .minilang.parser import parse_program
from .minilang.pretty import pretty
from .minilang.semantics import check_program
from .mpi.thread_levels import ThreadLevel
from .parallelism import EMPTY, format_word, parse_word
from .runtime import run_program
from .runtime.errors import ValidationError


def _load(path: str, want_source: bool = False):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = parse_program(source, path)
    issues = check_program(program)
    errors = [i for i in issues if i.severity == "error"]
    if errors:
        for issue in errors:
            print(f"{path}:{issue}", file=sys.stderr)
        raise SystemExit(2)
    for issue in issues:
        if issue.severity == "warning":
            print(f"{path}:{issue}", file=sys.stderr)
    return (program, source) if want_source else program


def _initial_context(args, program):
    """Map --initial-context onto the two analysis modes: the entry-seed
    word interprocedurally, a per-function word intraprocedurally."""
    word = parse_word(args.initial_context) if args.initial_context else EMPTY
    if args.interprocedural:
        return {}, word
    if args.initial_context:
        return {f.name: word for f in program.funcs}, EMPTY
    return {}, EMPTY


def _cmd_analyze(args) -> int:
    program, source = _load(args.file, want_source=True)
    initial, entry_context = _initial_context(args, program)
    kwargs = dict(initial_words=initial, precision=args.precision,
                  interprocedural=args.interprocedural,
                  entry_context=entry_context)
    if args.jobs > 1:
        with AnalysisEngine(jobs=args.jobs, cache=False) as engine:
            analysis = engine.analyze(program, **kwargs)
    else:
        analysis = analyze_program(program, **kwargs)
    if args.json:
        from .core.report import render_json, report_from_analysis
        print(render_json(report_from_analysis(
            analysis, source_path=args.file, source_text=source)), end="")
    else:
        print(render_report(analysis, verbose=args.verbose), end="")
    return 1 if len(analysis.diagnostics) else 0


def _cmd_callgraph(args) -> int:
    program, source = _load(args.file, want_source=True)
    entry_context = (parse_word(args.initial_context)
                     if args.initial_context else EMPTY)
    plan = build_plan(program, index_program(program),
                      entry_context=entry_context)
    graph, contexts, summaries = plan.graph, plan.contexts, plan.summaries
    if args.json:
        from .core.report import render_json, report_from_callgraph
        text = render_json(report_from_callgraph(
            graph, contexts, summaries, source_path=args.file,
            source_text=source))
    elif args.dot:
        text = callgraph_to_dot(graph, contexts, summaries)
    else:
        lines = [f"call graph of {args.file}: {len(graph.order)} functions, "
                 f"{graph.n_edges} call edges; entries: {', '.join(graph.entries)}"]
        for name in graph.order:
            marks = " [recursive]" if name in graph.recursive else ""
            if name in contexts.saturated:
                marks += " [contexts saturated]"
            ctx = " | ".join(format_word(w) for w in contexts.contexts[name])
            lines.append(f"  {name}{marks}  contexts: {ctx}")
            lines.append(f"    collectives: {summaries[name].describe()}")
            for edge in graph.edges[name]:
                kind = ", expr" if edge.expression else ""
                lines.append(f"    calls {edge.callee} (line {edge.line}{kind})")
        text = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_batch(args) -> int:
    any_warnings = False
    with AnalysisEngine(jobs=args.jobs, cache=not args.no_cache) as engine:
        for _ in range(max(1, args.repeat)):
            for path in args.files:
                program = _load(path)
                analysis = engine.analyze(
                    program, precision=args.precision,
                    interprocedural=args.interprocedural)
                n = len(analysis.diagnostics)
                any_warnings = any_warnings or n > 0
                flagged = len(analysis.flagged_functions)
                print(f"{path}: {len(analysis.functions)} functions, "
                      f"{flagged} flagged, {n} warnings"
                      + ("" if analysis.verified else " [NOT VERIFIED]"))
        if args.stats:
            info = engine.cache_info()
            print(f"engine: {info['programs']} programs, {info['functions']} "
                  f"function analyses, {info['hits']} cache hits "
                  f"({info['lazy_hits']} lazy, {info['remaps']} remapped, "
                  f"{info['deferred_remaps']} deferred), "
                  f"{info['misses']} misses, hit rate {info['hit_rate']:.1%}",
                  file=sys.stderr)
            print(f"engine: {info['evictions']} evictions, "
                  f"{info['dependency_invalidations']} invalidated by "
                  f"dependency, {info['remap_fallbacks']} remap fallbacks",
                  file=sys.stderr)
            print(f"engine: {info['pool_failures']} pool failures, "
                  f"{info['pool_respawns']} pool respawns, "
                  f"{info['degraded_serial']} degraded to serial",
                  file=sys.stderr)
    return 1 if any_warnings else 0


def _cmd_instrument(args) -> int:
    program = _load(args.file)
    analysis = analyze_program(program, precision=args.precision,
                               instrument_all=args.all)
    instrumented, report = instrument_program(analysis)
    text = pretty(instrumented)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({report.total} checks inserted)",
              file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_run(args) -> int:
    program = _load(args.file)
    group_kinds = None
    if args.instrument:
        analysis = analyze_program(program)
        program, _ = instrument_program(analysis)
        group_kinds = analysis.group_kinds
    level = ThreadLevel[args.thread_level.upper()]
    result = run_program(program, nprocs=args.np, num_threads=args.nt,
                         thread_level=level, group_kinds=group_kinds,
                         timeout=args.timeout)
    for rank in sorted(result.outputs):
        for line in result.outputs[rank]:
            print(f"[rank {rank}] {line}")
    if result.error is not None:
        print(f"verdict: {result.verdict} (detected by {result.detected_by})",
              file=sys.stderr)
        print(f"  {result.error}", file=sys.stderr)
        # A bare ValidationError is the interpreter's internal-error wrapper,
        # not a program verdict: exit 2 per the contract.
        return 2 if type(result.error) is ValidationError else 1
    checks = f" ({result.cc_calls} CC checks passed)" if result.cc_calls else ""
    print(f"verdict: clean{checks}", file=sys.stderr)
    return 0


def _parse_levels(spec: str) -> List[ThreadLevel]:
    return [ThreadLevel[part.strip().upper()] for part in spec.split(",")]


def _parse_ints(spec: str) -> List[int]:
    return [int(part) for part in str(spec).split(",")]


def _cmd_explore(args) -> int:
    from .explore import (ExploreConfig, ScheduleTrace, explore_config,
                          replay, verdict_line)

    program, source = _load(args.file, want_source=True)
    trace = ScheduleTrace.load(args.replay) if args.replay else None
    # A trace records whether it was taken on the instrumented program;
    # replay honors that so the schedule actually lines up.
    instrument = args.instrument or (trace is not None
                                     and bool(trace.config.get("instrument")))
    group_kinds = None
    if instrument:
        analysis = analyze_program(program)
        program, _ = instrument_program(analysis)
        group_kinds = analysis.group_kinds

    if trace is not None:
        result, _new_trace, divergences = replay(program, trace,
                                                 group_kinds=group_kinds)
        line = verdict_line(result)
        reproduced = line == trace.verdict
        if args.json:
            from .core.report import (build_report, render_json,
                                      source_stamp, _fingerprinted)
            findings = []
            if not result.ok:
                findings.append(_fingerprinted({
                    "kind": "schedule-failure",
                    "config": dict(trace.config),
                    "strategy": "replay",
                    "schedules": 1, "failed": 1,
                    "verdict": line,
                    "verdict_class": type(result.error).__name__
                    if result.error is not None else "",
                }))
            print(render_json(build_report(
                "explore", source=source_stamp(args.file, source),
                findings=findings,
                verdict="error" if not reproduced else None,
                summary={"mode": "replay", "trace": args.replay,
                         "choices": len(trace.choices),
                         "divergences": divergences,
                         "reproduced": reproduced})), end="")
        else:
            for rank in sorted(result.outputs):
                for out_line in result.outputs[rank]:
                    print(f"[rank {rank}] {out_line}")
            match = "reproduced" if reproduced else (
                f"DIVERGED from recorded verdict: {trace.verdict}")
            print(f"verdict: {line}", file=sys.stderr)
            print(f"replay of {trace.mode} trace ({len(trace.choices)} "
                  f"choices, {divergences} divergences): {match}",
                  file=sys.stderr)
        if not reproduced:
            return 2
        return 0 if result.ok else 1

    configs = [
        ExploreConfig(nprocs=np, num_threads=nt, thread_level=level,
                      instrument=instrument)
        for np in _parse_ints(args.np)
        for nt in _parse_ints(args.nt)
        for level in _parse_levels(args.thread_level)
    ]
    total_schedules = 0
    total_failed = 0
    save_trace = None  # first minimized trace, else first failing full trace
    save_kind = ""
    config_reports = []
    for config in configs:
        report = explore_config(
            program, config, strategy=args.strategy, runs=args.runs,
            preemptions=args.preemptions, seed=args.seed,
            group_kinds=group_kinds, minimize=not args.no_minimize,
            jobs=args.jobs, budget=args.budget)
        config_reports.append(report)
        if not args.json:
            print(report.summary())
        total_schedules += report.schedules
        total_failed += report.failed
        if save_kind != "minimized":
            if report.minimized is not None:
                save_trace, save_kind = report.minimized, "minimized"
            elif save_trace is None and report.failures:
                save_trace, save_kind = report.failures[0].trace, "failing"
    if args.json:
        from .core.report import render_json, report_from_explore
        print(render_json(report_from_explore(
            config_reports, source_path=args.file, source_text=source)),
            end="")
    if total_failed:
        print(f"mismatch in {total_failed}/{total_schedules} schedules",
              file=sys.stderr)
        if save_trace is not None:
            path = args.save_trace or (args.file + ".trace.json")
            save_trace.save(path)
            print(f"{save_kind} trace saved to {path}", file=sys.stderr)
        return 1
    print(f"clean in all {total_schedules} explored schedules", file=sys.stderr)
    return 0


def _cmd_fuzz(args) -> int:
    from .fuzz import GenConfig, OracleConfig, run_fuzz

    oracle_config = OracleConfig(nprocs=args.np, num_threads=args.nt,
                                 explore_runs=args.explore_runs)
    progress = None
    if args.verbose:
        def progress(outcome):
            print(f"seed {outcome.seed}: {outcome.verdict.describe()}",
                  file=sys.stderr)
    try:
        report = run_fuzz(
            seeds=args.seeds, base_seed=args.seed, gen_config=GenConfig(),
            oracle_config=oracle_config, budget=args.budget, jobs=args.jobs,
            shrink=args.shrink, corpus_dir=args.corpus, progress=progress,
            seed_timeout=args.seed_timeout, checkpoint=args.checkpoint,
            resume=args.resume, coverage=args.coverage)
    except ValueError as exc:
        # Checkpoint problems (wrong schema version, range or coverage-flag
        # mismatch) are usage errors under the 0/1/2 contract, not findings.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        from .core.report import render_json, report_from_fuzz
        print(render_json(report_from_fuzz(report, seeds=args.seeds,
                                           base_seed=args.seed)), end="")
    else:
        print(report.summary())
    for outcome in report.disagreements:
        print(f"{outcome.classification}: seed {outcome.seed} "
              f"({outcome.verdict.crash_detail or outcome.verdict.describe()})"
              f"\n  reproduce: {outcome.repro}", file=sys.stderr)
    for name, path in report.reduced:
        print(f"reduced counterexample {name} written to {path}",
              file=sys.stderr)
    if report.overapprox_seeds and args.verbose:
        shown = ", ".join(str(s) for s in report.overapprox_seeds[:20])
        print(f"static-overapprox seeds: {shown}"
              + (" …" if len(report.overapprox_seeds) > 20 else ""),
              file=sys.stderr)
    return report.exit_code()


def _session_from_args(args):
    from .core.session import AnalysisSession

    entry_context = (parse_word(args.initial_context)
                     if args.initial_context else EMPTY)
    return AnalysisSession(jobs=args.jobs, precision=args.precision,
                           interprocedural=args.interprocedural,
                           entry_context=entry_context)


def _cmd_serve(args) -> int:
    from .core.session import run_serve

    with _session_from_args(args) as session:
        return run_serve(session, deadline_ms=args.deadline_ms)


def _cmd_watch(args) -> int:
    from .core.session import run_watch

    with _session_from_args(args) as session:
        return run_watch(session, args.file, interval=args.interval,
                         max_updates=args.max_updates)


def _project_session_from_args(args):
    from .project import ProjectSession

    entry_context = (parse_word(args.initial_context)
                     if args.initial_context else None)
    return ProjectSession(
        args.dir, files=args.file or None, jobs=args.jobs,
        precision=args.precision, interprocedural=args.interprocedural,
        entry_context=entry_context,
        store=False if args.no_store else None)


def _cmd_project_analyze(args) -> int:
    from .core.report import render_json
    from .core.session import SessionError
    from .project import ManifestError

    try:
        with _project_session_from_args(args) as session:
            session.update_all()
            report = session.report
    except (ManifestError, SessionError) as exc:
        messages = (exc.messages if isinstance(exc, SessionError)
                    else [str(exc)])
        for message in messages:
            print(message, file=sys.stderr)
        return 2
    if args.json:
        print(render_json(report), end="")
    else:
        findings = report["findings"]
        for f in findings:
            where = f"{f['file']}:{f['function']}"
            line = f"{where}: [{f['code']}] {f['message']}"
            if f["call_path"]:
                chain = " → ".join(
                    f"{fn} ({file})" for fn, file in
                    zip(f["call_path"], f["call_path_files"]))
                line += f"\n  call path: {chain}"
            print(line)
        print(f"{len(findings)} finding(s)")
    return 1 if report["findings"] else 0


def _cmd_project_serve(args) -> int:
    from .core.session import SessionError
    from .project import ManifestError, run_project_serve

    try:
        with _project_session_from_args(args) as session:
            return run_project_serve(session, deadline_ms=args.deadline_ms)
    except (ManifestError, SessionError) as exc:
        messages = (exc.messages if isinstance(exc, SessionError)
                    else [str(exc)])
        for message in messages:
            print(message, file=sys.stderr)
        return 2


def _cmd_project_gc(args) -> int:
    from .project import ManifestError, ShardedStore, load_manifest

    try:
        manifest = load_manifest(args.dir, args.file or None)
    except ManifestError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if manifest.store_path is None:
        print("store disabled by manifest; nothing to collect",
              file=sys.stderr)
        return 0
    store = ShardedStore(manifest.store_path)
    gens, entries = store.gc(keep=args.keep)
    print(f"removed {gens} stale generation(s), {entries} stored "
          f"entries; current generation {store.generation} holds "
          f"{store.entries()} entries")
    return 0


def _cmd_validate_report(args) -> int:
    from .core.report import _validate_main

    return _validate_main(args.files)


def _cmd_cfg(args) -> int:
    program = _load(args.file)
    analysis = analyze_program(program)
    try:
        fa = analysis.function(args.function)
    except KeyError:
        print(f"no function {args.function!r} in {args.file}", file=sys.stderr)
        return 2
    highlight = {b.id for b in fa.cfg.collective_blocks()}
    highlight |= fa.sequence.conditionals
    dot = to_dot(fa.cfg, highlight=highlight)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(dot)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(dot, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="parcoach",
        description="Static/dynamic validation of MPI collectives in "
                    "multi-threaded context (PPoPP'15 reproduction)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes (all subcommands):\n"
            "  0  clean / verified / successful emission\n"
            "  1  findings — static warnings, a failing run, failing\n"
            "     schedules, fuzzer disagreements (static-miss)\n"
            "  2  internal or usage errors — invalid input program,\n"
            "     unknown function, replay divergence, fuzzer crash class\n"
            "\n"
            "docs: docs/fuzzing.md (coverage-guided fuzzing: signatures,\n"
            "  mutation energy, campaign state v2), docs/explore.md (DPOR),\n"
            "  docs/resilience.md (fault injection, checkpoints),\n"
            "  docs/report-schema.md, docs/project-protocol.md"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="static analysis + warning report")
    p.add_argument("file")
    p.add_argument("--precision", choices=("paper", "counting"), default="paper")
    p.add_argument("--initial-context", default="",
                   help="initial parallelism word, e.g. 'P1' (paper's "
                        "option); seeds the entry functions interprocedurally")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for per-function phases (default 1)")
    p.add_argument("--interprocedural", default=True,
                   action=argparse.BooleanOptionalAction,
                   help="propagate calling-context words over the call "
                        "graph (default on)")
    p.add_argument("--json", action="store_true",
                   help="emit the versioned Report IR (parcoach-report v1) "
                        "instead of the text report")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser(
        "callgraph",
        help="print the call graph with context words and collective summaries")
    p.add_argument("file")
    p.add_argument("--dot", action="store_true",
                   help="emit Graphviz DOT instead of text")
    p.add_argument("--json", action="store_true",
                   help="emit the versioned Report IR instead of text/DOT")
    p.add_argument("-o", "--output", help="write the output here instead of stdout")
    p.add_argument("--initial-context", default="",
                   help="parallelism word seeding the entry functions")
    p.set_defaults(fn=_cmd_callgraph)

    p = sub.add_parser("batch",
                       help="analyze many files with a shared memoized engine")
    p.add_argument("files", nargs="+", metavar="FILE")
    p.add_argument("--precision", choices=("paper", "counting"), default="paper")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for cache misses (default 1; the "
                        "pool persists across files)")
    p.add_argument("--repeat", type=int, default=1, metavar="R",
                   help="analyze the file list R times (cache warm-up demo)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the per-function analysis cache")
    p.add_argument("--interprocedural", default=True,
                   action=argparse.BooleanOptionalAction,
                   help="propagate calling-context words over the call "
                        "graph (default on)")
    p.add_argument("--stats", action="store_true",
                   help="print engine cache statistics to stderr")
    p.set_defaults(fn=_cmd_batch)

    p = sub.add_parser("instrument", help="emit instrumented source")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    p.add_argument("--precision", choices=("paper", "counting"), default="paper")
    p.add_argument("--all", action="store_true",
                   help="blanket instrumentation (ablation baseline)")
    p.set_defaults(fn=_cmd_instrument)

    p = sub.add_parser("run", help="execute under the simulator")
    p.add_argument("file")
    p.add_argument("-np", type=int, default=2, help="MPI ranks")
    p.add_argument("-nt", type=int, default=2, help="OpenMP threads per team")
    p.add_argument("--instrument", action="store_true",
                   help="analyze + instrument before running")
    p.add_argument("--thread-level", default="multiple",
                   choices=[l.name.lower() for l in ThreadLevel])
    p.add_argument("--timeout", type=float, default=10.0)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "explore",
        help="deterministic schedule exploration (DPOR / DFS / random)")
    p.add_argument("file")
    p.add_argument("--strategy", choices=("dfs", "dpor", "random"),
                   default="dfs",
                   help="exhaustive bounded DFS (small programs), "
                        "partial-order-reduced DFS (dpor: same verdicts, "
                        "far fewer schedules) or seeded-random sampling")
    p.add_argument("--preemptions", type=int, default=2, metavar="K",
                   help="preemption bound per schedule (default 2)")
    p.add_argument("--runs", type=int, default=100, metavar="N",
                   help="max schedules per configuration (default 100)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the dpor schedule frontier "
                        "(output is byte-identical to --jobs 1)")
    p.add_argument("--budget", type=float, default=None, metavar="SECS",
                   help="wall-clock cap: stop cleanly with a partial "
                        "summary once exceeded")
    p.add_argument("--replay", metavar="TRACE",
                   help="re-execute a saved JSON schedule trace instead")
    p.add_argument("-np", default="2", metavar="LIST",
                   help="comma-separated rank counts (default '2')")
    p.add_argument("-nt", default="2", metavar="LIST",
                   help="comma-separated team sizes (default '2')")
    p.add_argument("--thread-level", default="multiple", metavar="LIST",
                   help="comma-separated levels (single,funneled,"
                        "serialized,multiple)")
    p.add_argument("--instrument", action="store_true",
                   help="analyze + instrument before exploring")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed for --strategy random")
    p.add_argument("--save-trace", metavar="PATH",
                   help="where to save the failing trace — minimized when "
                        "minimization ran (default FILE.trace.json)")
    p.add_argument("--no-minimize", action="store_true",
                   help="skip delta-debugging the first failing schedule")
    p.add_argument("--json", action="store_true",
                   help="emit the versioned Report IR instead of per-config "
                        "summary lines")
    p.set_defaults(fn=_cmd_explore)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing (generated programs × static-vs-dynamic "
             "oracle)")
    p.add_argument("--seeds", type=int, default=100, metavar="N",
                   help="number of seeds to run (default 100)")
    p.add_argument("--seed", type=int, default=0, metavar="S",
                   help="first seed value; seed k reproduces alone via "
                        "--seeds 1 --seed k (default 0)")
    p.add_argument("--budget", type=float, default=None, metavar="SECS",
                   help="wall-clock cap; stop starting new seeds past it")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (seed outcomes merge in seed "
                        "order — output is identical for any N)")
    p.add_argument("--shrink", action="store_true",
                   help="ddmin-reduce each disagreeing program")
    p.add_argument("--corpus", metavar="DIR",
                   help="write reduced counterexamples (.mini + .json) "
                        "here (implies --shrink)")
    p.add_argument("--explore-runs", type=int, default=12, metavar="N",
                   help="bounded-DFS schedules per program (default 12; "
                        "0 disables exploration)")
    p.add_argument("-np", type=int, default=2, help="MPI ranks (default 2)")
    p.add_argument("-nt", type=int, default=2,
                   help="OpenMP threads per team (default 2)")
    p.add_argument("--seed-timeout", type=float, default=None, metavar="SECS",
                   help="wall-clock cap per seed; a hung seed classifies "
                        "crash (timeout detail) and the campaign continues")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="persist the tally here after every completed seed "
                        "(atomic write; survives a kill)")
    p.add_argument("--resume", action="store_true",
                   help="restore --checkpoint and run only the remaining "
                        "seeds (final tally identical to an uninterrupted "
                        "campaign)")
    p.add_argument("--coverage", action="store_true",
                   help="coverage-guided mode: per-seed coverage "
                        "signatures feed an AFL-style mutation queue, and "
                        "findings dedupe by fingerprint (docs/fuzzing.md; "
                        "mutant seeds encode as integers >= 2**62 and "
                        "reproduce via --seeds 1 --seed S like any other)")
    p.add_argument("--json", action="store_true",
                   help="emit the versioned Report IR instead of the "
                        "summary line")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="per-seed verdict lines + overapprox seed list")
    p.set_defaults(fn=_cmd_fuzz)

    def _session_flags(p) -> None:
        p.add_argument("--precision", choices=("paper", "counting"),
                       default="paper")
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for cache misses (default 1)")
        p.add_argument("--interprocedural", default=True,
                       action=argparse.BooleanOptionalAction,
                       help="propagate calling-context words over the call "
                            "graph (default on)")
        p.add_argument("--initial-context", default="",
                       help="parallelism word seeding the entry functions")

    p = sub.add_parser(
        "serve",
        help="persistent incremental analysis session (line protocol on "
             "stdin, Report IR JSON lines on stdout)",
        description="Commands on stdin: 'analyze PATH' re-reads PATH and "
                    "emits a delta report (only changed findings; the "
                    "summary lists changed/dependent/re-analyzed functions "
                    "and cache invalidations), 'stats' emits engine + "
                    "session counters, 'ping' emits a liveness report, "
                    "'quit' exits.  Any command may be prefixed '@ID' — the "
                    "id is echoed back as a request_id key on its "
                    "responses.  Edits are diffed by per-function "
                    "structural fingerprint; unchanged functions are never "
                    "re-analyzed.  The loop is crash-isolated: unexpected "
                    "errors self-heal (see docs/resilience.md) and answer "
                    "with an internal-error report instead of exiting.")
    _session_flags(p)
    p.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                   help="per-request budget: on expiry emit a timeout "
                        "report, then degrade (retry without the "
                        "interprocedural plan, then cold single-file)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "watch",
        help="watch one file and re-emit a delta report on every change")
    p.add_argument("file")
    p.add_argument("--interval", type=float, default=0.5, metavar="SECS",
                   help="poll interval (default 0.5s)")
    p.add_argument("--max-updates", type=int, default=0, metavar="N",
                   help="exit after N emitted updates (0 = run until "
                        "interrupted)")
    _session_flags(p)
    p.set_defaults(fn=_cmd_watch)

    p = sub.add_parser(
        "project",
        help="project-scale analysis: merged cross-file call graph, shared "
             "artifact store, multi-file serve daemon")
    psub = p.add_subparsers(dest="project_command", required=True)

    def _project_flags(pp) -> None:
        pp.add_argument("dir", help="project root (parcoach.toml optional)")
        pp.add_argument("--file", action="append", metavar="PATH",
                        help="analyze exactly these files (repeatable; "
                             "overrides the manifest's file set)")
        pp.add_argument("--no-store", action="store_true",
                        help="disable the shared on-disk artifact store")
        _session_flags(pp)

    pp = psub.add_parser(
        "analyze",
        help="one-shot whole-project analysis (cross-file witness chains)",
        description="Merges every project file into one program and runs "
                    "the interprocedural analysis across file boundaries; "
                    "findings are file-qualified and carry witness call "
                    "chains that may span files.  Warm artifacts are shared "
                    "with any concurrently running 'project serve' via the "
                    "sharded store under .parcoach/store.")
    _project_flags(pp)
    pp.add_argument("--json", action="store_true",
                    help="emit the versioned Report IR instead of text")
    pp.set_defaults(fn=_cmd_project_analyze)

    pp = psub.add_parser(
        "serve",
        help="persistent multi-file incremental session (line protocol on "
             "stdin, Report IR JSON lines on stdout)",
        description="Commands on stdin: 'open PATH' / 'edit PATH' fold one "
                    "file into the merged project and emit a delta report, "
                    "'close PATH' drops it, 'analyze' re-reads every "
                    "project file, 'stats' emits engine + session + project "
                    "counters, 'ping' / 'quit' as in 'parcoach serve'.  Any "
                    "command may be prefixed '@ID'.  Whole-chunk moves "
                    "(a line inserted above a function) take the "
                    "line-offset patch path: cached artifacts shift in "
                    "place and the request answers with zero engine "
                    "misses.  See docs/project-protocol.md.")
    _project_flags(pp)
    pp.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                    help="per-request budget: on expiry emit a timeout "
                         "report, then degrade (retry without the "
                         "interprocedural plan, then cold recover)")
    pp.set_defaults(fn=_cmd_project_serve)

    pp = psub.add_parser(
        "gc",
        help="prune stale artifact-store generations "
             "(.parcoach/store/g<format>-<version>)",
        description="The shared store writes into a per-version generation "
                    "directory; upgrading the analyzer starts a fresh "
                    "generation and leaves the old one behind.  'project "
                    "gc' deletes every stale generation (and any "
                    "pre-generation shard dirs), keeping the current one "
                    "and, with --keep N, the N most recently used stale "
                    "ones.")
    pp.add_argument("dir", help="project root (parcoach.toml optional)")
    pp.add_argument("--file", action="append", metavar="PATH",
                    help="manifest override, as in 'project analyze'")
    pp.add_argument("--keep", type=int, default=0, metavar="N",
                    help="also keep the N most recently modified stale "
                         "generations (default 0)")
    pp.set_defaults(fn=_cmd_project_gc)

    p = sub.add_parser(
        "validate-report",
        help="validate Report IR documents (files or stdin via '-')")
    p.add_argument("files", nargs="*", metavar="FILE")
    p.set_defaults(fn=_cmd_validate_report)

    p = sub.add_parser("cfg", help="dump a function's CFG as DOT")
    p.add_argument("file")
    p.add_argument("function")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=_cmd_cfg)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point.  Normalizes every exit path onto the documented
    0/1/2 contract — including argparse usage errors and the semantic-error
    abort in ``_load``, which raise ``SystemExit`` internally."""
    try:
        args = build_parser().parse_args(argv)
        return args.fn(args)
    except SystemExit as exc:
        code = exc.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 2


if __name__ == "__main__":
    sys.exit(main())
