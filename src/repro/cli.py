"""``parcoach`` command-line interface.

Subcommands::

    parcoach analyze FILE [--precision paper|counting] [--initial-context W]
                          [--jobs N]
        run the static analysis, print the warning report (exit 1 if warnings)
    parcoach batch FILE [FILE ...] [--precision P] [--jobs N] [--repeat R]
                        [--no-cache] [--stats]
        analyze many files through one memoized AnalysisEngine; one summary
        line per file, cache statistics at the end (exit 1 if any warnings)
    parcoach instrument FILE [-o OUT]
        emit the instrumented source
    parcoach run FILE [-np N] [-nt T] [--instrument] [--thread-level L]
        execute under the simulator, print outputs and the verdict
    parcoach cfg FILE FUNC [-o OUT.dot]
        dump one function's CFG as Graphviz DOT

Performance knobs: ``--jobs N`` fans independent per-function phases out to
``N`` worker processes (identical output, useful on many-function programs);
``batch`` keeps a per-function analysis cache across files and repeats, so
structurally identical functions are analyzed once (see
``benchmarks/bench_scale.py`` for the measured effect).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .cfg import to_dot
from .core import AnalysisEngine, analyze_program, instrument_program, render_report
from .minilang.parser import parse_program
from .minilang.pretty import pretty
from .minilang.semantics import check_program
from .mpi.thread_levels import ThreadLevel
from .parallelism import parse_word
from .runtime import run_program


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = parse_program(source, path)
    issues = check_program(program)
    errors = [i for i in issues if i.severity == "error"]
    if errors:
        for issue in errors:
            print(f"{path}:{issue}", file=sys.stderr)
        raise SystemExit(2)
    for issue in issues:
        if issue.severity == "warning":
            print(f"{path}:{issue}", file=sys.stderr)
    return program


def _cmd_analyze(args) -> int:
    program = _load(args.file)
    initial = {}
    if args.initial_context:
        word = parse_word(args.initial_context)
        initial = {f.name: word for f in program.funcs}
    if args.jobs > 1:
        engine = AnalysisEngine(jobs=args.jobs, cache=False)
        analysis = engine.analyze(program, initial_words=initial,
                                  precision=args.precision)
    else:
        analysis = analyze_program(program, initial_words=initial,
                                   precision=args.precision)
    print(render_report(analysis, verbose=args.verbose), end="")
    return 1 if len(analysis.diagnostics) else 0


def _cmd_batch(args) -> int:
    engine = AnalysisEngine(jobs=args.jobs, cache=not args.no_cache)
    any_warnings = False
    for _ in range(max(1, args.repeat)):
        for path in args.files:
            program = _load(path)
            analysis = engine.analyze(program, precision=args.precision)
            n = len(analysis.diagnostics)
            any_warnings = any_warnings or n > 0
            flagged = len(analysis.flagged_functions)
            print(f"{path}: {len(analysis.functions)} functions, "
                  f"{flagged} flagged, {n} warnings"
                  + ("" if analysis.verified else " [NOT VERIFIED]"))
    if args.stats:
        info = engine.cache_info()
        print(f"engine: {info['programs']} programs, {info['functions']} "
              f"function analyses, {info['hits']} cache hits "
              f"({info['remaps']} remapped), {info['misses']} misses, "
              f"hit rate {info['hit_rate']:.1%}", file=sys.stderr)
    return 1 if any_warnings else 0


def _cmd_instrument(args) -> int:
    program = _load(args.file)
    analysis = analyze_program(program, precision=args.precision,
                               instrument_all=args.all)
    instrumented, report = instrument_program(analysis)
    text = pretty(instrumented)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({report.total} checks inserted)",
              file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_run(args) -> int:
    program = _load(args.file)
    group_kinds = None
    if args.instrument:
        analysis = analyze_program(program)
        program, _ = instrument_program(analysis)
        group_kinds = analysis.group_kinds
    level = ThreadLevel[args.thread_level.upper()]
    result = run_program(program, nprocs=args.np, num_threads=args.nt,
                         thread_level=level, group_kinds=group_kinds,
                         timeout=args.timeout)
    for rank in sorted(result.outputs):
        for line in result.outputs[rank]:
            print(f"[rank {rank}] {line}")
    if result.error is not None:
        print(f"verdict: {result.verdict} (detected by {result.detected_by})",
              file=sys.stderr)
        print(f"  {result.error}", file=sys.stderr)
        return 1
    checks = f" ({result.cc_calls} CC checks passed)" if result.cc_calls else ""
    print(f"verdict: clean{checks}", file=sys.stderr)
    return 0


def _cmd_cfg(args) -> int:
    program = _load(args.file)
    analysis = analyze_program(program)
    try:
        fa = analysis.function(args.function)
    except KeyError:
        print(f"no function {args.function!r} in {args.file}", file=sys.stderr)
        return 2
    highlight = {b.id for b in fa.cfg.collective_blocks()}
    highlight |= fa.sequence.conditionals
    dot = to_dot(fa.cfg, highlight=highlight)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(dot)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(dot, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="parcoach",
        description="Static/dynamic validation of MPI collectives in "
                    "multi-threaded context (PPoPP'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="static analysis + warning report")
    p.add_argument("file")
    p.add_argument("--precision", choices=("paper", "counting"), default="paper")
    p.add_argument("--initial-context", default="",
                   help="initial parallelism word, e.g. 'P1' (paper's option)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for per-function phases (default 1)")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("batch",
                       help="analyze many files with a shared memoized engine")
    p.add_argument("files", nargs="+", metavar="FILE")
    p.add_argument("--precision", choices=("paper", "counting"), default="paper")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for cache misses (default 1)")
    p.add_argument("--repeat", type=int, default=1, metavar="R",
                   help="analyze the file list R times (cache warm-up demo)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the per-function analysis cache")
    p.add_argument("--stats", action="store_true",
                   help="print engine cache statistics to stderr")
    p.set_defaults(fn=_cmd_batch)

    p = sub.add_parser("instrument", help="emit instrumented source")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    p.add_argument("--precision", choices=("paper", "counting"), default="paper")
    p.add_argument("--all", action="store_true",
                   help="blanket instrumentation (ablation baseline)")
    p.set_defaults(fn=_cmd_instrument)

    p = sub.add_parser("run", help="execute under the simulator")
    p.add_argument("file")
    p.add_argument("-np", type=int, default=2, help="MPI ranks")
    p.add_argument("-nt", type=int, default=2, help="OpenMP threads per team")
    p.add_argument("--instrument", action="store_true",
                   help="analyze + instrument before running")
    p.add_argument("--thread-level", default="multiple",
                   choices=[l.name.lower() for l in ThreadLevel])
    p.add_argument("--timeout", type=float, default=10.0)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("cfg", help="dump a function's CFG as DOT")
    p.add_argument("file")
    p.add_argument("function")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=_cmd_cfg)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
