"""MPI operation registry and thread-level model."""

from .collectives import (
    COLLECTIVES,
    MPI_QUERIES,
    MPI_SETUP,
    POINT_TO_POINT,
    RETURN_COLOR,
    CollectiveInfo,
    collective_color,
    collective_info,
    color_name,
    is_collective,
    is_mpi_call,
)
from .thread_levels import LEVEL_FROM_INT, ThreadLevel, required_level

__all__ = [
    "COLLECTIVES",
    "MPI_QUERIES",
    "MPI_SETUP",
    "POINT_TO_POINT",
    "RETURN_COLOR",
    "CollectiveInfo",
    "collective_color",
    "collective_info",
    "color_name",
    "is_collective",
    "is_mpi_call",
    "LEVEL_FROM_INT",
    "ThreadLevel",
    "required_level",
]
