"""Registry of MPI operations known to the analysis and the runtime.

Each collective gets a stable *color* (a small positive integer) used by the
``CC`` runtime check: before entering collective ``c`` every process
all-reduces ``color(c)`` with MIN and MAX; a disagreement means the processes
are about to execute different collectives (or one of them none at all —
color 0 is reserved for "returning without further collectives").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Color 0 is reserved for the before-return check ("no more collectives").
RETURN_COLOR = 0


@dataclass(frozen=True)
class CollectiveInfo:
    """Static description of an MPI collective operation.

    Parameters
    ----------
    name:
        The MPI function name as written in source (e.g. ``MPI_Bcast``).
    color:
        Unique id used by the CC runtime check.
    has_root:
        Whether the operation is rooted (Bcast/Reduce/Gather/Scatter).
    arity:
        ``(min_args, max_args)`` accepted in minilang's simplified signature.
    synchronizing:
        True when the operation implies full synchronization of the
        communicator (Barrier, Allreduce, ...); informational only.
    """

    name: str
    color: int
    has_root: bool
    arity: Tuple[int, int]
    synchronizing: bool = True


#: Minilang signatures (simplified from C):
#:   MPI_Barrier()
#:   MPI_Bcast(var, root)
#:   MPI_Reduce(sendvar, recvvar, op, root)
#:   MPI_Allreduce(sendvar, recvvar, op)
#:   MPI_Gather(sendvar, recvarray, root)
#:   MPI_Scatter(sendarray, recvvar, root)
#:   MPI_Allgather(sendvar, recvarray)
#:   MPI_Alltoall(sendarray, recvarray)
#:   MPI_Scan(sendvar, recvvar, op)
#:   MPI_Exscan(sendvar, recvvar, op)
#:   MPI_Reduce_scatter_block(sendarray, recvvar, op)
#:   MPI_Finalize()
COLLECTIVES: Dict[str, CollectiveInfo] = {
    info.name: info
    for info in [
        CollectiveInfo("MPI_Barrier", 1, False, (0, 0)),
        CollectiveInfo("MPI_Bcast", 2, True, (2, 2)),
        CollectiveInfo("MPI_Reduce", 3, True, (4, 4)),
        CollectiveInfo("MPI_Allreduce", 4, False, (3, 3)),
        CollectiveInfo("MPI_Gather", 5, True, (3, 3)),
        CollectiveInfo("MPI_Scatter", 6, True, (3, 3)),
        CollectiveInfo("MPI_Allgather", 7, False, (2, 2)),
        CollectiveInfo("MPI_Alltoall", 8, False, (2, 2)),
        CollectiveInfo("MPI_Scan", 9, False, (3, 3)),
        CollectiveInfo("MPI_Exscan", 10, False, (3, 3)),
        CollectiveInfo("MPI_Reduce_scatter_block", 11, False, (3, 3)),
        CollectiveInfo("MPI_Finalize", 12, False, (0, 0)),
    ]
}

#: Point-to-point / query operations: executable by the runtime but *not*
#: collectives — the analysis ignores them (the paper checks collectives only).
POINT_TO_POINT = {
    "MPI_Send": (3, 3),     # MPI_Send(value, dest, tag)
    "MPI_Recv": (3, 3),     # MPI_Recv(var, source, tag)
    "MPI_Sendrecv": (6, 6), # MPI_Sendrecv(value, dest, stag, var, source, rtag)
}

#: Query functions usable in expressions.
MPI_QUERIES = {
    "MPI_Comm_rank": 0,
    "MPI_Comm_size": 0,
    "MPI_Wtime": 0,
}

#: Non-collective setup call (MPI_Init is not a collective in the MPI sense
#: relevant here; MPI_Init_thread(level) requests a thread support level).
MPI_SETUP = {
    "MPI_Init": (0, 0),
    "MPI_Init_thread": (1, 1),
}

_COLOR_TO_NAME: Dict[int, str] = {RETURN_COLOR: "<return>"}
_COLOR_TO_NAME.update({info.color: name for name, info in COLLECTIVES.items()})


def is_collective(name: str) -> bool:
    """True when ``name`` is an MPI collective tracked by the analysis."""
    return name in COLLECTIVES


def is_mpi_call(name: str) -> bool:
    """True for any MPI operation (collective, P2P, query, or setup)."""
    return (
        name in COLLECTIVES
        or name in POINT_TO_POINT
        or name in MPI_QUERIES
        or name in MPI_SETUP
    )


def collective_color(name: str) -> int:
    """The CC color of collective ``name`` (KeyError for non-collectives)."""
    return COLLECTIVES[name].color


def color_name(color: int) -> str:
    """Human-readable collective name for a CC color."""
    return _COLOR_TO_NAME.get(color, f"<unknown color {color}>")


def collective_info(name: str) -> Optional[CollectiveInfo]:
    return COLLECTIVES.get(name)
