"""MPI-2 thread support levels and the level each parallelism word requires.

The MPI standard defines four levels.  The paper's phase 1 ties the analysis
verdict to the level:

* collective with ``pw ∈ L`` and no enclosing parallel construct
  (word has no ``P``) — any level works for the collective itself
  (``MPI_THREAD_SINGLE`` if the program never forks threads);
* collective in a monothreaded region *inside* a parallel construct
  (word contains ``P`` and ends in ``S``) — requires at least
  ``MPI_THREAD_SERIALIZED`` (``FUNNELED`` suffices only if the region is a
  ``master`` region);
* collective in a multithreaded region — requires ``MPI_THREAD_MULTIPLE``
  *and* a runtime guarantee that a single thread executes it.
"""

from __future__ import annotations

import enum
from functools import total_ordering


@total_ordering
class ThreadLevel(enum.Enum):
    SINGLE = 0
    FUNNELED = 1
    SERIALIZED = 2
    MULTIPLE = 3

    def __lt__(self, other: "ThreadLevel") -> bool:
        if not isinstance(other, ThreadLevel):
            return NotImplemented
        return self.value < other.value

    @property
    def mpi_name(self) -> str:
        return f"MPI_THREAD_{self.name}"


#: Mapping from the minilang integer constant (MPI_Init_thread argument)
#: to the level, mirroring common MPI implementations.
LEVEL_FROM_INT = {level.value: level for level in ThreadLevel}


def required_level(word_has_parallel: bool, monothreaded: bool,
                   master_only: bool = False) -> ThreadLevel:
    """Minimum thread level required for a collective in the given context.

    Parameters
    ----------
    word_has_parallel:
        The parallelism word contains at least one ``P`` token.
    monothreaded:
        The word is in the language ``L`` (single thread executes the node).
    master_only:
        The innermost single-threaded region is a ``master`` region (the
        executing thread is always the master thread).
    """
    if not word_has_parallel:
        return ThreadLevel.SINGLE
    if monothreaded:
        return ThreadLevel.FUNNELED if master_only else ThreadLevel.SERIALIZED
    return ThreadLevel.MULTIPLE
