"""Control-flow-graph substrate: blocks, builder, dominance, loops, DOT."""

from .basic_block import BasicBlock, BlockKind, OMP_REGION_KINDS
from .build import CFGBuilder, build_cfg, build_program_cfgs
from .dominance import DominatorTree, dominators, pdf_plus, post_dominators
from .dot import to_dot
from .graph import CFG
from .loops import NaturalLoop, find_back_edges, loop_nesting_depth, natural_loops

__all__ = [
    "BasicBlock",
    "BlockKind",
    "OMP_REGION_KINDS",
    "CFGBuilder",
    "build_cfg",
    "build_program_cfgs",
    "DominatorTree",
    "dominators",
    "pdf_plus",
    "post_dominators",
    "to_dot",
    "CFG",
    "NaturalLoop",
    "find_back_edges",
    "loop_nesting_depth",
    "natural_loops",
]
