"""Basic blocks of the control-flow graph.

Following the paper's compile-time phase, OpenMP directives live in their own
blocks (``BlockKind.OMP_*``), implicit thread barriers get dedicated blocks,
and every MPI collective call sits alone in its block so the analyses can
treat "node" and "collective occurrence" interchangeably.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..minilang import ast_nodes as A


class BlockKind(enum.Enum):
    ENTRY = "entry"
    EXIT = "exit"
    NORMAL = "normal"          # straight-line simple statements
    CONDITION = "condition"    # ends the block with a 2-way branch
    COLLECTIVE = "collective"  # exactly one MPI collective call
    CALL = "call"              # call to a user function (possible collectives inside)
    OMP_PARALLEL = "omp_parallel"
    OMP_SINGLE = "omp_single"
    OMP_MASTER = "omp_master"
    OMP_CRITICAL = "omp_critical"
    OMP_FOR = "omp_for"
    OMP_SECTIONS = "omp_sections"
    OMP_SECTION = "omp_section"
    OMP_TASK = "omp_task"
    OMP_END = "omp_end"        # structured-block end marker (region close)
    OMP_BARRIER = "omp_barrier"  # explicit or implicit barrier


#: Kinds opening an OpenMP region (matched by an OMP_END block).
OMP_REGION_KINDS = {
    BlockKind.OMP_PARALLEL,
    BlockKind.OMP_SINGLE,
    BlockKind.OMP_MASTER,
    BlockKind.OMP_CRITICAL,
    BlockKind.OMP_FOR,
    BlockKind.OMP_SECTIONS,
    BlockKind.OMP_SECTION,
    BlockKind.OMP_TASK,
}


@dataclass
class BasicBlock:
    """One CFG node.

    Attributes
    ----------
    id:
        Dense integer id, unique within the function's CFG.
    kind:
        The block's role (see :class:`BlockKind`).
    stmts:
        Simple statements executed by the block (empty for markers).
    cond:
        The branch condition expression for ``CONDITION`` blocks.
    pragma:
        The OpenMP AST node for ``OMP_*`` blocks.
    collective:
        MPI collective name for ``COLLECTIVE`` blocks.
    callee:
        Called user-function name for ``CALL`` blocks.
    implicit:
        For ``OMP_BARRIER``: True when the barrier is implied by a region end
        rather than written as ``#pragma omp barrier``.
    region_open_id:
        For ``OMP_END``: the id of the block that opened the region.
    line:
        Source line (for diagnostics).
    """

    id: int
    kind: BlockKind
    stmts: List[A.Stmt] = field(default_factory=list)
    cond: Optional[A.Expr] = None
    pragma: Optional[A.Stmt] = None
    collective: Optional[str] = None
    callee: Optional[str] = None
    implicit: bool = False
    region_open_id: Optional[int] = None
    line: int = 0

    @property
    def is_branch(self) -> bool:
        return self.kind is BlockKind.CONDITION

    @property
    def is_omp(self) -> bool:
        return self.kind.name.startswith("OMP_")

    def label(self) -> str:
        """Short human-readable label (used by the DOT exporter and reports)."""
        if self.kind is BlockKind.COLLECTIVE:
            return f"{self.id}: {self.collective} (l.{self.line})"
        if self.kind is BlockKind.CALL:
            return f"{self.id}: call {self.callee} (l.{self.line})"
        if self.kind is BlockKind.CONDITION:
            return f"{self.id}: branch (l.{self.line})"
        if self.kind is BlockKind.OMP_BARRIER:
            tag = "implicit" if self.implicit else "explicit"
            return f"{self.id}: barrier [{tag}]"
        if self.is_omp:
            return f"{self.id}: {self.kind.value} (l.{self.line})"
        if self.kind in (BlockKind.ENTRY, BlockKind.EXIT):
            return f"{self.id}: {self.kind.value}"
        return f"{self.id}: block[{len(self.stmts)} stmts]"
