"""AST → CFG translation.

Mirrors the paper's compile-time phase: OpenMP directives become their own
blocks, implicit thread barriers get dedicated ``OMP_BARRIER`` blocks, every
MPI collective call is isolated in a ``COLLECTIVE`` block and every call to a
user-defined function in a ``CALL`` block (the driver treats calls to
collective-containing functions as collective points).

``omp sections`` bodies are chained *sequentially* in the CFG: per MPI
process every section executes exactly once, so for the inter-process
sequence analysis they are straight-line code; the cross-thread ordering
nondeterminism between sections is the concurrency phase's job (each section
contributes its own ``S`` token to the parallelism word).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..minilang import ast_nodes as A
from ..mpi.collectives import is_collective
from .basic_block import BasicBlock, BlockKind
from .graph import CFG


@dataclass
class _LoopCtx:
    continue_target: int
    break_target: int


class CFGBuilder:
    def __init__(self, func: A.FuncDef, user_funcs: Optional[set] = None) -> None:
        self.func = func
        self.user_funcs = user_funcs if user_funcs is not None else set()
        self.cfg = CFG(func.name)
        #: AST uid -> block id (pragmas, collective stmts, branch conditions).
        self.ast_block: Dict[int, int] = {}
        self._loops: List[_LoopCtx] = []

    # -- helpers ----------------------------------------------------------------

    def _new(self, kind: BlockKind, **kwargs) -> BasicBlock:
        return self.cfg.new_block(kind, **kwargs)

    def _link(self, src: Optional[int], dst: int) -> None:
        if src is not None:
            self.cfg.add_edge(src, dst)

    def _fresh_after(self, cur: Optional[int], kind: BlockKind = BlockKind.NORMAL,
                     **kwargs) -> BasicBlock:
        block = self._new(kind, **kwargs)
        self._link(cur, block.id)
        return block

    # -- entry point ---------------------------------------------------------------

    def build(self) -> CFG:
        entry = self._new(BlockKind.ENTRY)
        exit_block = self._new(BlockKind.EXIT)
        self.cfg.entry_id = entry.id
        self.cfg.exit_id = exit_block.id
        cur = self._translate_block(self.func.body, entry.id)
        self._link(cur, exit_block.id)
        self.cfg.remove_unreachable()
        self.cfg.ensure_exit_reachable()
        # Construction is over: seal adjacency so every analysis downstream
        # gets zero-copy tuple views from successors()/predecessors().
        self.cfg.freeze()
        return self.cfg

    # -- statement translation --------------------------------------------------------

    def _translate_block(self, block: A.Block, cur: Optional[int]) -> Optional[int]:
        for stmt in block.stmts:
            cur = self._translate_stmt(stmt, cur)
        return cur

    def _translate_stmt(self, stmt: A.Stmt, cur: Optional[int]) -> Optional[int]:
        if cur is None:
            # Unreachable code after return/break: translate into orphan
            # blocks, cleaned up by remove_unreachable().
            cur = self._new(BlockKind.NORMAL, line=stmt.line).id

        if isinstance(stmt, A.Block):
            return self._translate_block(stmt, cur)

        if isinstance(stmt, (A.VarDecl, A.Assign)):
            return self._append_simple(stmt, cur)

        if isinstance(stmt, A.ExprStmt):
            return self._translate_expr_stmt(stmt, cur)

        if isinstance(stmt, A.If):
            return self._translate_if(stmt, cur)

        if isinstance(stmt, A.While):
            return self._translate_while(stmt, cur)

        if isinstance(stmt, A.For):
            return self._translate_for(stmt, cur)

        if isinstance(stmt, A.Return):
            block = self._append_simple(stmt, cur)
            self._link(block, self.cfg.exit_id)
            return None

        if isinstance(stmt, A.Break):
            if self._loops:
                self._link(cur, self._loops[-1].break_target)
            return None

        if isinstance(stmt, A.Continue):
            if self._loops:
                self._link(cur, self._loops[-1].continue_target)
            return None

        if isinstance(stmt, A.OmpStmt):
            return self._translate_omp(stmt, cur)

        raise TypeError(f"cannot translate {type(stmt).__name__}")

    def _append_simple(self, stmt: A.Stmt, cur: int) -> int:
        block = self.cfg.block(cur)
        if block.kind is not BlockKind.NORMAL or block.cond is not None:
            block = self._fresh_after(cur, BlockKind.NORMAL, line=stmt.line)
        if not block.stmts:
            block.line = stmt.line
        block.stmts.append(stmt)
        self.ast_block[stmt.uid] = block.id
        return block.id

    def _translate_expr_stmt(self, stmt: A.ExprStmt, cur: int) -> int:
        expr = stmt.expr
        if isinstance(expr, A.Call) and is_collective(expr.name):
            block = self._fresh_after(cur, BlockKind.COLLECTIVE,
                                      collective=expr.name, line=stmt.line)
            block.stmts.append(stmt)
            self.ast_block[stmt.uid] = block.id
            self.ast_block[expr.uid] = block.id
            return block.id
        if isinstance(expr, A.Call) and expr.name in self.user_funcs:
            block = self._fresh_after(cur, BlockKind.CALL,
                                      callee=expr.name, line=stmt.line)
            block.stmts.append(stmt)
            self.ast_block[stmt.uid] = block.id
            self.ast_block[expr.uid] = block.id
            return block.id
        return self._append_simple(stmt, cur)

    # -- control flow --------------------------------------------------------------

    def _make_condition(self, cond: A.Expr, cur: int, line: int) -> int:
        """Close ``cur`` with a CONDITION block evaluating ``cond``."""
        block = self._fresh_after(cur, BlockKind.CONDITION, cond=cond, line=line)
        self.ast_block[cond.uid] = block.id
        return block.id

    def _translate_if(self, stmt: A.If, cur: int) -> Optional[int]:
        cond_id = self._make_condition(stmt.cond, cur, stmt.line)
        self.ast_block[stmt.uid] = cond_id
        join = self._new(BlockKind.NORMAL, line=stmt.line)

        then_entry = self._new(BlockKind.NORMAL, line=stmt.then_body.line)
        self.cfg.add_edge(cond_id, then_entry.id)
        then_end = self._translate_block(stmt.then_body, then_entry.id)
        self._link(then_end, join.id)

        if stmt.else_body is not None:
            else_entry = self._new(BlockKind.NORMAL, line=stmt.else_body.line)
            self.cfg.add_edge(cond_id, else_entry.id)
            else_end = self._translate_block(stmt.else_body, else_entry.id)
            self._link(else_end, join.id)
        else:
            self.cfg.add_edge(cond_id, join.id)

        if not self.cfg.predecessors(join.id):
            return None  # both branches returned/broke
        return join.id

    def _translate_while(self, stmt: A.While, cur: int) -> Optional[int]:
        header = self._make_condition(stmt.cond, cur, stmt.line)
        self.ast_block[stmt.uid] = header
        after = self._new(BlockKind.NORMAL, line=stmt.line)
        body_entry = self._new(BlockKind.NORMAL, line=stmt.body.line)
        self.cfg.add_edge(header, body_entry.id)
        self.cfg.add_edge(header, after.id)
        self._loops.append(_LoopCtx(continue_target=header, break_target=after.id))
        body_end = self._translate_block(stmt.body, body_entry.id)
        self._loops.pop()
        self._link(body_end, header)
        return after.id

    def _translate_for(self, stmt: A.For, cur: int,
                       record_uid: bool = True) -> Optional[int]:
        if stmt.init is not None:
            cur = self._translate_stmt(stmt.init, cur)
            assert cur is not None
        if stmt.cond is not None:
            header = self._make_condition(stmt.cond, cur, stmt.line)
        else:
            header = self._fresh_after(cur, BlockKind.NORMAL, line=stmt.line).id
        if record_uid:
            self.ast_block[stmt.uid] = header
        after = self._new(BlockKind.NORMAL, line=stmt.line)
        body_entry = self._new(BlockKind.NORMAL, line=stmt.body.line)
        self.cfg.add_edge(header, body_entry.id)
        if stmt.cond is not None:
            self.cfg.add_edge(header, after.id)
        step_block = self._new(BlockKind.NORMAL, line=stmt.line)
        if stmt.step is not None:
            step_block.stmts.append(stmt.step)
            self.ast_block[stmt.step.uid] = step_block.id
        self._loops.append(_LoopCtx(continue_target=step_block.id, break_target=after.id))
        body_end = self._translate_block(stmt.body, body_entry.id)
        self._loops.pop()
        self._link(body_end, step_block.id)
        self.cfg.add_edge(step_block.id, header)
        if not self.cfg.predecessors(after.id) and stmt.cond is None:
            return None  # genuinely infinite loop
        return after.id

    # -- OpenMP constructs --------------------------------------------------------------

    def _open_region(self, kind: BlockKind, stmt: A.OmpStmt, cur: int) -> BasicBlock:
        block = self._fresh_after(cur, kind, pragma=stmt, line=stmt.line)
        self.ast_block[stmt.uid] = block.id
        return block

    def _close_region(self, open_block: BasicBlock, cur: Optional[int],
                      barrier: bool) -> Optional[int]:
        if cur is None:
            return None
        end = self._fresh_after(cur, BlockKind.OMP_END,
                                region_open_id=open_block.id,
                                pragma=open_block.pragma,
                                line=open_block.line)
        cur = end.id
        if barrier:
            bar = self._fresh_after(cur, BlockKind.OMP_BARRIER, implicit=True,
                                    pragma=open_block.pragma, line=open_block.line)
            cur = bar.id
        return cur

    def _translate_omp(self, stmt: A.OmpStmt, cur: int) -> Optional[int]:
        if isinstance(stmt, A.OmpBarrier):
            block = self._fresh_after(cur, BlockKind.OMP_BARRIER, implicit=False,
                                      pragma=stmt, line=stmt.line)
            self.ast_block[stmt.uid] = block.id
            return block.id

        if isinstance(stmt, A.OmpParallel):
            open_block = self._open_region(BlockKind.OMP_PARALLEL, stmt, cur)
            body_end = self._translate_block(stmt.body, open_block.id)
            # The join of a parallel region is an implicit barrier.
            return self._close_region(open_block, body_end, barrier=True)

        if isinstance(stmt, A.OmpSingle):
            open_block = self._open_region(BlockKind.OMP_SINGLE, stmt, cur)
            body_end = self._translate_block(stmt.body, open_block.id)
            return self._close_region(open_block, body_end, barrier=not stmt.nowait)

        if isinstance(stmt, A.OmpMaster):
            open_block = self._open_region(BlockKind.OMP_MASTER, stmt, cur)
            body_end = self._translate_block(stmt.body, open_block.id)
            return self._close_region(open_block, body_end, barrier=False)

        if isinstance(stmt, A.OmpCritical):
            open_block = self._open_region(BlockKind.OMP_CRITICAL, stmt, cur)
            body_end = self._translate_block(stmt.body, open_block.id)
            return self._close_region(open_block, body_end, barrier=False)

        if isinstance(stmt, A.OmpTask):
            open_block = self._open_region(BlockKind.OMP_TASK, stmt, cur)
            body_end = self._translate_block(stmt.body, open_block.id)
            return self._close_region(open_block, body_end, barrier=False)

        if isinstance(stmt, A.OmpFor):
            open_block = self._open_region(BlockKind.OMP_FOR, stmt, cur)
            loop_end = self._translate_for(stmt.loop, open_block.id, record_uid=False)
            return self._close_region(open_block, loop_end, barrier=not stmt.nowait)

        if isinstance(stmt, A.OmpSections):
            open_block = self._open_region(BlockKind.OMP_SECTIONS, stmt, cur)
            cur2: Optional[int] = open_block.id
            for section in stmt.sections:
                sec_block = self._fresh_after(cur2, BlockKind.OMP_SECTION,
                                              pragma=stmt, line=section.line)
                self.ast_block[section.uid] = sec_block.id
                sec_end = self._translate_block(section, sec_block.id)
                cur2 = self._close_region(sec_block, sec_end, barrier=False)
                if cur2 is None:
                    break
            return self._close_region(open_block, cur2, barrier=not stmt.nowait)

        raise TypeError(f"cannot translate OpenMP node {type(stmt).__name__}")


def build_cfg(func: A.FuncDef, user_funcs: Optional[set] = None) -> Tuple[CFG, Dict[int, int]]:
    """Build the CFG of ``func``; returns ``(cfg, ast_uid -> block_id)``."""
    builder = CFGBuilder(func, user_funcs)
    cfg = builder.build()
    return cfg, builder.ast_block


def build_program_cfgs(program: A.Program) -> Dict[str, Tuple[CFG, Dict[int, int]]]:
    """Build CFGs for every function of ``program``."""
    user_funcs = {f.name for f in program.funcs}
    return {f.name: build_cfg(f, user_funcs) for f in program.funcs}
