"""Natural-loop detection (back edges via dominators).

Used for CFG statistics in reports and to sanity-check the benchmark
generators (the NAS-MZ skeletons are loop-heavy by design).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .dominance import DominatorTree, dominators
from .graph import CFG


@dataclass
class NaturalLoop:
    header: int
    back_edge: Tuple[int, int]
    body: Set[int] = field(default_factory=set)

    @property
    def depth_key(self) -> int:
        return len(self.body)


def find_back_edges(cfg: CFG, dom: DominatorTree) -> List[Tuple[int, int]]:
    """Edges ``(src, dst)`` where ``dst`` dominates ``src``."""
    edges = []
    for src, dst in cfg.edge_list():
        if (src, dst) in cfg.virtual_edges:
            continue
        if src in dom.idom and dst in dom.idom and dom.dominates(dst, src):
            edges.append((src, dst))
    return edges


def natural_loops(cfg: CFG) -> List[NaturalLoop]:
    """All natural loops, one per back edge."""
    dom = dominators(cfg)
    loops: List[NaturalLoop] = []
    for src, header in find_back_edges(cfg, dom):
        body = {header, src}
        stack = [src]
        while stack:
            node = stack.pop()
            if node == header:
                continue
            for pred in cfg.predecessors(node):
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        loops.append(NaturalLoop(header=header, back_edge=(src, header), body=body))
    return loops


def loop_nesting_depth(cfg: CFG) -> Dict[int, int]:
    """Per-block loop nesting depth (0 = not in any loop)."""
    depth: Dict[int, int] = {bid: 0 for bid in cfg.blocks}
    for loop in natural_loops(cfg):
        for bid in loop.body:
            depth[bid] += 1
    return depth
