"""Graphviz DOT export of CFGs (debugging / documentation aid)."""

from __future__ import annotations

from .basic_block import BlockKind
from .graph import CFG

_COLORS = {
    BlockKind.ENTRY: "lightgreen",
    BlockKind.EXIT: "lightcoral",
    BlockKind.COLLECTIVE: "gold",
    BlockKind.CALL: "khaki",
    BlockKind.CONDITION: "lightblue",
    BlockKind.OMP_PARALLEL: "plum",
    BlockKind.OMP_SINGLE: "palegreen",
    BlockKind.OMP_MASTER: "palegreen",
    BlockKind.OMP_BARRIER: "orange",
}


def to_dot(cfg: CFG, highlight: set | None = None) -> str:
    """Render ``cfg`` as a DOT digraph; ``highlight`` ids get a red border."""
    highlight = highlight or set()
    lines = [f'digraph "{cfg.func_name}" {{', "  node [shape=box, style=filled];"]
    for block in cfg:
        color = _COLORS.get(block.kind, "white")
        extra = ", color=red, penwidth=2" if block.id in highlight else ""
        label = block.label().replace('"', "'")
        lines.append(f'  n{block.id} [label="{label}", fillcolor={color}{extra}];')
    for src, dst in cfg.edge_list():
        style = " [style=dashed]" if (src, dst) in cfg.virtual_edges else ""
        lines.append(f"  n{src} -> n{dst}{style};")
    lines.append("}")
    return "\n".join(lines) + "\n"
