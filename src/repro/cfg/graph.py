"""The control-flow graph container.

A :class:`CFG` owns its blocks and the (ordered) successor/predecessor
adjacency.  It always has a unique ``entry`` and a unique ``exit`` block;
``ensure_exit_reachable`` adds virtual edges so post-dominance is well
defined even with infinite loops.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .basic_block import BasicBlock, BlockKind


class CFG:
    def __init__(self, func_name: str = "<anon>") -> None:
        self.func_name = func_name
        self.blocks: Dict[int, BasicBlock] = {}
        self._succ: Dict[int, List[int]] = {}
        self._pred: Dict[int, List[int]] = {}
        self._next_id = 0
        self.entry_id: int = -1
        self.exit_id: int = -1
        #: Edges added only to make the exit reachable (ignored by execution).
        self.virtual_edges: Set[Tuple[int, int]] = set()
        #: Dominator-tree caches (filled by repro.cfg.dominance; CFGs are
        #: immutable once built, so the compiler and PARCOACH share them).
        self.dom_cache = None
        self.pdom_cache = None

    # -- construction ---------------------------------------------------------

    def new_block(self, kind: BlockKind, **kwargs) -> BasicBlock:
        block = BasicBlock(id=self._next_id, kind=kind, **kwargs)
        self.blocks[block.id] = block
        self._succ[block.id] = []
        self._pred[block.id] = []
        self._next_id += 1
        return block

    def add_edge(self, src: int, dst: int, virtual: bool = False) -> None:
        if dst not in self._succ[src]:
            self._succ[src].append(dst)
            self._pred[dst].append(src)
        if virtual:
            self.virtual_edges.add((src, dst))

    # -- queries ------------------------------------------------------------------

    def successors(self, block_id: int) -> List[int]:
        return list(self._succ[block_id])

    def predecessors(self, block_id: int) -> List[int]:
        return list(self._pred[block_id])

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_id]

    @property
    def exit(self) -> BasicBlock:
        return self.blocks[self.exit_id]

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterable[BasicBlock]:
        return iter(self.blocks.values())

    def blocks_of_kind(self, *kinds: BlockKind) -> List[BasicBlock]:
        wanted = set(kinds)
        return [b for b in self.blocks.values() if b.kind in wanted]

    def collective_blocks(self) -> List[BasicBlock]:
        return self.blocks_of_kind(BlockKind.COLLECTIVE)

    def branch_blocks(self) -> List[BasicBlock]:
        return [b for b in self.blocks.values() if len(self._succ[b.id]) > 1]

    # -- traversals --------------------------------------------------------------

    def reverse_postorder(self, start: Optional[int] = None,
                          reverse_graph: bool = False) -> List[int]:
        """Reverse postorder over (possibly reversed) edges from ``start``."""
        if start is None:
            start = self.exit_id if reverse_graph else self.entry_id
        adj = self._pred if reverse_graph else self._succ
        seen: Set[int] = set()
        order: List[int] = []
        # Iterative DFS with an explicit stack to avoid recursion limits on
        # the large generated benchmark programs.
        stack: List[Tuple[int, int]] = [(start, 0)]
        seen.add(start)
        while stack:
            node, i = stack[-1]
            succs = adj[node]
            if i < len(succs):
                stack[-1] = (node, i + 1)
                nxt = succs[i]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(node)
        order.reverse()
        return order

    def reachable_from_entry(self) -> Set[int]:
        return set(self.reverse_postorder(self.entry_id))

    def can_reach_exit(self) -> Set[int]:
        return set(self.reverse_postorder(self.exit_id, reverse_graph=True))

    # -- normalization ---------------------------------------------------------------

    def remove_unreachable(self) -> int:
        """Drop blocks not reachable from entry (keep exit). Returns count removed."""
        reachable = self.reachable_from_entry()
        reachable.add(self.exit_id)
        doomed = [bid for bid in self.blocks if bid not in reachable]
        for bid in doomed:
            for succ in self._succ.pop(bid, []):
                if succ in self._pred:
                    self._pred[succ] = [p for p in self._pred[succ] if p != bid]
            for pred in self._pred.pop(bid, []):
                if pred in self._succ:
                    self._succ[pred] = [s for s in self._succ[pred] if s != bid]
            del self.blocks[bid]
        return len(doomed)

    def ensure_exit_reachable(self) -> int:
        """Add virtual edges so every block can reach exit (infinite loops).

        Returns the number of virtual edges added.  Needed for post-dominator
        computation; execution semantics are unaffected because virtual edges
        are recorded in :attr:`virtual_edges`.
        """
        added = 0
        while True:
            can_reach = self.can_reach_exit()
            stuck = [bid for bid in self.blocks if bid not in can_reach]
            if not stuck:
                return added
            # Pick the smallest stuck id that is reachable from entry to keep
            # the virtual structure deterministic.
            reachable = self.reachable_from_entry()
            candidates = [b for b in stuck if b in reachable] or stuck
            self.add_edge(min(candidates), self.exit_id, virtual=True)
            added += 1

    def validate(self) -> List[str]:
        """Structural sanity checks; returns a list of problem descriptions."""
        problems: List[str] = []
        if self.entry_id not in self.blocks:
            problems.append("missing entry block")
        if self.exit_id not in self.blocks:
            problems.append("missing exit block")
        for bid, succs in self._succ.items():
            for s in succs:
                if s not in self.blocks:
                    problems.append(f"edge {bid}->{s} to unknown block")
                elif bid not in self._pred[s]:
                    problems.append(f"asymmetric edge {bid}->{s}")
        for block in self.blocks.values():
            nsucc = len(self._succ[block.id])
            if block.kind is BlockKind.CONDITION and nsucc != 2:
                problems.append(f"condition block {block.id} has {nsucc} successors")
            if block.kind is BlockKind.EXIT and nsucc != 0:
                problems.append(f"exit block has successors {self._succ[block.id]}")
            if block.kind is BlockKind.COLLECTIVE:
                n_coll = sum(
                    1 for s in block.stmts
                    for _ in [0]
                )
                if block.collective is None:
                    problems.append(f"collective block {block.id} without collective name")
        return problems

    def edge_list(self) -> List[Tuple[int, int]]:
        return [(src, dst) for src, succs in self._succ.items() for dst in succs]
