"""The control-flow graph container.

A :class:`CFG` owns its blocks and the (ordered) successor/predecessor
adjacency.  It always has a unique ``entry`` and a unique ``exit`` block;
``ensure_exit_reachable`` adds virtual edges so post-dominance is well
defined even with infinite loops.

Adjacency is **frozen** once construction ends (:meth:`freeze`):
``successors``/``predecessors`` then return the internal tuples directly —
zero-copy views safe to hand out because tuples are immutable.  Every
fixpoint loop in the analyses (dominators, dataflow, possible-counts) sits
on top of these accessors, so the freeze removes one list allocation per
visited edge per iteration.  Unfrozen graphs (hand-built in tests) still
get defensive copies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..minilang import ast_nodes as A
from ..mpi.collectives import is_collective
from .basic_block import BasicBlock, BlockKind


class CFG:
    def __init__(self, func_name: str = "<anon>") -> None:
        self.func_name = func_name
        self.blocks: Dict[int, BasicBlock] = {}
        self._succ: Dict[int, Sequence[int]] = {}
        self._pred: Dict[int, Sequence[int]] = {}
        self._frozen = False
        self._next_id = 0
        self.entry_id: int = -1
        self.exit_id: int = -1
        #: Edges added only to make the exit reachable (ignored by execution).
        self.virtual_edges: Set[Tuple[int, int]] = set()
        #: Dominator-tree caches (filled by repro.cfg.dominance; CFGs are
        #: immutable once built, so the compiler and PARCOACH share them).
        self.dom_cache = None
        self.pdom_cache = None

    # -- construction ---------------------------------------------------------

    def new_block(self, kind: BlockKind, **kwargs) -> BasicBlock:
        self._check_mutable()
        block = BasicBlock(id=self._next_id, kind=kind, **kwargs)
        self.blocks[block.id] = block
        self._succ[block.id] = []
        self._pred[block.id] = []
        self._next_id += 1
        return block

    def add_edge(self, src: int, dst: int, virtual: bool = False) -> None:
        self._check_mutable()
        if dst not in self._succ[src]:
            self._succ[src].append(dst)  # type: ignore[union-attr]
            self._pred[dst].append(src)  # type: ignore[union-attr]
        if virtual:
            self.virtual_edges.add((src, dst))

    def _check_mutable(self) -> None:
        if self._frozen:
            raise RuntimeError(
                f"CFG of {self.func_name!r} is frozen; structural mutation "
                f"after construction is not allowed"
            )

    def freeze(self) -> "CFG":
        """Seal the graph: adjacency becomes immutable tuples and the
        accessors below switch to zero-copy views.  Idempotent."""
        if not self._frozen:
            self._succ = {bid: tuple(s) for bid, s in self._succ.items()}
            self._pred = {bid: tuple(p) for bid, p in self._pred.items()}
            self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    # -- queries ------------------------------------------------------------------

    def successors(self, block_id: int) -> Sequence[int]:
        """Ordered successors — a read-only view (tuple) once frozen."""
        succs = self._succ[block_id]
        return succs if self._frozen else tuple(succs)

    def predecessors(self, block_id: int) -> Sequence[int]:
        """Ordered predecessors — a read-only view (tuple) once frozen."""
        preds = self._pred[block_id]
        return preds if self._frozen else tuple(preds)

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_id]

    @property
    def exit(self) -> BasicBlock:
        return self.blocks[self.exit_id]

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterable[BasicBlock]:
        return iter(self.blocks.values())

    def blocks_of_kind(self, *kinds: BlockKind) -> List[BasicBlock]:
        wanted = set(kinds)
        return [b for b in self.blocks.values() if b.kind in wanted]

    def collective_blocks(self) -> List[BasicBlock]:
        return self.blocks_of_kind(BlockKind.COLLECTIVE)

    def branch_blocks(self) -> List[BasicBlock]:
        return [b for b in self.blocks.values() if len(self._succ[b.id]) > 1]

    # -- traversals --------------------------------------------------------------

    def reverse_postorder(self, start: Optional[int] = None,
                          reverse_graph: bool = False) -> List[int]:
        """Reverse postorder over (possibly reversed) edges from ``start``."""
        if start is None:
            start = self.exit_id if reverse_graph else self.entry_id
        adj = self._pred if reverse_graph else self._succ
        seen: Set[int] = set()
        order: List[int] = []
        # Iterative DFS with an explicit stack to avoid recursion limits on
        # the large generated benchmark programs.
        stack: List[Tuple[int, int]] = [(start, 0)]
        seen.add(start)
        while stack:
            node, i = stack[-1]
            succs = adj[node]
            if i < len(succs):
                stack[-1] = (node, i + 1)
                nxt = succs[i]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(node)
        order.reverse()
        return order

    def reachable_from_entry(self) -> Set[int]:
        return set(self.reverse_postorder(self.entry_id))

    def can_reach_exit(self) -> Set[int]:
        return set(self.reverse_postorder(self.exit_id, reverse_graph=True))

    # -- normalization ---------------------------------------------------------------

    def remove_unreachable(self) -> int:
        """Drop blocks not reachable from entry (keep exit). Returns count removed."""
        self._check_mutable()
        reachable = self.reachable_from_entry()
        reachable.add(self.exit_id)
        doomed = [bid for bid in self.blocks if bid not in reachable]
        for bid in doomed:
            for succ in self._succ.pop(bid, []):
                if succ in self._pred:
                    self._pred[succ] = [p for p in self._pred[succ] if p != bid]
            for pred in self._pred.pop(bid, []):
                if pred in self._succ:
                    self._succ[pred] = [s for s in self._succ[pred] if s != bid]
            del self.blocks[bid]
        return len(doomed)

    def ensure_exit_reachable(self) -> int:
        """Add virtual edges so every block can reach exit (infinite loops).

        Returns the number of virtual edges added.  Needed for post-dominator
        computation; execution semantics are unaffected because virtual edges
        are recorded in :attr:`virtual_edges`.

        Single reverse-reachability pass: the can-reach-exit set is computed
        once and updated incrementally after each virtual edge (everything
        that reaches the new edge's source now reaches exit), instead of the
        former recompute-from-scratch loop — O(V+E) total instead of
        O(edges_added * (V+E)).
        """
        self._check_mutable()
        can_reach = self.can_reach_exit()
        stuck = {bid for bid in self.blocks if bid not in can_reach}
        if not stuck:
            return 0
        # Forward reachability never changes here: a virtual edge targets the
        # exit, which has no successors, so one pass suffices for candidates.
        reachable = self.reachable_from_entry()
        added = 0
        while stuck:
            # Pick the smallest stuck id that is reachable from entry to keep
            # the virtual structure deterministic.
            candidates = [b for b in stuck if b in reachable] or sorted(stuck)
            chosen = min(candidates)
            self.add_edge(chosen, self.exit_id, virtual=True)
            added += 1
            # Everything that can reach `chosen` can now reach the exit.
            can_reach.add(chosen)
            stuck.discard(chosen)
            work = [chosen]
            while work:
                node = work.pop()
                for pred in self._pred[node]:
                    if pred not in can_reach:
                        can_reach.add(pred)
                        stuck.discard(pred)
                        work.append(pred)
        return added

    def validate(self) -> List[str]:
        """Structural sanity checks; returns a list of problem descriptions."""
        problems: List[str] = []
        if self.entry_id not in self.blocks:
            problems.append("missing entry block")
        if self.exit_id not in self.blocks:
            problems.append("missing exit block")
        for bid, succs in self._succ.items():
            for s in succs:
                if s not in self.blocks:
                    problems.append(f"edge {bid}->{s} to unknown block")
                elif bid not in self._pred[s]:
                    problems.append(f"asymmetric edge {bid}->{s}")
        for block in self.blocks.values():
            nsucc = len(self._succ[block.id])
            if block.kind is BlockKind.CONDITION and nsucc != 2:
                problems.append(f"condition block {block.id} has {nsucc} successors")
            if block.kind is BlockKind.EXIT and nsucc != 0:
                problems.append(f"exit block has successors {list(self._succ[block.id])}")
            if block.kind is BlockKind.COLLECTIVE:
                n_coll = sum(
                    1 for s in block.stmts
                    if isinstance(s, A.ExprStmt)
                    and isinstance(s.expr, A.Call)
                    and is_collective(s.expr.name)
                )
                if n_coll != 1:
                    problems.append(
                        f"collective block {block.id} contains {n_coll} "
                        f"collective statements (expected exactly 1)"
                    )
                if block.collective is None:
                    problems.append(f"collective block {block.id} without collective name")
        return problems

    def edge_list(self) -> List[Tuple[int, int]]:
        return [(src, dst) for src, succs in self._succ.items() for dst in succs]
