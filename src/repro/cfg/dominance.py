"""Dominator/post-dominator trees and (iterated) dominance frontiers.

Implementation follows Cooper, Harvey & Kennedy, *A Simple, Fast Dominance
Algorithm* — the same engine serves both directions: post-dominators are
dominators of the reverse graph rooted at the CFG exit.

The **iterated post-dominance frontier** ``PDF+`` is the core of PARCOACH's
Algorithm 1: for the set ``S_c`` of nodes calling collective ``c``,
``PDF+(S_c)`` is exactly the set of branch points where the execution of the
remaining ``c``-sequence may diverge between MPI processes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from .graph import CFG


class DominatorTree:
    """Immediate-(post)dominator tree for a CFG.

    Parameters
    ----------
    cfg:
        The graph to analyse.
    post:
        When True compute *post*-dominators (reverse graph, rooted at exit).
    """

    def __init__(self, cfg: CFG, post: bool = False) -> None:
        self.cfg = cfg
        self.post = post
        self.root = cfg.exit_id if post else cfg.entry_id
        self._preds = cfg.successors if post else cfg.predecessors
        self._succs = cfg.predecessors if post else cfg.successors
        #: node -> immediate dominator (root maps to itself)
        self.idom: Dict[int, int] = {}
        self._rpo: List[int] = cfg.reverse_postorder(self.root, reverse_graph=post)
        self._rpo_index = {b: i for i, b in enumerate(self._rpo)}
        self._compute()
        self._children: Optional[Dict[int, List[int]]] = None
        self._frontier: Optional[Dict[int, Set[int]]] = None

    # -- Cooper–Harvey–Kennedy ------------------------------------------------

    def _intersect(self, a: int, b: int) -> int:
        while a != b:
            while self._rpo_index[a] > self._rpo_index[b]:
                a = self.idom[a]
            while self._rpo_index[b] > self._rpo_index[a]:
                b = self.idom[b]
        return a

    def _compute(self) -> None:
        self.idom = {self.root: self.root}
        changed = True
        while changed:
            changed = False
            for node in self._rpo:
                if node == self.root:
                    continue
                new_idom: Optional[int] = None
                for pred in self._preds(node):
                    if pred not in self._rpo_index:
                        continue  # unreachable in this direction
                    if pred in self.idom:
                        new_idom = pred if new_idom is None else self._intersect(new_idom, pred)
                if new_idom is None:
                    continue
                if self.idom.get(node) != new_idom:
                    self.idom[node] = new_idom
                    changed = True

    # -- queries -----------------------------------------------------------------

    def dominates(self, a: int, b: int) -> bool:
        """True when ``a`` (post)dominates ``b`` (reflexive)."""
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom.get(node)
            if parent is None or parent == node:
                return node == a
            node = parent

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    def children(self) -> Dict[int, List[int]]:
        """Dominator-tree children mapping."""
        if self._children is None:
            kids: Dict[int, List[int]] = {n: [] for n in self.idom}
            for node, parent in self.idom.items():
                if node != parent:
                    kids[parent].append(node)
            self._children = kids
        return self._children

    def dominance_frontier(self) -> Dict[int, Set[int]]:
        """Classic per-node dominance frontier (Cytron et al. via CHK)."""
        if self._frontier is not None:
            return self._frontier
        frontier: Dict[int, Set[int]] = {n: set() for n in self.idom}
        for node in self.idom:
            preds = [p for p in self._preds(node) if p in self.idom]
            if len(preds) >= 2:
                for pred in preds:
                    runner = pred
                    while runner != self.idom[node]:
                        frontier.setdefault(runner, set()).add(node)
                        nxt = self.idom.get(runner)
                        if nxt is None or nxt == runner:
                            break
                        runner = nxt
        self._frontier = frontier
        return frontier

    def iterated_frontier(self, nodes: Iterable[int]) -> Set[int]:
        """Iterated (post)dominance frontier ``DF+``/``PDF+`` of ``nodes``."""
        frontier = self.dominance_frontier()
        result: Set[int] = set()
        work = [n for n in nodes if n in self.idom]
        seen: Set[int] = set(work)
        while work:
            node = work.pop()
            for f in frontier.get(node, ()):  # frontier nodes are branch points
                if f not in result:
                    result.add(f)
                    if f not in seen:
                        seen.add(f)
                        work.append(f)
        return result


def dominators(cfg: CFG) -> DominatorTree:
    """Dominator tree of ``cfg`` (cached on the graph — CFGs are immutable
    once built, and PARCOACH reuses the compiler's trees)."""
    if cfg.dom_cache is None:
        cfg.dom_cache = DominatorTree(cfg, post=False)
    return cfg.dom_cache


def post_dominators(cfg: CFG) -> DominatorTree:
    """Post-dominator tree of ``cfg`` (cached, see :func:`dominators`)."""
    if cfg.pdom_cache is None:
        cfg.pdom_cache = DominatorTree(cfg, post=True)
    return cfg.pdom_cache


def pdf_plus(cfg: CFG, nodes: Iterable[int],
             pdom: Optional[DominatorTree] = None) -> Set[int]:
    """``PDF+`` of ``nodes`` — PARCOACH Algorithm 1's divergence points."""
    tree = pdom if pdom is not None else post_dominators(cfg)
    return tree.iterated_frontier(nodes)
