"""Dominator/post-dominator trees and (iterated) dominance frontiers.

Implementation follows Cooper, Harvey & Kennedy, *A Simple, Fast Dominance
Algorithm* — the same engine serves both directions: post-dominators are
dominators of the reverse graph rooted at the CFG exit.

Dominance queries are O(1): after the idom fixpoint the tree is numbered by
a DFS interval (Euler-tour) pass, so ``a dominates b`` is two integer
comparisons (``tin[a] <= tin[b] <= tout[a]``) instead of an O(depth) walk up
the parent chain.  The chain walk survives as :meth:`dominates_via_chain`,
the oracle the property tests compare against.

The **iterated post-dominance frontier** ``PDF+`` is the core of PARCOACH's
Algorithm 1: for the set ``S_c`` of nodes calling collective ``c``,
``PDF+(S_c)`` is exactly the set of branch points where the execution of the
remaining ``c``-sequence may diverge between MPI processes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .graph import CFG


class DominatorTree:
    """Immediate-(post)dominator tree for a CFG.

    Parameters
    ----------
    cfg:
        The graph to analyse.
    post:
        When True compute *post*-dominators (reverse graph, rooted at exit).
    """

    def __init__(self, cfg: CFG, post: bool = False) -> None:
        self.cfg = cfg
        self.post = post
        self.root = cfg.exit_id if post else cfg.entry_id
        self._preds = cfg.successors if post else cfg.predecessors
        self._succs = cfg.predecessors if post else cfg.successors
        #: node -> immediate dominator (root maps to itself)
        self.idom: Dict[int, int] = {}
        self._rpo: List[int] = cfg.reverse_postorder(self.root, reverse_graph=post)
        self._rpo_index = {b: i for i, b in enumerate(self._rpo)}
        self._compute()
        self._children: Optional[Dict[int, List[int]]] = None
        self._frontier: Optional[Dict[int, Set[int]]] = None
        #: DFS interval numbering of the dominator tree (lazy; O(1) queries).
        self._tin: Optional[Dict[int, int]] = None
        self._tout: Optional[Dict[int, int]] = None

    # -- Cooper–Harvey–Kennedy ------------------------------------------------

    def _intersect(self, a: int, b: int) -> int:
        idom = self.idom
        index = self._rpo_index
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    def _compute(self) -> None:
        self.idom = {self.root: self.root}
        changed = True
        while changed:
            changed = False
            for node in self._rpo:
                if node == self.root:
                    continue
                new_idom: Optional[int] = None
                for pred in self._preds(node):
                    if pred not in self._rpo_index:
                        continue  # unreachable in this direction
                    if pred in self.idom:
                        new_idom = pred if new_idom is None else self._intersect(new_idom, pred)
                if new_idom is None:
                    continue
                if self.idom.get(node) != new_idom:
                    self.idom[node] = new_idom
                    changed = True

    # -- interval numbering ----------------------------------------------------

    def _ensure_intervals(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Number the dominator tree with DFS entry/exit times.

        ``a`` dominates ``b`` iff ``tin[a] <= tin[b] <= tout[a]`` — the
        subtree of ``a`` occupies the contiguous interval
        ``[tin[a], tout[a]]`` of entry times.
        """
        if self._tin is None:
            children = self.children()
            tin: Dict[int, int] = {}
            tout: Dict[int, int] = {}
            clock = 0
            # Iterative DFS (generated benchmark CFGs nest deeply).
            stack: List[Tuple[int, bool]] = [(self.root, False)]
            while stack:
                node, done = stack.pop()
                if done:
                    tout[node] = clock - 1
                    continue
                tin[node] = clock
                clock += 1
                stack.append((node, True))
                for child in reversed(children.get(node, ())):
                    stack.append((child, False))
            self._tin, self._tout = tin, tout
        return self._tin, self._tout  # type: ignore[return-value]

    # -- queries -----------------------------------------------------------------

    def dominates(self, a: int, b: int) -> bool:
        """True when ``a`` (post)dominates ``b`` (reflexive) — O(1)."""
        if a == b:
            return True
        tin, tout = self._ensure_intervals()
        ta = tin.get(a)
        tb = tin.get(b)
        if ta is None or tb is None:
            return False  # unreachable nodes dominate only themselves
        return ta <= tb <= tout[a]

    def dominates_via_chain(self, a: int, b: int) -> bool:
        """O(depth) parent-chain oracle for :meth:`dominates` (kept for the
        property tests; not used on any hot path)."""
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom.get(node)
            if parent is None or parent == node:
                return node == a
            node = parent

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    def children(self) -> Dict[int, List[int]]:
        """Dominator-tree children mapping."""
        if self._children is None:
            kids: Dict[int, List[int]] = {n: [] for n in self.idom}
            for node, parent in self.idom.items():
                if node != parent:
                    kids[parent].append(node)
            self._children = kids
        return self._children

    def dominance_frontier(self) -> Dict[int, Set[int]]:
        """Classic per-node dominance frontier (Cytron et al. via CHK).

        One pass over a precomputed join-point predecessor table; the runner
        walks stop at ``idom[join]`` exactly as in CHK.
        """
        if self._frontier is not None:
            return self._frontier
        idom = self.idom
        frontier: Dict[int, Set[int]] = {n: set() for n in idom}
        # Precompute the (filtered) predecessor table of the join points —
        # only nodes with >= 2 reachable predecessors contribute.
        joins: List[Tuple[int, List[int]]] = []
        for node in idom:
            preds = [p for p in self._preds(node) if p in idom]
            if len(preds) >= 2:
                joins.append((node, preds))
        for node, preds in joins:
            stop = idom[node]
            for runner in preds:
                while runner != stop:
                    frontier[runner].add(node)
                    nxt = idom.get(runner)
                    if nxt is None or nxt == runner:
                        break
                    runner = nxt
        self._frontier = frontier
        return frontier

    def iterated_frontier(self, nodes: Iterable[int]) -> Set[int]:
        """Iterated (post)dominance frontier ``DF+``/``PDF+`` of ``nodes``."""
        frontier = self.dominance_frontier()
        result: Set[int] = set()
        work = [n for n in nodes if n in self.idom]
        seen: Set[int] = set(work)
        while work:
            node = work.pop()
            for f in frontier.get(node, ()):  # frontier nodes are branch points
                if f not in result:
                    result.add(f)
                    if f not in seen:
                        seen.add(f)
                        work.append(f)
        return result


def dominators(cfg: CFG) -> DominatorTree:
    """Dominator tree of ``cfg`` (cached on the graph — CFGs are immutable
    once built, and PARCOACH reuses the compiler's trees)."""
    if cfg.dom_cache is None:
        cfg.dom_cache = DominatorTree(cfg, post=False)
    return cfg.dom_cache


def post_dominators(cfg: CFG) -> DominatorTree:
    """Post-dominator tree of ``cfg`` (cached, see :func:`dominators`)."""
    if cfg.pdom_cache is None:
        cfg.pdom_cache = DominatorTree(cfg, post=True)
    return cfg.pdom_cache


def pdf_plus(cfg: CFG, nodes: Iterable[int],
             pdom: Optional[DominatorTree] = None) -> Set[int]:
    """``PDF+`` of ``nodes`` — PARCOACH Algorithm 1's divergence points."""
    tree = pdom if pdom is not None else post_dominators(cfg)
    return tree.iterated_frontier(nodes)
