"""simmpi — the in-process MPI simulator substrate."""

from .engine import CollectiveEngine
from .mailbox import Mailbox
from .process import MpiProcess
from .world import MpiWorld, RunResult

__all__ = ["CollectiveEngine", "Mailbox", "MpiProcess", "MpiWorld", "RunResult"]
