"""The simulated MPI world: N ranks, one Python thread each.

``MpiWorld.run(target)`` spawns one thread per rank executing
``target(proc)``; the first :class:`ValidationError` raised anywhere aborts
the world (all blocked waits unwind via :class:`AbortedError`) and becomes
the run's verdict.  A rank finishing while peers wait in a collective is
detected as a deadlock by the engines.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ...mpi.thread_levels import ThreadLevel
from ..errors import AbortedError, ValidationError
from .engine import CollectiveEngine
from .mailbox import Mailbox
from .process import MpiProcess


@dataclass
class RunResult:
    """Outcome of one simulated MPI run."""

    nprocs: int
    error: Optional[ValidationError] = None
    #: rank -> lines printed by the program.
    outputs: Dict[int, List[str]] = field(default_factory=dict)
    #: rank -> value returned by the entry function (if any).
    returns: Dict[int, object] = field(default_factory=dict)
    #: Counters from the inserted checks (CC calls executed, ENTER checks).
    cc_calls: int = 0
    enter_checks: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def verdict(self) -> str:
        if self.error is None:
            return "clean"
        return type(self.error).__name__

    @property
    def detected_by(self) -> str:
        return self.error.detected_by if self.error is not None else ""


class MpiWorld:
    def __init__(self, nprocs: int, thread_level: ThreadLevel = ThreadLevel.MULTIPLE,
                 timeout: float = 20.0) -> None:
        if nprocs < 1:
            raise ValueError("need at least one rank")
        self.nprocs = nprocs
        self.thread_level = thread_level
        self.timeout = timeout
        self.clock = time.monotonic
        self._abort_lock = threading.Lock()
        self.abort_error: Optional[ValidationError] = None
        self.aborted = threading.Event()
        self.finished_ranks: Set[int] = set()
        self.engine = CollectiveEngine(self, list(range(nprocs)))
        self.mailbox = Mailbox(self)
        self.procs = [MpiProcess(self, rank) for rank in range(nprocs)]

    # -- abort protocol -----------------------------------------------------------

    def abort(self, error: ValidationError) -> None:
        """Record the first verdict and wake every blocked wait."""
        with self._abort_lock:
            if self.abort_error is None:
                self.abort_error = error
        self.aborted.set()
        with self.engine.cond:
            self.engine.cond.notify_all()
        with self.mailbox.cond:
            self.mailbox.cond.notify_all()

    def check_abort(self) -> None:
        if self.aborted.is_set():
            raise AbortedError()

    # -- execution ------------------------------------------------------------------

    def run(self, target: Callable[[MpiProcess], object]) -> RunResult:
        """Run ``target(proc)`` on every rank; collect the verdict."""
        result = RunResult(nprocs=self.nprocs)
        start = time.perf_counter()

        def runner(proc: MpiProcess) -> None:
            try:
                proc.main_thread = threading.current_thread()
                result.returns[proc.rank] = target(proc)
            except ValidationError as err:
                if err.rank is None:
                    err.rank = proc.rank
                self.abort(err)
            except AbortedError:
                pass
            except Exception as err:  # noqa: BLE001 - surface interpreter bugs
                wrapped = ValidationError(f"internal error on rank {proc.rank}: {err!r}")
                wrapped.rank = proc.rank
                self.abort(wrapped)
            finally:
                self.finished_ranks.add(proc.rank)
                self.engine.on_proc_finished(proc.rank)

        threads = [
            threading.Thread(target=runner, args=(proc,), name=f"rank-{proc.rank}",
                             daemon=True)
            for proc in self.procs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=self.timeout * 3)

        result.error = self.abort_error
        result.elapsed = time.perf_counter() - start
        for proc in self.procs:
            result.outputs[proc.rank] = proc.output
            result.cc_calls += proc.cc_calls
            result.enter_checks += proc.enter_checks
        return result
