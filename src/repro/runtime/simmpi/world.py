"""The simulated MPI world: N ranks, one Python thread each.

``MpiWorld.run(target)`` spawns one thread per rank executing
``target(proc)``; the first :class:`ValidationError` raised anywhere aborts
the world (all blocked waits unwind via :class:`AbortedError`) and becomes
the run's verdict.  A rank finishing while peers wait in a collective is
detected as a deadlock by the engines.

Every blocking decision point delegates to the world's
:class:`~repro.runtime.schedpoint.ExecutionHooks` (see ``schedpoint.py``):
the default is free-running OS threads with condition notification; when a
cooperative scheduler from :mod:`repro.explore` is installed instead, the
run is deterministic, time is virtual, and deadlocks are detected
structurally the moment every logical thread is blocked.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ...mpi.thread_levels import ThreadLevel
from ..errors import AbortedError, DeadlockError, ValidationError
from ..schedpoint import THREADED_HOOKS, ExecutionHooks
from .engine import CollectiveEngine
from .mailbox import Mailbox
from .process import MpiProcess


@dataclass
class RunResult:
    """Outcome of one simulated MPI run."""

    nprocs: int
    error: Optional[ValidationError] = None
    #: rank -> lines printed by the program.
    outputs: Dict[int, List[str]] = field(default_factory=dict)
    #: rank -> value returned by the entry function (if any).
    returns: Dict[int, object] = field(default_factory=dict)
    #: Counters from the inserted checks (CC calls executed, ENTER checks).
    cc_calls: int = 0
    enter_checks: int = 0
    elapsed: float = 0.0
    #: Completed collective rounds (op name, signature) — the run's
    #: communication history, used by trace replay validation.
    history: List[Tuple[str, tuple]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def verdict(self) -> str:
        if self.error is None:
            return "clean"
        return type(self.error).__name__

    @property
    def detected_by(self) -> str:
        return self.error.detected_by if self.error is not None else ""


class MpiWorld:
    def __init__(self, nprocs: int, thread_level: ThreadLevel = ThreadLevel.MULTIPLE,
                 timeout: float = 20.0, hooks: Optional[ExecutionHooks] = None) -> None:
        if nprocs < 1:
            raise ValueError("need at least one rank")
        self.nprocs = nprocs
        self.thread_level = thread_level
        self.timeout = timeout
        self.hooks = hooks if hooks is not None else THREADED_HOOKS
        self.clock = self.hooks.clock
        self._abort_lock = threading.Lock()
        self.abort_error: Optional[ValidationError] = None
        self.aborted = threading.Event()
        self._wait_conds: Set[threading.Condition] = set()
        self._fingerprint_providers: Dict[str, Callable[[], object]] = {}
        self.finished_ranks: Set[int] = set()
        self.engine = CollectiveEngine(self, list(range(nprocs)))
        self.mailbox = Mailbox(self)
        self.procs = [MpiProcess(self, rank) for rank in range(nprocs)]

    # -- hook façade ---------------------------------------------------------------

    def yield_point(self, kind: str, detail: str = "") -> None:
        self.hooks.yield_point(self, kind, detail)

    def wait(self, cond: threading.Condition, describe: str = "",
             predicate=None) -> None:
        """Block on ``cond`` (held by the caller) until its state may have
        changed; callers loop on their own condition."""
        self.hooks.wait(self, cond, describe, predicate)

    def notify(self, cond: threading.Condition) -> None:
        """State guarded by ``cond`` (held by the caller) changed."""
        self.hooks.notify(self, cond)

    def note_access(self, obj: str, mode: str = "w") -> None:
        """The running thread touched shared object ``obj`` (footprints)."""
        self.hooks.note_access(obj, mode)

    def note_observation(self, value) -> None:
        """The running thread observed ``value`` (state fingerprints)."""
        self.hooks.note_observation(value)

    def register_wait_cond(self, cond: threading.Condition) -> None:
        with self._abort_lock:
            self._wait_conds.add(cond)

    # -- state fingerprinting ------------------------------------------------------

    def register_fingerprint_provider(self, key: str, provider) -> None:
        """Register a component (e.g. a rank's interpreter) that contributes
        shared state to :meth:`fingerprint_state`; keyed so composition
        order never depends on thread startup order."""
        self._fingerprint_providers[key] = provider

    def fingerprint_state(self):
        """Canonical snapshot of all world-level shared state, consumed by
        the cooperative scheduler's per-decision state hash."""
        providers = tuple(
            (key, self._fingerprint_providers[key]())
            for key in sorted(self._fingerprint_providers)
        )
        return (
            tuple(sorted(self.finished_ranks)),
            self.aborted.is_set(),
            self.engine.fingerprint_state(),
            self.mailbox.fingerprint_state(),
            tuple(proc.fingerprint_state() for proc in self.procs),
            providers,
        )

    # -- abort protocol -----------------------------------------------------------

    def abort(self, error: ValidationError) -> None:
        """Record the first verdict and wake every blocked wait."""
        with self._abort_lock:
            if self.abort_error is None:
                self.abort_error = error
            conds = list(self._wait_conds)
        self.aborted.set()
        self.hooks.on_abort(self)
        for cond in conds:
            # Best-effort: an RLock held by *this* thread re-enters fine; one
            # held by another thread is skipped — its owner is either about
            # to wait (and re-checks the abort flag first) or already
            # waiting with the fallback timeout as a bound.
            if cond.acquire(blocking=False):
                try:
                    cond.notify_all()
                finally:
                    cond.release()

    def check_abort(self) -> None:
        if self.aborted.is_set():
            raise AbortedError()

    # -- execution ------------------------------------------------------------------

    def run(self, target: Callable[[MpiProcess], object]) -> RunResult:
        """Run ``target(proc)`` on every rank; collect the verdict."""
        result = RunResult(nprocs=self.nprocs)
        start = time.perf_counter()
        cooperative = self.hooks.cooperative

        def runner(proc: MpiProcess, name: str) -> None:
            if cooperative:
                self.hooks.attach(name)
            try:
                proc.main_thread = threading.current_thread()
                result.returns[proc.rank] = target(proc)
            except ValidationError as err:
                if err.rank is None:
                    err.rank = proc.rank
                self.abort(err)
            except AbortedError:
                pass
            except Exception as err:  # noqa: BLE001 - surface interpreter bugs
                wrapped = ValidationError(f"internal error on rank {proc.rank}: {err!r}")
                wrapped.rank = proc.rank
                self.abort(wrapped)
            finally:
                self.finished_ranks.add(proc.rank)
                self.engine.on_proc_finished(proc.rank)
                if cooperative:
                    self.hooks.detach()

        names = [f"r{proc.rank}" for proc in self.procs]
        threads = [
            threading.Thread(target=runner, args=(proc, name),
                             name=f"rank-{proc.rank}", daemon=True)
            for proc, name in zip(self.procs, names)
        ]
        for t in threads:
            t.start()
        if cooperative:
            self.hooks.await_children(names)
            self.hooks.start(self)
        guard = self.hooks.join_timeout(self.timeout)
        if not math.isfinite(guard):
            guard = None
        for t in threads:
            t.join(timeout=guard)
        if any(t.is_alive() for t in threads) and self.abort_error is None:
            self.abort(DeadlockError(
                "run stalled: rank thread(s) still alive past the join guard"
            ))

        result.error = self.abort_error
        result.elapsed = time.perf_counter() - start
        result.history = list(self.engine.history)
        for proc in self.procs:
            result.outputs[proc.rank] = proc.output
            result.cc_calls += proc.cc_calls
            result.enter_checks += proc.enter_checks
        return result
