"""Data semantics of the simulated collectives.

``combine(op, signature, payloads, ranks) -> {rank: value}`` implements the
data movement of each operation; the engine calls it once per completed
round.  Payload conventions (what each rank passes in) are documented per
operation.  Reduction operators: ``sum``, ``prod``, ``min``, ``max``.
"""

from __future__ import annotations

from functools import reduce as _reduce
from typing import Any, Dict, List

_REDUCERS = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": min,
    "max": max,
}


def reduce_values(op: str, values: List[Any]) -> Any:
    if op not in _REDUCERS:
        raise ValueError(f"unknown reduction op {op!r}")
    return _reduce(_REDUCERS[op], values)


def combine(op_name: str, signature: tuple, payloads: Dict[int, Any],
            ranks: List[int]) -> Dict[int, Any]:
    """Per-rank results of one completed collective round."""
    ordered = sorted(ranks)

    if op_name in ("MPI_Barrier", "MPI_Finalize", "barrier"):
        return {r: None for r in ranks}

    if op_name == "MPI_Bcast":
        root = signature[0]
        value = payloads[root]
        return {r: value for r in ranks}

    if op_name == "MPI_Reduce":
        root, red = signature
        combined = reduce_values(red, [payloads[r] for r in ordered])
        return {r: (combined if r == root else None) for r in ranks}

    if op_name == "MPI_Allreduce":
        (red,) = signature
        combined = reduce_values(red, [payloads[r] for r in ordered])
        return {r: combined for r in ranks}

    if op_name == "MPI_Gather":
        root = signature[0]
        gathered = [payloads[r] for r in ordered]
        return {r: (gathered if r == root else None) for r in ranks}

    if op_name == "MPI_Scatter":
        root = signature[0]
        chunks = payloads[root]
        if not isinstance(chunks, list) or len(chunks) < len(ordered):
            raise ValueError(
                f"MPI_Scatter root buffer must be a list of >= {len(ordered)} items"
            )
        return {r: chunks[i] for i, r in enumerate(ordered)}

    if op_name == "MPI_Allgather":
        gathered = [payloads[r] for r in ordered]
        return {r: list(gathered) for r in ranks}

    if op_name == "MPI_Alltoall":
        n = len(ordered)
        for r in ordered:
            if not isinstance(payloads[r], list) or len(payloads[r]) < n:
                raise ValueError(
                    f"MPI_Alltoall buffers must be lists of >= {n} items"
                )
        return {
            r: [payloads[s][i] for s in ordered]
            for i, r in enumerate(ordered)
        }

    if op_name == "MPI_Scan":
        (red,) = signature
        out: Dict[int, Any] = {}
        acc = None
        for r in ordered:
            acc = payloads[r] if acc is None else _REDUCERS[red](acc, payloads[r])
            out[r] = acc
        return out

    if op_name == "MPI_Exscan":
        (red,) = signature
        out = {}
        acc = None
        for r in ordered:
            out[r] = acc  # rank 0 receives None (undefined in MPI)
            acc = payloads[r] if acc is None else _REDUCERS[red](acc, payloads[r])
        return out

    if op_name == "MPI_Reduce_scatter_block":
        (red,) = signature
        n = len(ordered)
        for r in ordered:
            if not isinstance(payloads[r], list) or len(payloads[r]) < n:
                raise ValueError(
                    f"MPI_Reduce_scatter_block buffers must be lists of >= {n} items"
                )
        combined = [
            reduce_values(red, [payloads[r][i] for r in ordered])
            for i in range(n)
        ]
        return {r: combined[i] for i, r in enumerate(ordered)}

    if op_name == "__CC__":
        colors = list(payloads.values())
        result = (min(colors), max(colors), dict(payloads))
        return {r: result for r in ranks}

    raise ValueError(f"unknown collective {op_name!r}")
