"""Point-to-point message store (one per communicator).

Send is buffered (never blocks); Recv blocks until a matching
``(source, tag)`` message exists, polling the world's abort flag.  Wildcards:
``source=-1`` (any source), ``tag=-1`` (any tag), mirroring
``MPI_ANY_SOURCE``/``MPI_ANY_TAG``.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Tuple

from ..errors import DeadlockError

_POLL = 0.02


class Mailbox:
    def __init__(self, world: "MpiWorld") -> None:  # noqa: F821
        self.world = world
        self.cond = threading.Condition()
        #: dest rank -> list of (source, tag, value), FIFO per (source, tag).
        self.queues: Dict[int, List[Tuple[int, int, Any]]] = {}

    def send(self, source: int, dest: int, tag: int, value: Any) -> None:
        with self.cond:
            self.queues.setdefault(dest, []).append((source, tag, value))
            self.cond.notify_all()

    def recv(self, dest: int, source: int, tag: int) -> Any:
        deadline = self.world.clock() + self.world.timeout
        with self.cond:
            while True:
                queue = self.queues.setdefault(dest, [])
                for i, (src, t, value) in enumerate(queue):
                    if (source in (-1, src)) and (tag in (-1, t)):
                        queue.pop(i)
                        return value
                self.world.check_abort()
                if self.world.clock() > deadline:
                    self.world.abort(DeadlockError(
                        f"deadlock: rank {dest} blocked in MPI_Recv"
                        f"(source={source}, tag={tag}) with no matching send"
                    ))
                    self.world.check_abort()
                self.cond.wait(_POLL)
