"""Point-to-point message store (one per communicator).

Send is buffered (never blocks); Recv blocks until a matching
``(source, tag)`` message exists — woken by sends and abort through the
world's SchedPoint hooks.  Wildcards: ``source=-1`` (any source), ``tag=-1``
(any tag), mirroring ``MPI_ANY_SOURCE``/``MPI_ANY_TAG``.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from ..errors import DeadlockError
from ..schedpoint import SchedPoint


class Mailbox:
    def __init__(self, world: "MpiWorld") -> None:  # noqa: F821
        self.world = world
        self.cond = threading.Condition()
        #: dest rank -> list of (source, tag, value), FIFO per (source, tag).
        self.queues: Dict[int, List[Tuple[int, int, Any]]] = {}

    def send(self, source: int, dest: int, tag: int, value: Any) -> None:
        self.world.yield_point(SchedPoint.SEND, f"r{source}->r{dest}")
        with self.cond:
            self.queues.setdefault(dest, []).append((source, tag, value))
            self.world.notify(self.cond)

    def fingerprint_state(self):
        """Canonical queue contents for state fingerprinting."""
        return tuple(
            (dest, tuple(self.queues[dest]))
            for dest in sorted(self.queues) if self.queues[dest]
        )

    def _match(self, dest: int, source: int, tag: int) -> Optional[int]:
        queue = self.queues.setdefault(dest, [])
        for i, (src, t, _value) in enumerate(queue):
            if (source in (-1, src)) and (tag in (-1, t)):
                return i
        return None

    def recv(self, dest: int, source: int, tag: int) -> Any:
        self.world.yield_point(SchedPoint.RECV, f"r{dest}<-{source}")
        deadline = self.world.clock() + self.world.timeout
        with self.cond:
            while True:
                index = self._match(dest, source, tag)
                if index is not None:
                    src, t, value = self.queues[dest].pop(index)
                    self.world.note_observation(("recv", src, t, value))
                    return value
                self.world.check_abort()
                if self.world.clock() > deadline:
                    self.world.abort(DeadlockError(
                        f"deadlock: rank {dest} blocked in MPI_Recv"
                        f"(source={source}, tag={tag}) with no matching send"
                    ))
                    self.world.check_abort()
                self.world.wait(
                    self.cond,
                    f"rank {dest} in MPI_Recv(source={source}, tag={tag})",
                    lambda: self._match(dest, source, tag) is not None,
                )
