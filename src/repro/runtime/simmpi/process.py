"""Per-rank MPI state and the thread-level guard.

Every MPI call from the interpreter funnels through :meth:`MpiProcess.mpi_call`
(or the collective/p2p wrappers), which enforces the MPI-2 thread-support
rules the paper's analysis reasons about:

* ``MPI_THREAD_SINGLE`` — no MPI call while a team of >1 threads is active;
* ``MPI_THREAD_FUNNELED`` — only the process's main (master) thread may call;
* ``MPI_THREAD_SERIALIZED`` — no two MPI calls may overlap in time;
* ``MPI_THREAD_MULTIPLE`` — overlap allowed, but two *collectives on the
  same communicator* overlapping within one process is still an MPI-standard
  violation (and exactly the bug class the paper targets).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Dict, List, Optional

from ...mpi.thread_levels import LEVEL_FROM_INT, ThreadLevel
from ..errors import (
    ConcurrentCollectiveError,
    DeadlockError,
    MpiRuntimeError,
    ThreadLevelError,
)
from ..schedpoint import SchedPoint


class CriticalSection:
    """A named ``omp critical`` lock that blocks through the world's
    SchedPoint hooks, so contention is schedulable (and deadlock-reportable)
    instead of an opaque OS-level block."""

    def __init__(self, world: "MpiWorld", rank: int, name: str) -> None:  # noqa: F821
        self.world = world
        self.rank = rank
        self.name = name
        self.cond = threading.Condition()
        self._held = False

    def __enter__(self) -> "CriticalSection":
        self.world.yield_point(SchedPoint.CRITICAL,
                               f"r{self.rank}:{self.name}")
        deadline = self.world.clock() + self.world.timeout
        with self.cond:
            while self._held:
                self.world.check_abort()
                if self.world.clock() > deadline:
                    self.world.abort(DeadlockError(
                        f"critical({self.name}) never released on rank "
                        f"{self.rank}"
                    ))
                    self.world.check_abort()
                self.world.wait(
                    self.cond,
                    f"rank {self.rank} waiting for critical({self.name})",
                    lambda: not self._held,
                )
            self._held = True
        return self

    def __exit__(self, *exc) -> None:
        with self.cond:
            self._held = False
            self.world.notify(self.cond)


class MpiProcess:
    def __init__(self, world: "MpiWorld", rank: int) -> None:  # noqa: F821
        self.world = world
        self.rank = rank
        self.main_thread: Optional[threading.Thread] = None
        self.output: List[str] = []
        self.effective_level = world.thread_level
        self.initialized = False
        self.finalized = False
        # Thread-level accounting.
        self._lock = threading.Lock()
        self._in_mpi = 0
        self._collectives_inflight = 0
        self._active_wide_teams = 0  # teams with size > 1 currently open
        # Named critical-section locks (shared by all teams of the process).
        self._critical_locks: Dict[str, CriticalSection] = {}
        self._critical_guard = threading.Lock()
        # Instrumentation counters (populated by CheckState).
        self.cc_calls = 0
        self.enter_checks = 0
        self.check_counters: Dict[int, int] = {}

    # -- OpenMP bookkeeping ------------------------------------------------------

    def enter_parallel(self, size: int) -> None:
        if size > 1:
            with self._lock:
                self._active_wide_teams += 1

    def exit_parallel(self, size: int) -> None:
        if size > 1:
            with self._lock:
                self._active_wide_teams -= 1

    def fingerprint_state(self):
        """Canonical per-rank shared state for state fingerprinting."""
        with self._lock:
            return (
                self.rank, self.initialized, self.finalized, self._in_mpi,
                self._collectives_inflight, self._active_wide_teams,
                tuple(sorted(self.check_counters.items())),
            )

    def critical_lock(self, name: str) -> CriticalSection:
        with self._critical_guard:
            return self._critical_locks.setdefault(
                name, CriticalSection(self.world, self.rank, name))

    # -- MPI setup ------------------------------------------------------------------

    def init(self) -> None:
        self.initialized = True
        self.effective_level = ThreadLevel.SINGLE

    def init_thread(self, requested: int) -> int:
        """``MPI_Init_thread``: the granted level is the minimum of the
        requested one and what the world supports; returns the granted int."""
        self.initialized = True
        level = LEVEL_FROM_INT.get(requested, ThreadLevel.MULTIPLE)
        self.effective_level = min(level, self.world.thread_level)
        return self.effective_level.value

    # -- the guard ----------------------------------------------------------------------

    @contextlib.contextmanager
    def mpi_call(self, op_name: str, collective: bool, line: Optional[int] = None):
        if self.finalized:
            raise MpiRuntimeError(
                f"{op_name} called after MPI_Finalize", rank=self.rank, line=line,
            )
        level = self.effective_level
        with self._lock:
            if level is ThreadLevel.SINGLE and self._active_wide_teams > 0:
                raise ThreadLevelError(
                    f"{op_name} called inside a parallel region but the program "
                    f"runs at MPI_THREAD_SINGLE", rank=self.rank, line=line,
                )
            if level is ThreadLevel.FUNNELED and threading.current_thread() is not self.main_thread:
                raise ThreadLevelError(
                    f"{op_name} called from a non-master thread at "
                    f"MPI_THREAD_FUNNELED", rank=self.rank, line=line,
                )
            if level <= ThreadLevel.SERIALIZED and self._in_mpi > 0:
                raise ThreadLevelError(
                    f"{op_name} overlaps another MPI call within rank "
                    f"{self.rank} at {level.mpi_name}", rank=self.rank, line=line,
                )
            if collective and self._collectives_inflight > 0:
                raise ConcurrentCollectiveError(
                    f"two collective operations overlap on the same "
                    f"communicator within rank {self.rank} ({op_name})",
                    rank=self.rank, line=line,
                )
            self._in_mpi += 1
            if collective:
                self._collectives_inflight += 1
        # The per-rank in-flight counters are shared state the thread-level
        # guard races on: entering/leaving an MPI call never commutes with
        # another MPI call of the same rank.
        self.world.note_access(f"mpi:r{self.rank}", "w")
        try:
            yield
        finally:
            with self._lock:
                self._in_mpi -= 1
                if collective:
                    self._collectives_inflight -= 1
            self.world.note_access(f"mpi:r{self.rank}", "w")

    # -- operations -------------------------------------------------------------------------

    def collective(self, op_name: str, signature: tuple, payload: Any,
                   line: Optional[int] = None) -> Any:
        with self.mpi_call(op_name, collective=True, line=line):
            result = self.world.engine.collective(self.rank, op_name, signature, payload)
        if op_name == "MPI_Finalize":
            self.finalized = True
        return result

    def send(self, dest: int, tag: int, value: Any, line: Optional[int] = None) -> None:
        with self.mpi_call("MPI_Send", collective=False, line=line):
            self.world.mailbox.send(self.rank, dest, tag, value)

    def recv(self, source: int, tag: int, line: Optional[int] = None) -> Any:
        with self.mpi_call("MPI_Recv", collective=False, line=line):
            return self.world.mailbox.recv(self.rank, source, tag)
