"""The collective-matching engine — one per communicator.

All ranks of the communicator enter a *round*; the round completes when all
have arrived with the same operation and signature, then the combined result
is distributed.  The engine is where the simulator plays the role of the
real machine:

* a second distinct operation arriving in an open round means the program
  *would deadlock* on a real machine → :class:`DeadlockError` for everyone;
* a rank finishing (or finalizing) while a round is open that it never
  joined → :class:`DeadlockError`;
* the special ``__CC__`` operation implements the paper's check: payloads
  are the collective colors, every rank receives ``(min, max)`` and the
  caller turns disagreement into a clean :class:`CollectiveMismatchError`.

Blocking goes through the world's SchedPoint hooks: threaded runs wait on
the condition (woken by arrivals, releases, finishes, and abort), scheduled
runs block cooperatively with an exact wait-for description.

Data semantics of each collective live in :mod:`.ops`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from ..errors import AbortedError, DeadlockError
from ..schedpoint import SchedPoint
from . import ops


class CollectiveEngine:
    def __init__(self, world: "MpiWorld", ranks: List[int]) -> None:  # noqa: F821
        self.world = world
        self.ranks = list(ranks)
        self.cond = threading.Condition()
        self.round_no = 0
        #: rank -> (op_name, signature, payload) for the open round.
        self.arrivals: Dict[int, Tuple[str, tuple, Any]] = {}
        self._result: Optional[Dict[int, Any]] = None
        self._releasing = False
        self._release_pending = 0
        #: Completed rounds, for traces and tests.
        self.history: List[Tuple[str, tuple]] = []

    # -- public ------------------------------------------------------------------

    def collective(self, rank: int, op_name: str, signature: tuple,
                   payload: Any) -> Any:
        """Execute one collective round for ``rank``; blocks until matched."""
        self.world.yield_point(SchedPoint.COLLECTIVE, f"{op_name}@r{rank}")
        deadline = self.world.clock() + self.world.timeout
        with self.cond:
            # Wait for the previous round's release phase to finish.
            while self._releasing:
                self._wait(deadline, f"rank {rank} awaiting round release",
                           lambda: not self._releasing)
            self._check_alive_peers()
            if rank in self.arrivals:
                raise AbortedError()  # same rank twice in one round: unwinding
            self.arrivals[rank] = (op_name, signature, payload)
            self._detect_mismatch()
            if len(self.arrivals) == len(self.ranks):
                self._complete_round()
            else:
                while not self._releasing:
                    self._wait(deadline,
                               f"rank {rank} in {op_name} (round {self.round_no})",
                               lambda: self._releasing)
                    self._check_alive_peers()
            assert self._result is not None
            value = self._result.get(rank)
            self._release_pending -= 1
            if self._release_pending == 0:
                self._releasing = False
                self._result = None
                self.world.notify(self.cond)
            self.world.note_observation(("coll", op_name, value))
            return value

    def fingerprint_state(self):
        """Canonical round progress for state fingerprinting."""
        return (
            self.round_no,
            tuple(
                (r, v[0], repr(v[1]), repr(v[2]))
                for r, v in sorted(self.arrivals.items())
            ),
            self._releasing,
            self._release_pending,
        )

    def on_proc_finished(self, rank: int) -> None:
        """Called by the world when a rank's main thread exits; wakes a round
        that can now never complete."""
        with self.cond:
            if self.arrivals and rank not in self.arrivals and not self._releasing:
                waiting = {
                    r: self.arrivals[r][0] for r in sorted(self.arrivals)
                }
                desc = ", ".join(f"rank {r} in {op}" for r, op in waiting.items())
                self.world.abort(DeadlockError(
                    f"deadlock: rank {rank} finished while {desc} wait(s) "
                    f"for the collective to complete"
                ))
            self.world.notify(self.cond)

    # -- internals -----------------------------------------------------------------

    def _wait(self, deadline: float, describe: str, predicate) -> None:
        self.world.check_abort()
        if self.world.clock() > deadline:
            ops_desc = ", ".join(
                f"rank {r} in {v[0]}" for r, v in sorted(self.arrivals.items())
            )
            self.world.abort(DeadlockError(
                f"deadlock: collective round timed out ({ops_desc or 'empty round'})"
            ))
            self.world.check_abort()
        self.world.wait(self.cond, describe, predicate)

    def _check_alive_peers(self) -> None:
        self.world.check_abort()
        missing = [
            r for r in self.ranks
            if r in self.world.finished_ranks and r not in self.arrivals
        ]
        if missing and self.arrivals and not self._releasing:
            waiting = ", ".join(
                f"rank {r} in {v[0]}" for r, v in sorted(self.arrivals.items())
            )
            self.world.abort(DeadlockError(
                f"deadlock: rank(s) {missing} already finished while {waiting}"
            ))
            self.world.check_abort()

    def _detect_mismatch(self) -> None:
        names = {v[0] for v in self.arrivals.values()}
        if len(names) > 1:
            desc = ", ".join(
                f"rank {r} calls {v[0]}" for r, v in sorted(self.arrivals.items())
            )
            self.world.abort(DeadlockError(
                f"deadlock: mismatched collective operations in one round ({desc})"
            ))
            self.world.check_abort()
        sigs = {v[1] for v in self.arrivals.values()}
        if len(sigs) > 1:
            name = next(iter(names))
            self.world.abort(DeadlockError(
                f"deadlock: {name} called with mismatched arguments "
                f"(roots/reduction ops differ across ranks)"
            ))
            self.world.check_abort()

    def _complete_round(self) -> None:
        op_name, signature, _ = next(iter(self.arrivals.values()))
        payloads = {r: v[2] for r, v in self.arrivals.items()}
        self._result = ops.combine(op_name, signature, payloads, self.ranks)
        self.history.append((op_name, signature))
        self.round_no += 1
        self.arrivals = {}
        self._releasing = True
        self._release_pending = len(self.ranks)
        self.world.notify(self.cond)
