"""The runtime verification library the instrumentation pass targets.

``PARCOACH_CC(color, name, line)`` → :meth:`CheckState.cc` — the paper's CC
check: an all-reduce of the collective color over the communicator; if
``min != max`` the processes are about to diverge and the run aborts with a
:class:`CollectiveMismatchError` that names, per rank, which collective (or
return) each process was heading into — *before* the divergent collective is
entered, which is exactly the paper's "stops program execution as soon as
this situation is unavoidable".

``PARCOACH_ENTER(group, what)`` / ``PARCOACH_EXIT(group)`` →
:meth:`CheckState.enter` / :meth:`CheckState.exit` — per-process concurrency
counters for the phase-1 (multithreaded collective) and phase-2 (concurrent
monothreaded regions) verdicts.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..mpi.collectives import color_name
from .errors import (
    CollectiveMismatchError,
    ConcurrentCollectiveError,
    ThreadContextError,
)
from .schedpoint import SchedPoint
from .simmpi.process import MpiProcess


class CheckState:
    """Per-process state of the inserted checks."""

    def __init__(self, proc: MpiProcess, group_kinds: Optional[Dict[int, str]] = None) -> None:
        self.proc = proc
        self.group_kinds = group_kinds or {}
        self._lock = threading.Lock()
        self._counters: Dict[int, int] = {}

    # -- CC --------------------------------------------------------------------

    def cc(self, color: int, name: str, line: int) -> None:
        if self.proc.finalized:
            # MPI_Finalize is itself a collective: once it matched, every
            # rank is finalized and no further collective can occur, so the
            # post-finalize return-check has nothing left to verify.
            return
        self.proc.cc_calls += 1
        result = self.proc.collective("__CC__", (), color, line=line)
        mn, mx, per_rank = result
        if mn == mx:
            return
        others = "; ".join(
            f"rank {r} heads for {color_name(c)}"
            for r, c in sorted(per_rank.items())
            if c != color
        )
        raise CollectiveMismatchError(
            f"collective sequence mismatch: rank {self.proc.rank} is about to "
            f"execute {name} (line {line}) but {others}",
            rank=self.proc.rank, line=line,
        )

    # -- concurrency counters ------------------------------------------------------

    def enter(self, group: int, what: str, line: int = 0) -> None:
        # Entering an instrumented region is schedule-relevant: whether two
        # threads overlap inside it is exactly what exploration varies.
        self.proc.world.yield_point(SchedPoint.CHECK,
                                    f"enter:r{self.proc.rank}:{what}")
        self.proc.enter_checks += 1
        with self._lock:
            count = self._counters.get(group, 0) + 1
            self._counters[group] = count
            self.proc.check_counters[group] = count
        if count <= 1:
            return
        kind = self.group_kinds.get(group, "multithread")
        if kind == "concurrent":
            raise ConcurrentCollectiveError(
                f"collectives of concurrent monothreaded regions overlap "
                f"(check group {group}, at {what})",
                rank=self.proc.rank, line=line,
            )
        raise ThreadContextError(
            f"{count} threads of rank {self.proc.rank} execute collective "
            f"{what} concurrently — it must run monothreaded",
            rank=self.proc.rank, line=line,
        )

    def exit(self, group: int) -> None:
        self.proc.world.yield_point(SchedPoint.CHECK,
                                    f"exit:r{self.proc.rank}:{group}")
        with self._lock:
            count = max(0, self._counters.get(group, 0) - 1)
            self._counters[group] = count
            self.proc.check_counters[group] = count
