"""Runtime error taxonomy.

:class:`ValidationError` subclasses are *verdicts* — what the dynamic checks
(or the simulator acting as the "machine") report.  :class:`AbortedError` is
the secondary unwind used to stop all other threads once a verdict exists;
it never surfaces as a result.
"""

from __future__ import annotations

from typing import Optional


class ValidationError(Exception):
    """Base class for every error the runtime can report."""

    #: "CC" / "thread-check" for instrumentation verdicts, "simulator" when
    #: only the simulated machine could tell (i.e. what a real run would
    #: experience as a deadlock or crash).
    detected_by: str = "simulator"

    def __init__(self, message: str, rank: Optional[int] = None,
                 line: Optional[int] = None) -> None:
        super().__init__(message)
        self.rank = rank
        self.line = line

    def describe(self) -> str:
        where = f" [rank {self.rank}]" if self.rank is not None else ""
        at = f" (line {self.line})" if self.line else ""
        return f"{type(self).__name__}{where}{at}: {self}"


class CollectiveMismatchError(ValidationError):
    """CC found min ≠ max: processes are about to execute different
    collectives (or one returns).  Reported *before* the deadlock."""

    detected_by = "CC"


class ThreadContextError(ValidationError):
    """≥2 threads of one process executed a collective node concurrently
    (phase-1 instrumentation verdict)."""

    detected_by = "thread-check"


class ConcurrentCollectiveError(ValidationError):
    """Two concurrent monothreaded regions executed collectives
    simultaneously (phase-2 instrumentation verdict), or the simulator saw
    two in-flight collectives on one communicator from one process."""

    detected_by = "thread-check"


class ThreadLevelError(ValidationError):
    """MPI called in a way the requested thread support level forbids."""

    detected_by = "simulator"


class DeadlockError(ValidationError):
    """The simulated machine deadlocked (mismatched collectives without
    instrumentation, a rank exiting while others wait, timeout...)."""

    detected_by = "simulator"


class MpiRuntimeError(ValidationError):
    """Other MPI usage errors (operation on finalized MPI, bad root...)."""

    detected_by = "simulator"


class AbortedError(Exception):
    """Secondary unwind once the world has aborted; not a verdict."""
