"""The SchedPoint hook API — every blocking decision point of the runtime.

The simulator's blocking primitives (collective rounds, ``MPI_Recv``, team
barriers, ``single`` claims, critical sections, fork/join, the inserted
checks) all funnel through three world-level hooks instead of raw
``Condition.wait``/busy-poll loops:

* ``yield_point(kind, detail)`` — a scheduling-relevant instant where a
  context switch may be *observed* (entering a collective, claiming a
  ``single``, ...).  A no-op under normal threaded execution; under a
  cooperative scheduler it is a decision point.
* ``wait(cond, describe, predicate)`` — block the calling thread until the
  condition's state may have changed.  Call sites keep their classic
  ``while not <state>: wait(...)`` loops, so the threaded implementation can
  ignore ``predicate`` and rely on notification plus a coarse fallback
  timeout, while a scheduler uses it for precise wake-ups and the wait-for
  state that makes virtual-clock deadlock reports exact.
* ``notify(cond)`` — state guarded by ``cond`` changed; wake its waiters.

:class:`ThreadedHooks` is the default implementation: real OS threads,
condition notification on abort (no 20 ms busy-polling), and a coarse
``_FALLBACK_WAIT`` re-check as a safety net against lost notifications.
``repro.explore.Scheduler`` implements the same interface cooperatively —
exactly one logical thread runs at a time, every decision is recorded, and
runs are reproducible from their choice sequence.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional


class SchedPoint:
    """Kinds of scheduling decision points (trace/labels only)."""

    START = "start"
    COLLECTIVE = "collective"
    SEND = "send"
    RECV = "recv"
    OMP_BARRIER = "omp-barrier"
    CLAIM = "claim"
    CRITICAL = "critical"
    CHECK = "check"
    JOIN = "join"
    EXIT = "exit"
    BLOCK = "block"


#: Seconds between safety re-checks while blocked in threaded mode.  Waits
#: are woken by notification (including on abort); the fallback only bounds
#: the damage of a lost wakeup or a contended abort-time notify.
_FALLBACK_WAIT = 0.2


class ExecutionHooks:
    """Interface the world delegates its blocking decision points to."""

    #: True when exactly one logical thread runs at a time (scheduler mode).
    cooperative = False

    # -- time ----------------------------------------------------------------

    def clock(self) -> float:
        return time.monotonic()

    # -- decision points -----------------------------------------------------

    def yield_point(self, world, kind: str, detail: str = "") -> None:
        pass

    def wait(self, world, cond: threading.Condition, describe: str = "",
             predicate: Optional[Callable[[], bool]] = None) -> None:
        raise NotImplementedError

    def notify(self, world, cond: threading.Condition) -> None:
        raise NotImplementedError

    # -- footprints / observations (no-ops in threaded mode) -----------------

    def note_access(self, obj: str, mode: str = "w") -> None:
        """The running logical thread touched shared object ``obj``."""

    def note_observation(self, value) -> None:
        """The running logical thread observed ``value`` (recv/collective
        result, shared read, claim outcome) — folded into its state hash."""

    # -- logical-thread lifecycle (no-ops in threaded mode) ------------------

    def child_names(self, size: int) -> List[Optional[str]]:
        """Deterministic names for a team's worker threads (index = tid;
        entry 0 is the master and always ``None``)."""
        return [None] * size

    def attach(self, name: str) -> None:
        pass

    def detach(self) -> None:
        pass

    def await_children(self, names) -> None:
        pass

    def start(self, world) -> None:
        pass

    def on_abort(self, world) -> None:
        pass

    def join_timeout(self, timeout: float) -> float:
        """Wall-clock guard for joining the rank threads."""
        return timeout * 3


class ThreadedHooks(ExecutionHooks):
    """Default execution: free-running OS threads, notified conditions."""

    cooperative = False

    def wait(self, world, cond, describe="", predicate=None):
        world.register_wait_cond(cond)
        cond.wait(_FALLBACK_WAIT)

    def notify(self, world, cond):
        cond.notify_all()


#: Shared stateless default (per-world state lives on the world itself).
THREADED_HOOKS = ThreadedHooks()
