"""Tree-walking interpreter for minilang on simmpi + simomp.

One interpreter instance runs per MPI rank (inside that rank's thread); each
OpenMP team thread executes interpreter code re-entrantly with its own
:class:`ExecCtx`.  MPI calls route through the rank's :class:`MpiProcess`
(thread-level guard + collective engine); the inserted ``PARCOACH_*`` calls
route to :class:`~repro.runtime.checks.CheckState`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ...minilang import ast_nodes as A
from ...mpi.collectives import COLLECTIVES
from ...util.brepr import bounded_repr
from ..checks import CheckState
from ..errors import MpiRuntimeError
from ..simmpi.process import MpiProcess
from ..simomp import Team
from .env import Cell, Env, InterpError

_MAX_CALL_DEPTH = 200


class _BreakEx(Exception):
    pass


class _ContinueEx(Exception):
    pass


class _ReturnEx(Exception):
    def __init__(self, value: Any) -> None:
        super().__init__()
        self.value = value


@dataclass
class ExecCtx:
    """Per-thread execution context."""

    team: Optional[Team] = None
    tid: int = 0
    depth: int = 0  # nesting depth of parallel regions
    call_depth: int = 0
    #: construct uid -> how many times *this thread* encountered it
    #: (drives single/sections claim generations).
    encounters: Dict[int, int] = field(default_factory=dict)

    def nested(self, team: Team, tid: int) -> "ExecCtx":
        return ExecCtx(team=team, tid=tid, depth=self.depth + 1,
                       call_depth=self.call_depth, encounters={})

    def next_encounter(self, uid: int) -> int:
        n = self.encounters.get(uid, 0)
        self.encounters[uid] = n + 1
        return n


class Interpreter:
    def __init__(self, program: A.Program, proc: MpiProcess,
                 check_state: Optional[CheckState] = None,
                 num_threads: int = 2) -> None:
        self.program = program
        self.proc = proc
        self.world = proc.world
        self.checks = check_state or CheckState(proc)
        self.num_threads = num_threads
        self.funcs = {f.name: f for f in program.funcs}
        # Shared-variable access tracking for schedule exploration: under a
        # cooperative scheduler, reads/writes of cells visible to a team of
        # >1 threads feed the running segment's footprint (and the state
        # fingerprint).  Objects (cells, arrays) are labeled lazily in
        # first-access order — deterministic within one scheduled run, which
        # is the only scope footprints are ever compared in.
        self._track = bool(getattr(self.world.hooks, "cooperative", False))
        self._labels: Dict[int, str] = {}
        self._label_objs: List[tuple] = []  # (label, obj) — also keeps refs
        if self._track:
            self.world.register_fingerprint_provider(
                f"interp:r{proc.rank}", self._shared_state)

    # -- shared-access tracking ----------------------------------------------

    def _tracking(self, ctx: ExecCtx) -> bool:
        return self._track and ctx.team is not None and ctx.team.size > 1

    def _label(self, obj: object, name: str) -> str:
        key = id(obj)
        label = self._labels.get(key)
        if label is None:
            label = f"r{self.proc.rank}:{name}#{len(self._labels)}"
            self._labels[key] = label
            self._label_objs.append((label, obj))
        return label

    def _shared_state(self) -> tuple:
        """Values of every tracked shared object, for state fingerprints.
        ``bounded_repr`` digests huge integers (a fuzzed ``x = x * x``
        loop overflows CPython's 4300-digit int→str limit and would kill
        the rank thread mid-fingerprint) to bit length + low bits —
        still deterministic and collision-poor."""
        return tuple(sorted(
            (label, bounded_repr(obj.value if isinstance(obj, Cell)
                                 else obj))
            for label, obj in self._label_objs
        ))

    # -- entry -------------------------------------------------------------------

    def run(self, entry: str = "main", args: tuple = ()) -> Any:
        if entry not in self.funcs:
            raise InterpError(f"no entry function {entry!r}")
        return self.call_function(self.funcs[entry], list(args), ExecCtx())

    def call_function(self, func: A.FuncDef, args: List[Any], ctx: ExecCtx) -> Any:
        if ctx.call_depth >= _MAX_CALL_DEPTH:
            raise InterpError(f"call depth exceeded in {func.name}")
        if len(args) != len(func.params):
            raise InterpError(
                f"{func.name} expects {len(func.params)} args, got {len(args)}"
            )
        env = Env()
        for param, value in zip(func.params, args):
            env.declare(param.name, value)
        inner = ExecCtx(team=ctx.team, tid=ctx.tid, depth=ctx.depth,
                        call_depth=ctx.call_depth + 1,
                        encounters=ctx.encounters)
        try:
            self.exec_block(func.body, env.child(), inner)
        except _ReturnEx as ret:
            return ret.value
        return None

    # -- statements -----------------------------------------------------------------

    def exec_block(self, block: A.Block, env: Env, ctx: ExecCtx) -> None:
        for stmt in block.stmts:
            self.exec_stmt(stmt, env, ctx)

    def exec_stmt(self, stmt: A.Stmt, env: Env, ctx: ExecCtx) -> None:
        self.world.check_abort()
        if isinstance(stmt, A.VarDecl):
            if stmt.array_size is not None:
                size = int(self.eval(stmt.array_size, env, ctx))
                init = 0.0 if stmt.type_name == "float" else 0
                env.declare(stmt.name, [init] * size)
            else:
                value = self.eval(stmt.init, env, ctx) if stmt.init is not None else _default(stmt.type_name)
                env.declare(stmt.name, value)
        elif isinstance(stmt, A.Assign):
            self._assign(stmt, env, ctx)
        elif isinstance(stmt, A.ExprStmt):
            self.eval(stmt.expr, env, ctx, stmt_level=True)
        elif isinstance(stmt, A.Block):
            self.exec_block(stmt, env.child(), ctx)
        elif isinstance(stmt, A.If):
            if self.eval(stmt.cond, env, ctx):
                self.exec_block(stmt.then_body, env.child(), ctx)
            elif stmt.else_body is not None:
                self.exec_block(stmt.else_body, env.child(), ctx)
        elif isinstance(stmt, A.While):
            while self.eval(stmt.cond, env, ctx):
                try:
                    self.exec_block(stmt.body, env.child(), ctx)
                except _BreakEx:
                    break
                except _ContinueEx:
                    continue
        elif isinstance(stmt, A.For):
            self._exec_for(stmt, env, ctx)
        elif isinstance(stmt, A.Return):
            raise _ReturnEx(self.eval(stmt.value, env, ctx) if stmt.value is not None else None)
        elif isinstance(stmt, A.Break):
            raise _BreakEx()
        elif isinstance(stmt, A.Continue):
            raise _ContinueEx()
        elif isinstance(stmt, A.OmpStmt):
            self._exec_omp(stmt, env, ctx)
        else:
            raise InterpError(f"cannot execute {type(stmt).__name__}")

    def _exec_for(self, stmt: A.For, env: Env, ctx: ExecCtx) -> None:
        loop_env = env.child()
        if stmt.init is not None:
            self.exec_stmt(stmt.init, loop_env, ctx)
        while stmt.cond is None or self.eval(stmt.cond, loop_env, ctx):
            try:
                self.exec_block(stmt.body, loop_env.child(), ctx)
            except _BreakEx:
                break
            except _ContinueEx:
                pass
            if stmt.step is not None:
                self.exec_stmt(stmt.step, loop_env, ctx)

    def _assign(self, stmt: A.Assign, env: Env, ctx: ExecCtx) -> None:
        value = self.eval(stmt.value, env, ctx)
        target = stmt.target
        if isinstance(target, A.VarRef):
            cell = env.cell(target.name)
            if stmt.op == "=":
                cell.value = value
            else:
                if self._tracking(ctx):
                    self.world.note_observation(
                        ("load", target.name, cell.value))
                cell.value = _apply_compound(stmt.op, cell.value, value)
            if self._tracking(ctx):
                self.world.note_access(self._label(cell, target.name), "w")
        elif isinstance(target, A.ArrayRef):
            arr = env.get(target.name)
            index = int(self.eval(target.index, env, ctx))
            if not isinstance(arr, list):
                raise InterpError(f"{target.name} is not an array")
            if not (0 <= index < len(arr)):
                raise InterpError(
                    f"index {index} out of bounds for {target.name}[{len(arr)}]"
                )
            if stmt.op == "=":
                arr[index] = value
            else:
                if self._tracking(ctx):
                    self.world.note_observation(
                        ("load", target.name, index, arr[index]))
                arr[index] = _apply_compound(stmt.op, arr[index], value)
            if self._tracking(ctx):
                self.world.note_access(self._label(arr, target.name), "w")
        else:
            raise InterpError("bad assignment target")

    # -- OpenMP ----------------------------------------------------------------------

    def _exec_omp(self, stmt: A.OmpStmt, env: Env, ctx: ExecCtx) -> None:
        if isinstance(stmt, A.OmpBarrier):
            if ctx.team is not None:
                ctx.team.barrier()
            return

        if isinstance(stmt, A.OmpParallel):
            size = self.num_threads
            if stmt.num_threads is not None:
                size = max(1, int(self.eval(stmt.num_threads, env, ctx)))
            team = Team(self.world, self.proc, size)
            private_init = {
                name: (env.get(name) if env.is_declared(name) else 0)
                for name in stmt.private
            }

            def body(tid: int) -> None:
                tctx = ctx.nested(team, tid)
                tenv = env.child()
                for name, value in private_init.items():
                    tenv.declare(name, value)
                self.exec_block(stmt.body, tenv, tctx)
                team.barrier()  # the region's implicit join barrier

            team.run(body)
            return

        if isinstance(stmt, A.OmpSingle):
            team, tid = ctx.team, ctx.tid
            if team is None:
                self.exec_block(stmt.body, env.child(), ctx)
                return
            encounter = ctx.next_encounter(stmt.uid)
            if team.claim(stmt.uid, encounter, tid):
                self.exec_block(stmt.body, env.child(), ctx)
            if not stmt.nowait:
                team.barrier()
            return

        if isinstance(stmt, A.OmpMaster):
            if ctx.team is None or ctx.tid == 0:
                self.exec_block(stmt.body, env.child(), ctx)
            return

        if isinstance(stmt, A.OmpCritical):
            lock = self.proc.critical_lock(stmt.name or "<anon>")
            with lock:
                self.exec_block(stmt.body, env.child(), ctx)
            return

        if isinstance(stmt, A.OmpTask):
            # Executed inline by the encountering thread (undeferred task).
            self.exec_block(stmt.body, env.child(), ctx)
            return

        if isinstance(stmt, A.OmpFor):
            self._exec_omp_for(stmt, env, ctx)
            return

        if isinstance(stmt, A.OmpSections):
            team, tid = ctx.team, ctx.tid
            for i, section in enumerate(stmt.sections):
                if team is None or team.section_owner(i) == tid:
                    self.exec_block(section, env.child(), ctx)
            if team is not None and not stmt.nowait:
                team.barrier()
            return

        raise InterpError(f"cannot execute OpenMP node {type(stmt).__name__}")

    def _exec_omp_for(self, stmt: A.OmpFor, env: Env, ctx: ExecCtx) -> None:
        loop = stmt.loop
        if not isinstance(loop.init, A.VarDecl) or loop.cond is None or loop.step is None:
            raise InterpError("omp for requires a canonical for loop")
        var_name = loop.init.name
        start = self.eval(loop.init.init, env, ctx) if loop.init.init is not None else 0
        if not isinstance(loop.cond, A.BinOp) or loop.cond.op not in ("<", "<=", ">", ">="):
            raise InterpError("omp for condition must compare the loop variable")
        bound = self.eval(loop.cond.right, env, ctx)
        if not isinstance(loop.step, A.Assign) or loop.step.op not in ("+=", "-="):
            raise InterpError("omp for step must be += or -=")
        step = self.eval(loop.step.value, env, ctx)
        if loop.step.op == "-=":
            step = -step
        if step == 0:
            raise InterpError("omp for step must be nonzero")

        # Normalized iteration values for this thread's static chunk.
        values: List[Any] = []
        v = start
        if step > 0:
            while (v < bound) if loop.cond.op == "<" else (v <= bound):
                values.append(v)
                v += step
        else:
            while (v > bound) if loop.cond.op == ">" else (v >= bound):
                values.append(v)
                v += step

        team = ctx.team
        chunk = team.static_chunk(ctx.tid, len(values)) if team is not None else range(len(values))
        for i in chunk:
            iter_env = env.child()
            iter_env.declare(var_name, values[i])
            try:
                self.exec_block(loop.body, iter_env, ctx)
            except _ContinueEx:
                continue
        if team is not None and not stmt.nowait:
            team.barrier()

    # -- expressions -----------------------------------------------------------------------

    def eval(self, expr: A.Expr, env: Env, ctx: ExecCtx, stmt_level: bool = False) -> Any:
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.FloatLit):
            return expr.value
        if isinstance(expr, A.BoolLit):
            return expr.value
        if isinstance(expr, A.StringLit):
            return expr.value
        if isinstance(expr, A.VarRef):
            if self._tracking(ctx):
                cell = env.cell(expr.name)
                self.world.note_access(self._label(cell, expr.name), "r")
                self.world.note_observation(("load", expr.name, cell.value))
                return cell.value
            return env.get(expr.name)
        if isinstance(expr, A.ArrayRef):
            arr = env.get(expr.name)
            index = int(self.eval(expr.index, env, ctx))
            if not isinstance(arr, list):
                raise InterpError(f"{expr.name} is not an array")
            if not (0 <= index < len(arr)):
                raise InterpError(
                    f"index {index} out of bounds for {expr.name}[{len(arr)}]"
                )
            value = arr[index]
            if self._tracking(ctx):
                self.world.note_access(self._label(arr, expr.name), "r")
                self.world.note_observation(("load", expr.name, index, value))
            return value
        if isinstance(expr, A.UnaryOp):
            value = self.eval(expr.operand, env, ctx)
            if expr.op == "-":
                return -value
            if expr.op == "!":
                return not value
            raise InterpError(f"unknown unary {expr.op}")
        if isinstance(expr, A.BinOp):
            return self._eval_binop(expr, env, ctx)
        if isinstance(expr, A.Call):
            return self._eval_call(expr, env, ctx)
        raise InterpError(f"cannot evaluate {type(expr).__name__}")

    def _eval_binop(self, expr: A.BinOp, env: Env, ctx: ExecCtx) -> Any:
        op = expr.op
        if op == "&&":
            return bool(self.eval(expr.left, env, ctx)) and bool(self.eval(expr.right, env, ctx))
        if op == "||":
            return bool(self.eval(expr.left, env, ctx)) or bool(self.eval(expr.right, env, ctx))
        left = self.eval(expr.left, env, ctx)
        right = self.eval(expr.right, env, ctx)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise InterpError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return _c_idiv(left, right)
            return left / right
        if op == "%":
            if right == 0:
                raise InterpError("modulo by zero")
            if isinstance(left, int) and isinstance(right, int):
                return _c_imod(left, right)
            return math.fmod(left, right)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        raise InterpError(f"unknown operator {op}")

    # -- calls ------------------------------------------------------------------------------

    def _eval_call(self, call: A.Call, env: Env, ctx: ExecCtx) -> Any:
        name = call.name
        if name in COLLECTIVES or name in ("MPI_Send", "MPI_Recv", "MPI_Sendrecv"):
            return self._exec_mpi(call, env, ctx)
        if name in _MPI_QUERY_IMPL:
            return _MPI_QUERY_IMPL[name](self, call, env, ctx)
        if name in _BUILTIN_IMPL:
            return _BUILTIN_IMPL[name](self, call, env, ctx)
        func = self.funcs.get(name)
        if func is not None:
            args = [self.eval(a, env, ctx) for a in call.args]
            return self.call_function(func, args, ctx)
        raise InterpError(f"call to unknown function {name!r}")

    # -- MPI ------------------------------------------------------------------------------------

    def _lvalue_name(self, expr: A.Expr, what: str) -> str:
        if isinstance(expr, A.VarRef):
            return expr.name
        raise InterpError(f"{what} buffer argument must be a variable name")

    def _store(self, expr: A.Expr, value: Any, env: Env, ctx: ExecCtx,
               what: str) -> None:
        """Write an MPI result back through an lvalue (variable or array
        element)."""
        if isinstance(expr, A.VarRef):
            cell = env.cell(expr.name)
            cell.value = value
            if self._tracking(ctx):
                self.world.note_access(self._label(cell, expr.name), "w")
            return
        if isinstance(expr, A.ArrayRef):
            arr = env.get(expr.name)
            index = int(self.eval(expr.index, env, ctx))
            if not isinstance(arr, list) or not (0 <= index < len(arr)):
                raise InterpError(
                    f"{what}: bad array element {expr.name}[{index}]"
                )
            arr[index] = value
            if self._tracking(ctx):
                self.world.note_access(self._label(arr, expr.name), "w")
            return
        raise InterpError(f"{what} buffer argument must be an lvalue")

    def _exec_mpi(self, call: A.Call, env: Env, ctx: ExecCtx) -> Any:
        name = call.name
        proc = self.proc
        line = call.line
        a = call.args

        if name == "MPI_Barrier":
            return proc.collective("MPI_Barrier", (), None, line=line)
        if name == "MPI_Finalize":
            return proc.collective("MPI_Finalize", (), None, line=line)
        if name == "MPI_Bcast":
            root = int(self.eval(a[1], env, ctx))
            payload = self.eval(a[0], env, ctx) if proc.rank == root else None
            result = proc.collective(name, (root,), payload, line=line)
            self._store(a[0], result, env, ctx, name)
            return None
        if name == "MPI_Reduce":
            send = self.eval(a[0], env, ctx)
            red = self._red_op(a[2], env, ctx)
            root = int(self.eval(a[3], env, ctx))
            result = proc.collective(name, (root, red), send, line=line)
            if proc.rank == root:
                self._store(a[1], result, env, ctx, name)
            return None
        if name == "MPI_Allreduce":
            send = self.eval(a[0], env, ctx)
            red = self._red_op(a[2], env, ctx)
            result = proc.collective(name, (red,), send, line=line)
            self._store(a[1], result, env, ctx, name)
            return None
        if name == "MPI_Gather":
            send = self.eval(a[0], env, ctx)
            root = int(self.eval(a[2], env, ctx))
            result = proc.collective(name, (root,), send, line=line)
            if proc.rank == root:
                self._store(a[1], result, env, ctx, name)
            return None
        if name == "MPI_Scatter":
            root = int(self.eval(a[2], env, ctx))
            payload = self.eval(a[0], env, ctx) if proc.rank == root else None
            result = proc.collective(name, (root,), payload, line=line)
            self._store(a[1], result, env, ctx, name)
            return None
        if name == "MPI_Allgather":
            send = self.eval(a[0], env, ctx)
            result = proc.collective(name, (), send, line=line)
            self._store(a[1], result, env, ctx, name)
            return None
        if name == "MPI_Alltoall":
            result = proc.collective(name, (), self.eval(a[0], env, ctx), line=line)
            self._store(a[1], result, env, ctx, name)
            return None
        if name in ("MPI_Scan", "MPI_Exscan"):
            send = self.eval(a[0], env, ctx)
            red = self._red_op(a[2], env, ctx)
            result = proc.collective(name, (red,), send, line=line)
            if result is not None:
                self._store(a[1], result, env, ctx, name)
            return None
        if name == "MPI_Reduce_scatter_block":
            red = self._red_op(a[2], env, ctx)
            result = proc.collective(name, (red,), self.eval(a[0], env, ctx), line=line)
            self._store(a[1], result, env, ctx, name)
            return None
        if name == "MPI_Send":
            value = self.eval(a[0], env, ctx)
            dest = int(self.eval(a[1], env, ctx))
            tag = int(self.eval(a[2], env, ctx))
            proc.send(dest, tag, value, line=line)
            return None
        if name == "MPI_Recv":
            source = int(self.eval(a[1], env, ctx))
            tag = int(self.eval(a[2], env, ctx))
            self._store(a[0], proc.recv(source, tag, line=line), env, ctx, name)
            return None
        if name == "MPI_Sendrecv":
            value = self.eval(a[0], env, ctx)
            dest = int(self.eval(a[1], env, ctx))
            stag = int(self.eval(a[2], env, ctx))
            source = int(self.eval(a[4], env, ctx))
            rtag = int(self.eval(a[5], env, ctx))
            proc.send(dest, stag, value, line=line)
            self._store(a[3], proc.recv(source, rtag, line=line), env, ctx, name)
            return None
        raise InterpError(f"unhandled MPI call {name}")

    def _red_op(self, expr: A.Expr, env: Env, ctx: ExecCtx) -> str:
        if isinstance(expr, A.StringLit):
            return expr.value
        value = self.eval(expr, env, ctx)
        if isinstance(value, str):
            return value
        raise InterpError("reduction op must be a string: 'sum'|'prod'|'min'|'max'")


def _default(type_name: str) -> Any:
    if type_name == "float":
        return 0.0
    if type_name == "bool":
        return False
    return 0


def _apply_compound(op: str, old: Any, value: Any) -> Any:
    if op == "+=":
        return old + value
    if op == "-=":
        return old - value
    if op == "*=":
        return old * value
    if op == "/=":
        if value == 0:
            raise InterpError("division by zero")
        if isinstance(old, int) and isinstance(value, int):
            return _c_idiv(old, value)
        return old / value
    raise InterpError(f"unknown compound op {op}")


def _c_idiv(left: int, right: int) -> int:
    """C-style integer division (truncation toward zero) in exact integer
    arithmetic — ``int(left / right)`` detours through a float, which both
    loses precision and overflows once the program computes big values
    (found by ``parcoach fuzz``)."""
    q = abs(left) // abs(right)
    return -q if (left < 0) != (right < 0) else q


def _c_imod(left: int, right: int) -> int:
    """C-style remainder (sign of the dividend) in exact integer
    arithmetic; ``math.fmod`` overflows on big ints the same way."""
    m = abs(left) % abs(right)
    return -m if left < 0 else m


# --------------------------------------------------------------------------------
# Builtins
# --------------------------------------------------------------------------------


def _fmt(value: Any) -> str:
    """Render one print argument.  Astronomically large ints (a fuzz-grown
    ``x *= x`` loop) would trip CPython's int-to-str digit limit — render a
    deterministic magnitude summary instead of crashing the run."""
    if isinstance(value, int) and not isinstance(value, bool):
        try:
            return str(value)
        except ValueError:  # exceeds sys.get_int_max_str_digits()
            sign = "-" if value < 0 else ""
            return f"{sign}<int ~10^{value.bit_length() * 30103 // 100000}>"
    return str(value)


def _b_print(interp: Interpreter, call: A.Call, env: Env, ctx: ExecCtx) -> None:
    parts = [_fmt(interp.eval(a, env, ctx)) for a in call.args]
    interp.proc.output.append(" ".join(parts))


def _b_work(interp: Interpreter, call: A.Call, env: Env, ctx: ExecCtx) -> int:
    n = int(interp.eval(call.args[0], env, ctx))
    x = 0
    for _ in range(max(0, n)):
        x = (x * 1103515245 + 12345) & 0xFFFFFFFF
    return x


_BUILTIN_IMPL: Dict[str, Callable] = {
    "print": _b_print,
    "work": _b_work,
    "omp_get_thread_num": lambda i, c, e, x: x.tid,
    "omp_get_num_threads": lambda i, c, e, x: (x.team.size if x.team else 1),
    "omp_get_max_threads": lambda i, c, e, x: i.num_threads,
    "abs": lambda i, c, e, x: abs(i.eval(c.args[0], e, x)),
    "min": lambda i, c, e, x: min(i.eval(c.args[0], e, x), i.eval(c.args[1], e, x)),
    "max": lambda i, c, e, x: max(i.eval(c.args[0], e, x), i.eval(c.args[1], e, x)),
    "sqrt": lambda i, c, e, x: math.sqrt(i.eval(c.args[0], e, x)),
    "mod": lambda i, c, e, x: i.eval(c.args[0], e, x) % i.eval(c.args[1], e, x),
    "PARCOACH_CC": lambda i, c, e, x: i.checks.cc(
        int(i.eval(c.args[0], e, x)), str(i.eval(c.args[1], e, x)),
        int(i.eval(c.args[2], e, x)),
    ),
    "PARCOACH_ENTER": lambda i, c, e, x: i.checks.enter(
        int(i.eval(c.args[0], e, x)), str(i.eval(c.args[1], e, x)), c.line,
    ),
    "PARCOACH_EXIT": lambda i, c, e, x: i.checks.exit(int(i.eval(c.args[0], e, x))),
}

_MPI_QUERY_IMPL: Dict[str, Callable] = {
    "MPI_Comm_rank": lambda i, c, e, x: i.proc.rank,
    "MPI_Comm_size": lambda i, c, e, x: i.world.nprocs,
    "MPI_Wtime": lambda i, c, e, x: __import__("time").perf_counter(),
    "MPI_Init": lambda i, c, e, x: i.proc.init(),
    "MPI_Init_thread": lambda i, c, e, x: i.proc.init_thread(int(i.eval(c.args[0], e, x))),
}
