"""Tree-walking interpreter for minilang programs."""

from .env import Cell, Env, InterpError
from .interpreter import ExecCtx, Interpreter

__all__ = ["Cell", "Env", "InterpError", "ExecCtx", "Interpreter"]
