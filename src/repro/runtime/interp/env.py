"""Lexically scoped environments with shared cells.

OpenMP shared-by-default semantics fall out naturally: team threads execute
with child environments whose parent chain contains the *same* frames the
encountering thread sees, so assignments to outer variables hit shared
cells; names declared inside the region (and ``private`` clause names) live
in the per-thread child frame.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class InterpError(Exception):
    """Internal interpreter error (bad program shapes the semantic checker
    should have rejected)."""


class Cell:
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


class Env:
    __slots__ = ("parent", "vars")

    def __init__(self, parent: Optional["Env"] = None) -> None:
        self.parent = parent
        self.vars: Dict[str, Cell] = {}

    def child(self) -> "Env":
        return Env(self)

    def declare(self, name: str, value: Any) -> None:
        self.vars[name] = Cell(value)

    def cell(self, name: str) -> Cell:
        env: Optional[Env] = self
        while env is not None:
            cell = env.vars.get(name)
            if cell is not None:
                return cell
            env = env.parent
        raise InterpError(f"undefined variable {name!r}")

    def get(self, name: str) -> Any:
        return self.cell(name).value

    def set(self, name: str, value: Any) -> None:
        self.cell(name).value = value

    def is_declared(self, name: str) -> bool:
        env: Optional[Env] = self
        while env is not None:
            if name in env.vars:
                return True
            env = env.parent
        return False
