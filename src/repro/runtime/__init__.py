"""Execution substrate: MPI simulator, OpenMP-like runtime, interpreter,
and the runtime verification library the instrumentation targets."""

from .checks import CheckState
from .errors import (
    AbortedError,
    CollectiveMismatchError,
    ConcurrentCollectiveError,
    DeadlockError,
    MpiRuntimeError,
    ThreadContextError,
    ThreadLevelError,
    ValidationError,
)
from .interp import Interpreter
from .run import run_program
from .schedpoint import ExecutionHooks, SchedPoint, ThreadedHooks
from .simmpi import MpiProcess, MpiWorld, RunResult
from .simomp import Team

__all__ = [
    "ExecutionHooks",
    "SchedPoint",
    "ThreadedHooks",
    "CheckState",
    "AbortedError",
    "CollectiveMismatchError",
    "ConcurrentCollectiveError",
    "DeadlockError",
    "MpiRuntimeError",
    "ThreadContextError",
    "ThreadLevelError",
    "ValidationError",
    "Interpreter",
    "run_program",
    "MpiProcess",
    "MpiWorld",
    "RunResult",
    "Team",
]
