"""simomp — fork/join teams, barriers, worksharing."""

from .team import Team

__all__ = ["Team"]
