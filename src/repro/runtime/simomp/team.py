"""simomp — the explicit fork/join OpenMP-like thread runtime.

A :class:`Team` is one parallel region instance: the encountering thread
becomes tid 0 (the master), ``size - 1`` workers are spawned, and
``Team.run`` joins them (the join is the region's implicit barrier from the
master's perspective; the interpreter emits the semantic implicit barrier
explicitly before the join so *all* threads synchronize, as OpenMP
requires).  Teams nest freely — a worker encountering another ``parallel``
creates a sub-team, which is the perfectly nested model the paper assumes.

All blocking (barriers, the master's join) goes through the world's
SchedPoint hooks: condition-notified under real threads, cooperative and
fully deterministic under an installed scheduler — where workers get
deterministic hierarchical names so a run is reproducible from its schedule
choice sequence alone.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

from ..errors import AbortedError, DeadlockError, ValidationError
from ..schedpoint import SchedPoint


class Team:
    def __init__(self, world: "MpiWorld", proc: "MpiProcess", size: int) -> None:  # noqa: F821
        if size < 1:
            raise ValueError("team size must be >= 1")
        self.world = world
        self.proc = proc
        self.size = size
        # Generation barrier.
        self._bar_cond = threading.Condition()
        self._bar_count = 0
        self._bar_gen = 0
        # Worker completion (the master's cooperative join).
        self._done_cond = threading.Condition()
        self._done = 0
        # single/sections claims: (construct_uid, encounter_index) -> tid.
        self._claim_lock = threading.Lock()
        self._claims: Dict[Tuple[int, int], int] = {}

    # -- fork/join -------------------------------------------------------------

    def run(self, body: Callable[[int], None]) -> None:
        """Execute ``body(tid)`` on ``size`` threads (master = caller)."""
        self.proc.enter_parallel(self.size)
        try:
            if self.size == 1:
                self._run_guarded(body, 0)
                return
            names = self.world.hooks.child_names(self.size)
            workers = [
                threading.Thread(
                    target=self._worker_main, args=(body, tid, names[tid]),
                    name=f"rank{self.proc.rank}-tid{tid}", daemon=True,
                )
                for tid in range(1, self.size)
            ]
            for t in workers:
                t.start()
            self.world.hooks.await_children(names)
            self._run_guarded(body, 0)
            self._join_workers(workers)
        finally:
            self.proc.exit_parallel(self.size)

    def _worker_main(self, body: Callable[[int], None], tid: int,
                     name: Optional[str]) -> None:
        if name is not None:
            self.world.hooks.attach(name)
        try:
            self._run_guarded(body, tid)
        finally:
            with self._done_cond:
                self._done += 1
                self.world.notify(self._done_cond)
            if name is not None:
                self.world.hooks.detach()

    def _join_workers(self, workers) -> None:
        deadline = self.world.clock() + self.world.timeout * 2
        with self._done_cond:
            while self._done < len(workers):
                self.world.check_abort()
                if self.world.clock() > deadline:
                    break  # fall through to the real join + abort check
                self.world.wait(
                    self._done_cond,
                    f"rank {self.proc.rank} master joining its team",
                    lambda: self._done >= len(workers),
                )
        for t in workers:
            t.join(timeout=1.0)
        self.world.check_abort()

    def _run_guarded(self, body: Callable[[int], None], tid: int) -> None:
        try:
            body(tid)
        except AbortedError:
            if tid == 0:
                raise
        except ValidationError as err:
            if err.rank is None:
                err.rank = self.proc.rank
            self.world.abort(err)
            with self._bar_cond:
                self.world.notify(self._bar_cond)
            if tid == 0:
                raise AbortedError() from err
        except Exception as err:  # noqa: BLE001 - surface interpreter bugs
            wrapped = ValidationError(
                f"internal error on rank {self.proc.rank} tid {tid}: {err!r}"
            )
            wrapped.rank = self.proc.rank
            self.world.abort(wrapped)
            with self._bar_cond:
                self.world.notify(self._bar_cond)
            if tid == 0:
                raise AbortedError() from err

    # -- barrier --------------------------------------------------------------------

    def barrier(self) -> None:
        """Team barrier with abort notification and hang detection."""
        if self.size == 1:
            self.world.check_abort()
            return
        self.world.yield_point(SchedPoint.OMP_BARRIER, f"r{self.proc.rank}")
        deadline = self.world.clock() + self.world.timeout
        with self._bar_cond:
            gen = self._bar_gen
            self._bar_count += 1
            if self._bar_count == self.size:
                self._bar_count = 0
                self._bar_gen += 1
                self.world.notify(self._bar_cond)
                return
            while self._bar_gen == gen:
                self.world.check_abort()
                if self.world.clock() > deadline:
                    self.world.abort(DeadlockError(
                        f"OpenMP barrier timed out on rank {self.proc.rank} "
                        f"({self._bar_count}/{self.size} threads arrived) — "
                        f"some thread never reaches the barrier"
                    ))
                    self.world.check_abort()
                self.world.wait(
                    self._bar_cond,
                    f"rank {self.proc.rank} in omp barrier "
                    f"({self._bar_count}/{self.size} arrived)",
                    lambda: self._bar_gen != gen,
                )

    # -- worksharing --------------------------------------------------------------------

    def claim(self, construct_uid: int, encounter: int, tid: int) -> bool:
        """First thread to claim ``(construct, encounter)`` wins (single)."""
        self.world.yield_point(SchedPoint.CLAIM,
                               f"r{self.proc.rank}t{tid}u{construct_uid}")
        with self._claim_lock:
            key = (construct_uid, encounter)
            won = key not in self._claims
            if won:
                self._claims[key] = tid
        self.world.note_observation(("claim", construct_uid, encounter, won))
        return won

    def static_chunk(self, tid: int, count: int) -> range:
        """Indices [0, count) assigned to ``tid`` under static scheduling
        (contiguous blocks, remainder spread over the first threads)."""
        base = count // self.size
        extra = count % self.size
        lo = tid * base + min(tid, extra)
        size = base + (1 if tid < extra else 0)
        return range(lo, lo + size)

    def section_owner(self, index: int) -> int:
        """Round-robin assignment of section ``index`` to a thread."""
        return index % self.size
