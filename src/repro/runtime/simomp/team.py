"""simomp — the explicit fork/join OpenMP-like thread runtime.

A :class:`Team` is one parallel region instance: the encountering thread
becomes tid 0 (the master), ``size - 1`` workers are spawned, and
``Team.run`` joins them (the join is the region's implicit barrier from the
master's perspective; the interpreter emits the semantic implicit barrier
explicitly before the join so *all* threads synchronize, as OpenMP
requires).  Teams nest freely — a worker encountering another ``parallel``
creates a sub-team, which is the perfectly nested model the paper assumes.

All blocking primitives poll the world abort flag so one verdict anywhere
unwinds every thread of every rank.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import AbortedError, DeadlockError, ValidationError

_POLL = 0.02


class Team:
    def __init__(self, world: "MpiWorld", proc: "MpiProcess", size: int) -> None:  # noqa: F821
        if size < 1:
            raise ValueError("team size must be >= 1")
        self.world = world
        self.proc = proc
        self.size = size
        # Generation barrier.
        self._bar_cond = threading.Condition()
        self._bar_count = 0
        self._bar_gen = 0
        # single/sections claims: (construct_uid, encounter_index) -> tid.
        self._claim_lock = threading.Lock()
        self._claims: Dict[Tuple[int, int], int] = {}

    # -- fork/join -------------------------------------------------------------

    def run(self, body: Callable[[int], None]) -> None:
        """Execute ``body(tid)`` on ``size`` threads (master = caller)."""
        self.proc.enter_parallel(self.size)
        try:
            if self.size == 1:
                self._run_guarded(body, 0)
                return
            workers = [
                threading.Thread(
                    target=self._run_guarded, args=(body, tid),
                    name=f"rank{self.proc.rank}-tid{tid}", daemon=True,
                )
                for tid in range(1, self.size)
            ]
            for t in workers:
                t.start()
            self._run_guarded(body, 0)
            for t in workers:
                t.join(timeout=self.world.timeout * 2)
            self.world.check_abort()
        finally:
            self.proc.exit_parallel(self.size)

    def _run_guarded(self, body: Callable[[int], None], tid: int) -> None:
        try:
            body(tid)
        except AbortedError:
            if tid == 0:
                raise
        except ValidationError as err:
            if err.rank is None:
                err.rank = self.proc.rank
            self.world.abort(err)
            with self._bar_cond:
                self._bar_cond.notify_all()
            if tid == 0:
                raise AbortedError() from err
        except Exception as err:  # noqa: BLE001 - surface interpreter bugs
            wrapped = ValidationError(
                f"internal error on rank {self.proc.rank} tid {tid}: {err!r}"
            )
            wrapped.rank = self.proc.rank
            self.world.abort(wrapped)
            with self._bar_cond:
                self._bar_cond.notify_all()
            if tid == 0:
                raise AbortedError() from err

    # -- barrier --------------------------------------------------------------------

    def barrier(self) -> None:
        """Team barrier with abort polling and hang detection."""
        if self.size == 1:
            self.world.check_abort()
            return
        deadline = self.world.clock() + self.world.timeout
        with self._bar_cond:
            gen = self._bar_gen
            self._bar_count += 1
            if self._bar_count == self.size:
                self._bar_count = 0
                self._bar_gen += 1
                self._bar_cond.notify_all()
                return
            while self._bar_gen == gen:
                self.world.check_abort()
                if self.world.clock() > deadline:
                    self.world.abort(DeadlockError(
                        f"OpenMP barrier timed out on rank {self.proc.rank} "
                        f"({self._bar_count}/{self.size} threads arrived) — "
                        f"some thread never reaches the barrier"
                    ))
                    self.world.check_abort()
                self._bar_cond.wait(_POLL)

    # -- worksharing --------------------------------------------------------------------

    def claim(self, construct_uid: int, encounter: int, tid: int) -> bool:
        """First thread to claim ``(construct, encounter)`` wins (single)."""
        with self._claim_lock:
            key = (construct_uid, encounter)
            if key in self._claims:
                return False
            self._claims[key] = tid
            return True

    def static_chunk(self, tid: int, count: int) -> range:
        """Indices [0, count) assigned to ``tid`` under static scheduling
        (contiguous blocks, remainder spread over the first threads)."""
        base = count // self.size
        extra = count % self.size
        lo = tid * base + min(tid, extra)
        size = base + (1 if tid < extra else 0)
        return range(lo, lo + size)

    def section_owner(self, index: int) -> int:
        """Round-robin assignment of section ``index`` to a thread."""
        return index % self.size
