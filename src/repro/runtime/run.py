"""High-level execution façade: run a minilang program under the simulator.

``run_program`` is what the examples, tests and benchmarks use: it wires an
:class:`MpiWorld`, one interpreter per rank, and the check state (fed with
the analysis' check-group kinds when an instrumented program is run).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..minilang import ast_nodes as A
from ..mpi.thread_levels import ThreadLevel
from .checks import CheckState
from .interp.interpreter import Interpreter
from .simmpi.world import MpiWorld, RunResult


def run_program(
    program: A.Program,
    nprocs: int = 2,
    num_threads: int = 2,
    thread_level: ThreadLevel = ThreadLevel.MULTIPLE,
    group_kinds: Optional[Dict[int, str]] = None,
    entry: str = "main",
    timeout: float = 10.0,
) -> RunResult:
    """Execute ``program`` on ``nprocs`` simulated ranks.

    Parameters
    ----------
    program:
        Original or instrumented AST.
    num_threads:
        Default OpenMP team size (``num_threads`` clauses override it).
    thread_level:
        Maximum thread support the simulated MPI grants
        (``MPI_Init_thread`` requests are capped at this).
    group_kinds:
        ``ProgramAnalysis.group_kinds`` when running instrumented code —
        selects the error type the ENTER counters raise.
    timeout:
        Seconds before a blocked collective/barrier is declared deadlocked.
    """
    world = MpiWorld(nprocs, thread_level=thread_level, timeout=timeout)

    def target(proc):
        checks = CheckState(proc, group_kinds)
        interp = Interpreter(program, proc, check_state=checks,
                             num_threads=num_threads)
        return interp.run(entry)

    return world.run(target)
