"""High-level execution façade: run a minilang program under the simulator.

``run_program`` is what the examples, tests and benchmarks use: it wires an
:class:`MpiWorld`, one interpreter per rank, and the check state (fed with
the analysis' check-group kinds when an instrumented program is run).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..minilang import ast_nodes as A
from ..mpi.thread_levels import ThreadLevel
from .checks import CheckState
from .interp.interpreter import Interpreter
from .schedpoint import ExecutionHooks
from .simmpi.world import MpiWorld, RunResult

#: Wall-clock seconds before a blocked wait is declared deadlocked when the
#: caller does not thread an explicit budget through.
DEFAULT_TIMEOUT = 10.0

#: Virtual-clock budget (scheduling steps) under a cooperative scheduler —
#: real deadlocks are detected structurally and immediately there; the step
#: budget only catches livelocks that keep yielding forever.
DEFAULT_STEP_BUDGET = 1_000_000.0


def run_program(
    program: A.Program,
    nprocs: int = 2,
    num_threads: int = 2,
    thread_level: ThreadLevel = ThreadLevel.MULTIPLE,
    group_kinds: Optional[Dict[int, str]] = None,
    entry: str = "main",
    timeout: Optional[float] = None,
    scheduler: Optional[ExecutionHooks] = None,
) -> RunResult:
    """Execute ``program`` on ``nprocs`` simulated ranks.

    Parameters
    ----------
    program:
        Original or instrumented AST.
    num_threads:
        Default OpenMP team size (``num_threads`` clauses override it).
    thread_level:
        Maximum thread support the simulated MPI grants
        (``MPI_Init_thread`` requests are capped at this).
    group_kinds:
        ``ProgramAnalysis.group_kinds`` when running instrumented code —
        selects the error type the ENTER counters raise.
    timeout:
        Deadlock budget.  Wall-clock seconds in threaded mode (default
        ``DEFAULT_TIMEOUT``); under a scheduler the clock is *virtual*
        (one tick per scheduling decision), deadlocks are reported the
        instant every logical thread blocks, and the default budget is the
        large ``DEFAULT_STEP_BUDGET`` livelock guard.
    scheduler:
        A cooperative scheduler from :mod:`repro.explore` — installs
        deterministic one-thread-at-a-time execution with trace recording.
        ``None`` (default) keeps normal threaded execution.
    """
    if timeout is None:
        timeout = DEFAULT_STEP_BUDGET if scheduler is not None else DEFAULT_TIMEOUT
    world = MpiWorld(nprocs, thread_level=thread_level, timeout=timeout,
                     hooks=scheduler)

    def target(proc):
        checks = CheckState(proc, group_kinds)
        interp = Interpreter(program, proc, check_state=checks,
                             num_threads=num_threads)
        return interp.run(entry)

    return world.run(target)
