"""minilang — the C-like MPI+OpenMP mini-language substrate.

Public surface: :func:`parse_program`, :func:`pretty`, the AST node classes
(``repro.minilang.ast_nodes``), semantic checking, and the programmatic
:class:`FuncBuilder` API.
"""

from . import ast_nodes
from .ast_nodes import Program, FuncDef, ast_equal
from .builder import FuncBuilder, binop, call, idx, lit, program, var
from .lexer import tokenize
from .parser import ParseError, parse_function, parse_program
from .pretty import pretty
from .semantics import SemanticError, SemanticIssue, check_program
from .tokens import LexError

__all__ = [
    "ast_nodes",
    "Program",
    "FuncDef",
    "ast_equal",
    "FuncBuilder",
    "binop",
    "call",
    "idx",
    "lit",
    "program",
    "var",
    "tokenize",
    "ParseError",
    "parse_function",
    "parse_program",
    "pretty",
    "SemanticError",
    "SemanticIssue",
    "check_program",
    "LexError",
]
