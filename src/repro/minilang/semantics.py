"""Semantic checks for minilang programs.

Two groups of checks:

* classic front-end checks — undeclared variables, duplicate declarations,
  unknown functions, break/continue placement, call arity;
* OpenMP legality checks matching the paper's program model (explicit
  fork/join, *perfectly nested* regions): a ``barrier`` may not be closely
  nested inside ``single``/``master``/``critical``/``sections``/``task``; a
  worksharing or ``single``/``master`` construct may not be closely nested
  inside another worksharing/``single``/``master``/``critical``/``task``
  region of the same team.

Checks produce :class:`SemanticIssue` records; errors can be raised as a
single :class:`SemanticError` via ``check_program(..., strict=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..mpi.collectives import (
    COLLECTIVES,
    MPI_QUERIES,
    MPI_SETUP,
    POINT_TO_POINT,
    is_mpi_call,
)
from . import ast_nodes as A

#: Built-in functions available in expressions, name -> (min_args, max_args).
EXPR_BUILTINS = {
    "omp_get_thread_num": (0, 0),
    "omp_get_num_threads": (0, 0),
    "omp_get_max_threads": (0, 0),
    "abs": (1, 1),
    "min": (2, 2),
    "max": (2, 2),
    "sqrt": (1, 1),
    "mod": (2, 2),
}

#: Built-in statement-level functions.
STMT_BUILTINS = {
    "print": (0, 8),
    "work": (1, 1),  # burns deterministic interpreter cycles
}

#: Verification functions the instrumentation pass inserts; accepted by the
#: checker so instrumented programs re-check cleanly.
CHECK_BUILTINS = {
    "PARCOACH_CC": (3, 3),       # (color, name, line)
    "PARCOACH_ENTER": (2, 2),    # (node_id, what)
    "PARCOACH_EXIT": (1, 1),     # (node_id)
}


@dataclass(frozen=True)
class SemanticIssue:
    severity: str  # "error" | "warning"
    code: str
    message: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.line}:{self.col}: {self.severity}: [{self.code}] {self.message}"


class SemanticError(Exception):
    def __init__(self, issues: List[SemanticIssue]) -> None:
        super().__init__("\n".join(str(i) for i in issues))
        self.issues = issues


# OpenMP closely-nested contexts where a barrier is illegal.
_NO_BARRIER_CONTEXTS = {"single", "master", "critical", "sections", "task", "for"}
# Contexts in which worksharing/single/master constructs may not be closely nested.
_NO_WORKSHARE_CONTEXTS = {"single", "master", "critical", "sections", "task", "for"}


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.names: Set[str] = set()

    def declare(self, name: str) -> bool:
        """Declare ``name``; returns False when already declared in this scope."""
        if name in self.names:
            return False
        self.names.add(name)
        return True

    def is_declared(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return True
            scope = scope.parent
        return False


class Checker:
    def __init__(self, program: A.Program) -> None:
        self.program = program
        self.issues: List[SemanticIssue] = []
        self.func_names = {f.name for f in program.funcs}
        self.func_arity = {f.name: (len(f.params), len(f.params)) for f in program.funcs}

    # -- reporting ------------------------------------------------------------

    def error(self, code: str, message: str, node: A.Node) -> None:
        self.issues.append(SemanticIssue("error", code, message, node.line, node.col))

    def warning(self, code: str, message: str, node: A.Node) -> None:
        self.issues.append(SemanticIssue("warning", code, message, node.line, node.col))

    # -- entry ----------------------------------------------------------------

    def check(self) -> List[SemanticIssue]:
        seen: Set[str] = set()
        for func in self.program.funcs:
            if func.name in seen:
                self.error("DUP_FUNC", f"duplicate function {func.name!r}", func)
            seen.add(func.name)
        for func in self.program.funcs:
            self._check_func(func)
        return self.issues

    def _check_func(self, func: A.FuncDef) -> None:
        scope = _Scope()
        for param in func.params:
            if not scope.declare(param.name):
                self.error("DUP_PARAM", f"duplicate parameter {param.name!r}", param)
        self._check_block(func.body, scope, omp_ctx=[], in_loop=False, func=func)

    # -- statements -----------------------------------------------------------

    def _check_block(self, block: A.Block, scope: _Scope, omp_ctx: List[str],
                     in_loop: bool, func: A.FuncDef) -> None:
        inner = _Scope(scope)
        for stmt in block.stmts:
            self._check_stmt(stmt, inner, omp_ctx, in_loop, func)

    def _check_stmt(self, stmt: A.Stmt, scope: _Scope, omp_ctx: List[str],
                    in_loop: bool, func: A.FuncDef) -> None:
        if isinstance(stmt, A.Block):
            self._check_block(stmt, scope, omp_ctx, in_loop, func)
        elif isinstance(stmt, A.VarDecl):
            if stmt.array_size is not None:
                self._check_expr(stmt.array_size, scope)
            if stmt.init is not None:
                self._check_expr(stmt.init, scope)
            if not scope.declare(stmt.name):
                self.error("DUP_VAR", f"duplicate variable {stmt.name!r} in scope", stmt)
        elif isinstance(stmt, A.Assign):
            self._check_expr(stmt.target, scope)
            self._check_expr(stmt.value, scope)
        elif isinstance(stmt, A.ExprStmt):
            self._check_expr(stmt.expr, scope, stmt_level=True)
        elif isinstance(stmt, A.If):
            self._check_expr(stmt.cond, scope)
            self._check_block(stmt.then_body, scope, omp_ctx, in_loop, func)
            if stmt.else_body is not None:
                self._check_block(stmt.else_body, scope, omp_ctx, in_loop, func)
        elif isinstance(stmt, A.While):
            self._check_expr(stmt.cond, scope)
            self._check_block(stmt.body, scope, omp_ctx, True, func)
        elif isinstance(stmt, A.For):
            loop_scope = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, loop_scope, omp_ctx, in_loop, func)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, loop_scope)
            if stmt.step is not None:
                self._check_stmt(stmt.step, loop_scope, omp_ctx, in_loop, func)
            self._check_block(stmt.body, loop_scope, omp_ctx, True, func)
        elif isinstance(stmt, A.Return):
            if omp_ctx:
                self.error(
                    "RETURN_IN_OMP",
                    "return may not branch out of an OpenMP structured block",
                    stmt,
                )
            if stmt.value is not None:
                self._check_expr(stmt.value, scope)
                if func.ret_type == "void":
                    self.error("RET_VALUE", f"void function {func.name!r} returns a value", stmt)
            elif func.ret_type != "void":
                self.error("RET_MISSING", f"non-void function {func.name!r} returns no value", stmt)
        elif isinstance(stmt, A.Break):
            if not in_loop:
                self.error("BREAK_OUTSIDE", "break outside of a loop", stmt)
        elif isinstance(stmt, A.Continue):
            if not in_loop:
                self.error("CONTINUE_OUTSIDE", "continue outside of a loop", stmt)
        elif isinstance(stmt, A.OmpStmt):
            self._check_omp(stmt, scope, omp_ctx, in_loop, func)
        else:  # pragma: no cover - defensive
            self.error("UNKNOWN_STMT", f"unknown statement {type(stmt).__name__}", stmt)

    # -- OpenMP nesting ---------------------------------------------------------

    def _check_omp(self, stmt: A.OmpStmt, scope: _Scope, omp_ctx: List[str],
                   in_loop: bool, func: A.FuncDef) -> None:
        closest = omp_ctx[-1] if omp_ctx else None
        if isinstance(stmt, A.OmpBarrier):
            if closest in _NO_BARRIER_CONTEXTS:
                self.error(
                    "BARRIER_NESTING",
                    f"barrier may not be closely nested inside a {closest!r} region",
                    stmt,
                )
            return
        if isinstance(stmt, A.OmpParallel):
            if stmt.num_threads is not None:
                self._check_expr(stmt.num_threads, scope)
            for name in stmt.private + stmt.shared:
                if not scope.is_declared(name):
                    self.error("UNDECLARED", f"clause names undeclared variable {name!r}", stmt)
            # break/continue may not escape the structured block: reset in_loop.
            self._check_block(stmt.body, scope, omp_ctx + ["parallel"], False, func)
            return
        if isinstance(stmt, A.OmpSingle):
            self._enforce_workshare_nesting("single", closest, stmt)
            self._check_block(stmt.body, scope, omp_ctx + ["single"], False, func)
            return
        if isinstance(stmt, A.OmpMaster):
            self._enforce_workshare_nesting("master", closest, stmt)
            self._check_block(stmt.body, scope, omp_ctx + ["master"], False, func)
            return
        if isinstance(stmt, A.OmpCritical):
            self._check_block(stmt.body, scope, omp_ctx + ["critical"], False, func)
            return
        if isinstance(stmt, A.OmpTask):
            self.warning(
                "TASK_MODEL",
                "task constructs are outside the paper's fork/join model; "
                "collectives inside tasks are treated as multithreaded",
                stmt,
            )
            self._check_block(stmt.body, scope, omp_ctx + ["task"], False, func)
            return
        if isinstance(stmt, A.OmpFor):
            self._enforce_workshare_nesting("for", closest, stmt)
            loop = stmt.loop
            if not isinstance(loop.init, A.VarDecl) and loop.init is not None:
                self.warning("OMPFOR_INIT", "omp for loop should declare its induction variable", stmt)
            loop_scope = _Scope(scope)
            if loop.init is not None:
                self._check_stmt(loop.init, loop_scope, omp_ctx, in_loop, func)
            if loop.cond is not None:
                self._check_expr(loop.cond, loop_scope)
            if loop.step is not None:
                self._check_stmt(loop.step, loop_scope, omp_ctx, in_loop, func)
            # break may not leave the worksharing loop; nested loops re-enable it.
            self._check_block(loop.body, loop_scope, omp_ctx + ["for"], False, func)
            return
        if isinstance(stmt, A.OmpSections):
            self._enforce_workshare_nesting("sections", closest, stmt)
            for section in stmt.sections:
                self._check_block(section, scope, omp_ctx + ["sections"], False, func)
            return
        self.error("UNKNOWN_OMP", f"unknown OpenMP node {type(stmt).__name__}", stmt)

    def _enforce_workshare_nesting(self, kind: str, closest: Optional[str],
                                   stmt: A.Stmt) -> None:
        if closest in _NO_WORKSHARE_CONTEXTS:
            self.error(
                "WORKSHARE_NESTING",
                f"{kind!r} construct may not be closely nested inside a {closest!r} region",
                stmt,
            )

    # -- expressions ---------------------------------------------------------

    def _check_expr(self, expr: A.Expr, scope: _Scope, stmt_level: bool = False) -> None:
        if isinstance(expr, (A.IntLit, A.FloatLit, A.BoolLit, A.StringLit)):
            return
        if isinstance(expr, A.VarRef):
            if not scope.is_declared(expr.name):
                self.error("UNDECLARED", f"undeclared variable {expr.name!r}", expr)
            return
        if isinstance(expr, A.ArrayRef):
            if not scope.is_declared(expr.name):
                self.error("UNDECLARED", f"undeclared array {expr.name!r}", expr)
            self._check_expr(expr.index, scope)
            return
        if isinstance(expr, A.BinOp):
            self._check_expr(expr.left, scope)
            self._check_expr(expr.right, scope)
            return
        if isinstance(expr, A.UnaryOp):
            self._check_expr(expr.operand, scope)
            return
        if isinstance(expr, A.Call):
            self._check_call(expr, scope, stmt_level)
            return
        self.error("UNKNOWN_EXPR", f"unknown expression {type(expr).__name__}", expr)

    def _check_call(self, call: A.Call, scope: _Scope, stmt_level: bool) -> None:
        name = call.name
        arity: Optional[tuple] = None
        if name in self.func_arity:
            arity = self.func_arity[name]
        elif name in COLLECTIVES:
            arity = COLLECTIVES[name].arity
        elif name in POINT_TO_POINT:
            arity = POINT_TO_POINT[name]
        elif name in MPI_SETUP:
            arity = MPI_SETUP[name]
        elif name in MPI_QUERIES:
            arity = (0, 0)
        elif name in EXPR_BUILTINS:
            arity = EXPR_BUILTINS[name]
        elif name in STMT_BUILTINS:
            arity = STMT_BUILTINS[name]
        elif name in CHECK_BUILTINS:
            arity = CHECK_BUILTINS[name]
        else:
            self.error("UNKNOWN_FUNC", f"call to unknown function {name!r}", call)
        if arity is not None:
            lo, hi = arity
            if not (lo <= len(call.args) <= hi):
                self.error(
                    "ARITY",
                    f"{name} expects between {lo} and {hi} arguments, got {len(call.args)}",
                    call,
                )
        # MPI buffer arguments are passed by variable name; check the lvalues
        # exist, other arguments are plain expressions.
        for arg in call.args:
            self._check_expr(arg, scope)


def check_program(program: A.Program, strict: bool = False) -> List[SemanticIssue]:
    """Run all semantic checks.

    With ``strict=True`` raise :class:`SemanticError` when any *error*
    severity issue is found (warnings never raise).
    """
    issues = Checker(program).check()
    if strict:
        errors = [i for i in issues if i.severity == "error"]
        if errors:
            raise SemanticError(errors)
    return issues
