"""Token definitions for the minilang lexer.

The mini-language is a small C-like language with ``#pragma omp`` directives
and MPI call statements — just enough surface syntax for the PARCOACH
analyses: structured control flow, function calls, OpenMP structured blocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    # Literals / identifiers
    IDENT = "IDENT"
    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"

    # Keywords
    KW_INT = "int"
    KW_FLOAT = "float"
    KW_BOOL = "bool"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_PRAGMA = "pragma"  # appears after '#'

    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    HASH = "#"

    # Operators
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"
    PLUSEQ = "+="
    MINUSEQ = "-="
    STAREQ = "*="
    SLASHEQ = "/="
    PLUSPLUS = "++"
    MINUSMINUS = "--"

    # Structure
    NEWLINE = "NEWLINE"  # only significant inside pragma directives
    EOF = "EOF"


#: Reserved words mapped to their token types.
KEYWORDS = {
    "int": TokenType.KW_INT,
    "float": TokenType.KW_FLOAT,
    "double": TokenType.KW_FLOAT,  # alias; minilang has one float type
    "bool": TokenType.KW_BOOL,
    "void": TokenType.KW_VOID,
    "if": TokenType.KW_IF,
    "else": TokenType.KW_ELSE,
    "while": TokenType.KW_WHILE,
    "for": TokenType.KW_FOR,
    "return": TokenType.KW_RETURN,
    "break": TokenType.KW_BREAK,
    "continue": TokenType.KW_CONTINUE,
    "true": TokenType.KW_TRUE,
    "false": TokenType.KW_FALSE,
    "pragma": TokenType.KW_PRAGMA,
}

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPS = [
    ("==", TokenType.EQ),
    ("!=", TokenType.NE),
    ("<=", TokenType.LE),
    (">=", TokenType.GE),
    ("&&", TokenType.AND),
    ("||", TokenType.OR),
    ("+=", TokenType.PLUSEQ),
    ("-=", TokenType.MINUSEQ),
    ("*=", TokenType.STAREQ),
    ("/=", TokenType.SLASHEQ),
    ("++", TokenType.PLUSPLUS),
    ("--", TokenType.MINUSMINUS),
]

SINGLE_CHAR_OPS = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMI,
    "#": TokenType.HASH,
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.NOT,
}


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based line/column)."""

    type: TokenType
    value: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.col})"


class LexError(Exception):
    """Raised on malformed input (unknown character, unterminated string)."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.message = message
        self.line = line
        self.col = col
