"""Hand-written lexer for the minilang hybrid language.

Newlines are normally whitespace, except inside a ``#pragma`` directive where
the newline terminates the directive (C semantics), so the lexer emits a
``NEWLINE`` token while in pragma mode.
"""

from __future__ import annotations

from typing import Iterator, List

from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPS,
    SINGLE_CHAR_OPS,
    LexError,
    Token,
    TokenType,
)


class Lexer:
    """Converts source text into a token stream.

    Parameters
    ----------
    source:
        The program text.
    filename:
        Used only in error messages.
    """

    def __init__(self, source: str, filename: str = "<string>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1
        self._in_pragma = False

    # -- low-level helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    # -- token producers ----------------------------------------------------

    def _skip_whitespace_and_comments(self) -> List[Token]:
        """Advance over blanks and comments; may emit a NEWLINE in pragma mode."""
        emitted: List[Token] = []
        while self.pos < len(self.source):
            ch = self._peek()
            if ch == "\n":
                if self._in_pragma:
                    emitted.append(Token(TokenType.NEWLINE, "\n", self.line, self.col))
                    self._in_pragma = False
                self._advance()
            elif ch in " \t\r":
                self._advance()
            elif ch == "\\" and self._peek(1) == "\n":
                # Line continuation (used in long pragmas).
                self._advance(2)
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start_line, start_col)
            else:
                break
        return emitted

    def _lex_number(self) -> Token:
        start_line, start_col = self.line, self.col
        start = self.pos
        seen_dot = False
        while self.pos < len(self.source) and (
            self._peek().isdigit() or (self._peek() == "." and not seen_dot)
        ):
            if self._peek() == ".":
                # A dot must be followed by a digit to count as a float part.
                if not self._peek(1).isdigit():
                    break
                seen_dot = True
            self._advance()
        # Exponent part: 1e5, 2.5e-3
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            seen_dot = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        ttype = TokenType.FLOAT if seen_dot else TokenType.INT
        return Token(ttype, text, start_line, start_col)

    def _lex_ident(self) -> Token:
        start_line, start_col = self.line, self.col
        start = self.pos
        while self.pos < len(self.source) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            self._advance()
        text = self.source[start : self.pos]
        ttype = KEYWORDS.get(text, TokenType.IDENT)
        return Token(ttype, text, start_line, start_col)

    def _lex_string(self) -> Token:
        start_line, start_col = self.line, self.col
        quote = self._peek()
        self._advance()
        chars: List[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise LexError("unterminated string literal", start_line, start_col)
            if ch == "\n":
                raise LexError("newline in string literal", self.line, self.col)
            if ch == "\\":
                nxt = self._peek(1)
                escapes = {"n": "\n", "t": "\t", "\\": "\\", '"': '"', "'": "'", "0": "\0"}
                if nxt in escapes:
                    chars.append(escapes[nxt])
                    self._advance(2)
                    continue
                raise LexError(f"unknown escape \\{nxt}", self.line, self.col)
            if ch == quote:
                self._advance()
                break
            chars.append(ch)
            self._advance()
        return Token(TokenType.STRING, "".join(chars), start_line, start_col)

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until (and including) EOF."""
        while True:
            for tok in self._skip_whitespace_and_comments():
                yield tok
            if self.pos >= len(self.source):
                if self._in_pragma:
                    # Pragma at end of file without trailing newline.
                    yield Token(TokenType.NEWLINE, "", self.line, self.col)
                    self._in_pragma = False
                yield Token(TokenType.EOF, "", self.line, self.col)
                return
            ch = self._peek()
            if ch.isdigit():
                yield self._lex_number()
            elif ch.isalpha() or ch == "_":
                yield self._lex_ident()
            elif ch in "\"'":
                yield self._lex_string()
            elif ch == "#":
                self._in_pragma = True
                yield Token(TokenType.HASH, "#", self.line, self.col)
                self._advance()
            else:
                for text, ttype in MULTI_CHAR_OPS:
                    if self.source.startswith(text, self.pos):
                        tok = Token(ttype, text, self.line, self.col)
                        self._advance(len(text))
                        yield tok
                        break
                else:
                    if ch in SINGLE_CHAR_OPS:
                        yield Token(SINGLE_CHAR_OPS[ch], ch, self.line, self.col)
                        self._advance()
                    else:
                        raise LexError(f"unexpected character {ch!r}", self.line, self.col)


def tokenize(source: str, filename: str = "<string>") -> List[Token]:
    """Tokenize ``source`` fully, returning the token list (ending with EOF)."""
    return list(Lexer(source, filename).tokens())
