"""Fluent programmatic construction of minilang ASTs.

Used by the workload generators (``repro.bench``) and by property-based tests
to build large programs without going through text, e.g.::

    b = FuncBuilder("main")
    b.decl("int", "x", lit(0))
    with b.omp_parallel(num_threads=lit(4)):
        with b.omp_single():
            b.call("MPI_Barrier")
    program = Program(funcs=[b.build()])
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Sequence, Union

from . import ast_nodes as A

ExprLike = Union[A.Expr, int, float, bool, str]


def lit(value: Union[int, float, bool, str]) -> A.Expr:
    """Wrap a Python literal into the corresponding minilang literal node."""
    if isinstance(value, bool):
        return A.BoolLit(value=value)
    if isinstance(value, int):
        return A.IntLit(value=value)
    if isinstance(value, float):
        return A.FloatLit(value=value)
    if isinstance(value, str):
        return A.StringLit(value=value)
    raise TypeError(f"cannot make a literal from {type(value).__name__}")


def _expr(value: ExprLike) -> A.Expr:
    return value if isinstance(value, A.Expr) else lit(value)


def var(name: str) -> A.VarRef:
    return A.VarRef(name=name)


def idx(name: str, index: ExprLike) -> A.ArrayRef:
    return A.ArrayRef(name=name, index=_expr(index))


def binop(op: str, left: ExprLike, right: ExprLike) -> A.BinOp:
    return A.BinOp(op=op, left=_expr(left), right=_expr(right))


def call(name: str, *args: ExprLike) -> A.Call:
    return A.Call(name=name, args=[_expr(a) for a in args])


class FuncBuilder:
    """Builds one function; statement-adding methods append to the innermost
    open block (``with`` contexts open nested blocks)."""

    def __init__(self, name: str, ret_type: str = "void",
                 params: Optional[Sequence[tuple]] = None) -> None:
        self.name = name
        self.ret_type = ret_type
        self.params = [A.Param(type_name=t, name=n) for t, n in (params or [])]
        self._stack: List[List[A.Stmt]] = [[]]

    # -- low-level ----------------------------------------------------------

    def add(self, stmt: A.Stmt) -> A.Stmt:
        self._stack[-1].append(stmt)
        return stmt

    @contextlib.contextmanager
    def _block(self) -> Iterator[A.Block]:
        self._stack.append([])
        block = A.Block()
        try:
            yield block
        finally:
            block.stmts = self._stack.pop()

    # -- plain statements ------------------------------------------------------

    def decl(self, type_name: str, name: str, init: Optional[ExprLike] = None,
             array_size: Optional[ExprLike] = None) -> None:
        self.add(A.VarDecl(
            type_name=type_name, name=name,
            init=_expr(init) if init is not None else None,
            array_size=_expr(array_size) if array_size is not None else None,
        ))

    def assign(self, target: Union[str, A.Expr], value: ExprLike, op: str = "=") -> None:
        tgt = var(target) if isinstance(target, str) else target
        self.add(A.Assign(target=tgt, op=op, value=_expr(value)))

    def call(self, name: str, *args: ExprLike) -> None:
        self.add(A.ExprStmt(expr=call(name, *args)))

    def ret(self, value: Optional[ExprLike] = None) -> None:
        self.add(A.Return(value=_expr(value) if value is not None else None))

    def brk(self) -> None:
        self.add(A.Break())

    def cont(self) -> None:
        self.add(A.Continue())

    # -- control flow ----------------------------------------------------------

    @contextlib.contextmanager
    def if_(self, cond: ExprLike) -> Iterator[None]:
        with self._block() as body:
            yield
        self.add(A.If(cond=_expr(cond), then_body=body))

    @contextlib.contextmanager
    def if_else(self, cond: ExprLike) -> Iterator["_ElseSwitch"]:
        node = A.If(cond=_expr(cond), then_body=A.Block(), else_body=A.Block())
        switch = _ElseSwitch(self, node)
        self._stack.append([])
        try:
            yield switch
        finally:
            switch._finish()
        self.add(node)

    @contextlib.contextmanager
    def while_(self, cond: ExprLike) -> Iterator[None]:
        with self._block() as body:
            yield
        self.add(A.While(cond=_expr(cond), body=body))

    @contextlib.contextmanager
    def for_range(self, name: str, stop: ExprLike, start: ExprLike = 0,
                  step: int = 1) -> Iterator[None]:
        """``for (int name = start; name < stop; name += step) { ... }``"""
        with self._block() as body:
            yield
        self.add(_make_for(name, start, stop, step, body))

    # -- OpenMP -------------------------------------------------------------------

    @contextlib.contextmanager
    def omp_parallel(self, num_threads: Optional[ExprLike] = None,
                     private: Optional[Sequence[str]] = None) -> Iterator[None]:
        with self._block() as body:
            yield
        self.add(A.OmpParallel(
            body=body,
            num_threads=_expr(num_threads) if num_threads is not None else None,
            private=list(private or []),
        ))

    @contextlib.contextmanager
    def omp_single(self, nowait: bool = False) -> Iterator[None]:
        with self._block() as body:
            yield
        self.add(A.OmpSingle(body=body, nowait=nowait))

    @contextlib.contextmanager
    def omp_master(self) -> Iterator[None]:
        with self._block() as body:
            yield
        self.add(A.OmpMaster(body=body))

    @contextlib.contextmanager
    def omp_critical(self, name: str = "") -> Iterator[None]:
        with self._block() as body:
            yield
        self.add(A.OmpCritical(body=body, name=name))

    @contextlib.contextmanager
    def omp_task(self) -> Iterator[None]:
        with self._block() as body:
            yield
        self.add(A.OmpTask(body=body))

    def omp_barrier(self) -> None:
        self.add(A.OmpBarrier())

    @contextlib.contextmanager
    def omp_for(self, name: str, stop: ExprLike, start: ExprLike = 0,
                step: int = 1, nowait: bool = False) -> Iterator[None]:
        with self._block() as body:
            yield
        loop = _make_for(name, start, stop, step, body)
        self.add(A.OmpFor(loop=loop, nowait=nowait))

    @contextlib.contextmanager
    def omp_sections(self, count: int, nowait: bool = False) -> Iterator[List[A.Block]]:
        """Yield ``count`` empty section blocks; fill them via nested builders
        or by appending statements directly to each block's ``stmts``."""
        sections = [A.Block() for _ in range(count)]
        yield sections
        self.add(A.OmpSections(sections=sections, nowait=nowait))

    # -- finish ----------------------------------------------------------------

    def build(self) -> A.FuncDef:
        if len(self._stack) != 1:
            raise RuntimeError("unclosed block in FuncBuilder")
        return A.FuncDef(
            ret_type=self.ret_type, name=self.name, params=self.params,
            body=A.Block(stmts=self._stack[0]),
        )


class _ElseSwitch:
    """Helper for ``if_else``: call ``.otherwise()`` to switch to the else arm."""

    def __init__(self, builder: FuncBuilder, node: A.If) -> None:
        self._builder = builder
        self._node = node
        self._in_else = False

    def otherwise(self) -> None:
        if self._in_else:
            raise RuntimeError("otherwise() called twice")
        self._node.then_body.stmts = self._builder._stack.pop()
        self._builder._stack.append([])
        self._in_else = True

    def _finish(self) -> None:
        stmts = self._builder._stack.pop()
        if self._in_else:
            assert self._node.else_body is not None
            self._node.else_body.stmts = stmts
        else:
            self._node.then_body.stmts = stmts
            self._node.else_body = None


def _make_for(name: str, start: ExprLike, stop: ExprLike, step: int,
              body: A.Block) -> A.For:
    return A.For(
        init=A.VarDecl(type_name="int", name=name, init=_expr(start)),
        cond=A.BinOp(op="<", left=A.VarRef(name=name), right=_expr(stop)),
        step=A.Assign(target=A.VarRef(name=name), op="+=", value=_expr(step)),
        body=body,
    )


def program(*funcs: Union[A.FuncDef, FuncBuilder], filename: str = "<built>") -> A.Program:
    """Assemble a Program from FuncDefs and/or FuncBuilders."""
    out: List[A.FuncDef] = []
    for f in funcs:
        out.append(f.build() if isinstance(f, FuncBuilder) else f)
    return A.Program(funcs=out, filename=filename)
