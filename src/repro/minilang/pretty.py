"""Source emitter for minilang ASTs.

``pretty(parse(src))`` re-parses to a structurally identical AST (property
tested); the instrumentation pass uses this emitter as its "code generation"
back end, the same role GCC's assembly emission plays in the paper's
compile-time overhead measurement.
"""

from __future__ import annotations

from typing import List

from . import ast_nodes as A

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, ">": 4, "<=": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}
_UNARY_PREC = 7


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"')
        .replace("\n", "\\n").replace("\t", "\\t").replace("\0", "\\0")
    )


def emit_expr(expr: A.Expr, parent_prec: int = 0) -> str:
    """Emit an expression, parenthesising only when precedence requires it."""
    if isinstance(expr, A.IntLit):
        return str(expr.value)
    if isinstance(expr, A.FloatLit):
        text = repr(expr.value)
        return text if ("." in text or "e" in text or "inf" in text or "nan" in text) else text + ".0"
    if isinstance(expr, A.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, A.StringLit):
        return f'"{_escape(expr.value)}"'
    if isinstance(expr, A.VarRef):
        return expr.name
    if isinstance(expr, A.ArrayRef):
        return f"{expr.name}[{emit_expr(expr.index)}]"
    if isinstance(expr, A.Call):
        args = ", ".join(emit_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, A.UnaryOp):
        inner = emit_expr(expr.operand, _UNARY_PREC)
        if expr.op == "-" and inner.startswith("-"):
            inner = f"({inner})"  # avoid "--x" lexing as decrement
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_prec > _UNARY_PREC else text
    if isinstance(expr, A.BinOp):
        prec = _PRECEDENCE[expr.op]
        left = emit_expr(expr.left, prec)
        # Right operand of a left-associative operator needs parens at equal
        # precedence: a - (b - c).
        right = emit_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_prec > prec else text
    raise TypeError(f"unknown expression node {type(expr).__name__}")


class _Emitter:
    def __init__(self, indent: str = "    ") -> None:
        self.lines: List[str] = []
        self.indent_str = indent
        self.depth = 0

    def line(self, text: str) -> None:
        self.lines.append(self.indent_str * self.depth + text)

    # -- statements -----------------------------------------------------------

    def stmt(self, node: A.Stmt) -> None:
        if isinstance(node, A.Block):
            self.block(node)
        elif isinstance(node, A.VarDecl):
            text = f"{node.type_name} {node.name}"
            if node.array_size is not None:
                text += f"[{emit_expr(node.array_size)}]"
            if node.init is not None:
                text += f" = {emit_expr(node.init)}"
            self.line(text + ";")
        elif isinstance(node, A.Assign):
            self.line(f"{emit_expr(node.target)} {node.op} {emit_expr(node.value)};")
        elif isinstance(node, A.ExprStmt):
            self.line(f"{emit_expr(node.expr)};")
        elif isinstance(node, A.If):
            self.line(f"if ({emit_expr(node.cond)})")
            self.block(node.then_body)
            if node.else_body is not None:
                self.line("else")
                self.block(node.else_body)
        elif isinstance(node, A.While):
            self.line(f"while ({emit_expr(node.cond)})")
            self.block(node.body)
        elif isinstance(node, A.For):
            self.line(f"for ({self._for_header(node)})")
            self.block(node.body)
        elif isinstance(node, A.Return):
            if node.value is None:
                self.line("return;")
            else:
                self.line(f"return {emit_expr(node.value)};")
        elif isinstance(node, A.Break):
            self.line("break;")
        elif isinstance(node, A.Continue):
            self.line("continue;")
        elif isinstance(node, A.OmpStmt):
            self.omp(node)
        else:
            raise TypeError(f"unknown statement node {type(node).__name__}")

    def _for_header(self, node: A.For) -> str:
        parts = []
        if node.init is None:
            parts.append("")
        elif isinstance(node.init, A.VarDecl):
            text = f"{node.init.type_name} {node.init.name}"
            if node.init.init is not None:
                text += f" = {emit_expr(node.init.init)}"
            parts.append(text)
        elif isinstance(node.init, A.Assign):
            parts.append(f"{emit_expr(node.init.target)} {node.init.op} {emit_expr(node.init.value)}")
        else:
            parts.append(emit_expr(node.init.expr))  # type: ignore[union-attr]
        parts.append(emit_expr(node.cond) if node.cond is not None else "")
        if node.step is None:
            parts.append("")
        elif isinstance(node.step, A.Assign):
            parts.append(f"{emit_expr(node.step.target)} {node.step.op} {emit_expr(node.step.value)}")
        else:
            parts.append(emit_expr(node.step.expr))  # type: ignore[union-attr]
        return "; ".join(parts)

    def block(self, node: A.Block) -> None:
        self.line("{")
        self.depth += 1
        for stmt in node.stmts:
            self.stmt(stmt)
        self.depth -= 1
        self.line("}")

    # -- OpenMP ---------------------------------------------------------------

    def omp(self, node: A.OmpStmt) -> None:
        if isinstance(node, A.OmpBarrier):
            self.line("#pragma omp barrier")
        elif isinstance(node, A.OmpParallel):
            clauses = ""
            if node.num_threads is not None:
                clauses += f" num_threads({emit_expr(node.num_threads)})"
            if node.private:
                clauses += f" private({', '.join(node.private)})"
            if node.shared:
                clauses += f" shared({', '.join(node.shared)})"
            self.line(f"#pragma omp parallel{clauses}")
            self.block(node.body)
        elif isinstance(node, A.OmpSingle):
            clauses = " nowait" if node.nowait else ""
            self.line(f"#pragma omp single{clauses}")
            self.block(node.body)
        elif isinstance(node, A.OmpMaster):
            self.line("#pragma omp master")
            self.block(node.body)
        elif isinstance(node, A.OmpCritical):
            suffix = f" ({node.name})" if node.name else ""
            self.line(f"#pragma omp critical{suffix}")
            self.block(node.body)
        elif isinstance(node, A.OmpTask):
            self.line("#pragma omp task")
            self.block(node.body)
        elif isinstance(node, A.OmpFor):
            clauses = f" schedule({node.schedule})" if node.schedule != "static" else ""
            if node.nowait:
                clauses += " nowait"
            self.line(f"#pragma omp for{clauses}")
            self.stmt(node.loop)
        elif isinstance(node, A.OmpSections):
            clauses = " nowait" if node.nowait else ""
            self.line(f"#pragma omp sections{clauses}")
            self.line("{")
            self.depth += 1
            for section in node.sections:
                self.line("#pragma omp section")
                self.block(section)
            self.depth -= 1
            self.line("}")
        else:
            raise TypeError(f"unknown OpenMP node {type(node).__name__}")

    # -- top level --------------------------------------------------------------

    def funcdef(self, node: A.FuncDef) -> None:
        params = ", ".join(f"{p.type_name} {p.name}" for p in node.params)
        self.line(f"{node.ret_type} {node.name}({params})")
        self.block(node.body)

    def program(self, node: A.Program) -> None:
        for i, func in enumerate(node.funcs):
            if i:
                self.lines.append("")
            self.funcdef(func)


def pretty(node: A.Node, indent: str = "    ") -> str:
    """Emit minilang source for a Program, FuncDef, Stmt, or Expr node."""
    if isinstance(node, A.Expr):
        return emit_expr(node)
    emitter = _Emitter(indent)
    if isinstance(node, A.Program):
        emitter.program(node)
    elif isinstance(node, A.FuncDef):
        emitter.funcdef(node)
    elif isinstance(node, A.Stmt):
        emitter.stmt(node)
    else:
        raise TypeError(f"cannot pretty-print {type(node).__name__}")
    return "\n".join(emitter.lines) + "\n"
