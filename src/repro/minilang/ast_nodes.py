"""AST node definitions for minilang.

Every node carries a source position (``line``/``col``) used by diagnostics
(the paper reports collective names *and source lines*).  Structural equality
that ignores positions is provided by :func:`ast_equal` for round-trip tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import List, Optional, Sequence, Tuple

_node_counter = itertools.count(1)

#: Per-class cache of the data (non-position) field names, because
#: ``dataclasses.fields()`` is too slow to call once per node in tree walks.
_CHILD_FIELDS: dict = {}


def _child_fields(cls: type) -> tuple:
    names = _CHILD_FIELDS.get(cls)
    if names is None:
        names = tuple(
            f.name for f in fields(cls) if f.name not in ("line", "col", "uid")
        )
        _CHILD_FIELDS[cls] = names
    return names


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, kw_only=True)
    #: Excluded from ``repr`` (like ``uid``) so the structural fingerprints
    #: of :mod:`repro.core.engine` are column-insensitive: no diagnostic or
    #: artifact ever reports a column, so a same-line whitespace edit must
    #: not invalidate cached analyses or session state.
    col: int = field(default=0, kw_only=True, repr=False)
    uid: int = field(default_factory=lambda: next(_node_counter), kw_only=True, repr=False)

    def children(self) -> List["Node"]:
        """Direct child nodes, in source order."""
        out: List[Node] = []
        for name in _child_fields(type(self)):
            val = getattr(self, name)
            if isinstance(val, Node):
                out.append(val)
            elif isinstance(val, (list, tuple)):
                out.extend(v for v in val if isinstance(v, Node))
        return out

    def walk(self):
        """Yield this node and all descendants, pre-order (iterative — the
        generated benchmark programs nest deeply)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class ArrayRef(Expr):
    name: str = ""
    index: Expr = field(default_factory=lambda: IntLit(value=0))


@dataclass
class BinOp(Expr):
    op: str = "+"
    left: Expr = field(default_factory=lambda: IntLit(value=0))
    right: Expr = field(default_factory=lambda: IntLit(value=0))


@dataclass
class UnaryOp(Expr):
    op: str = "-"
    operand: Expr = field(default_factory=lambda: IntLit(value=0))


@dataclass
class Call(Expr):
    """A function call; MPI operations and OpenMP query functions included."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    type_name: str = "int"
    name: str = ""
    init: Optional[Expr] = None
    array_size: Optional[Expr] = None  # non-None => array declaration


@dataclass
class Assign(Stmt):
    """``target op value`` where op is '=', '+=', '-=', '*=', '/='."""

    target: Expr = field(default_factory=VarRef)  # VarRef or ArrayRef
    op: str = "="
    value: Expr = field(default_factory=lambda: IntLit(value=0))


@dataclass
class ExprStmt(Stmt):
    expr: Expr = field(default_factory=Call)


@dataclass
class If(Stmt):
    cond: Expr = field(default_factory=lambda: BoolLit(value=True))
    then_body: Block = field(default_factory=Block)
    else_body: Optional[Block] = None


@dataclass
class While(Stmt):
    cond: Expr = field(default_factory=lambda: BoolLit(value=True))
    body: Block = field(default_factory=Block)


@dataclass
class For(Stmt):
    """C-style ``for (init; cond; step) body``.

    ``init`` is a VarDecl or Assign (or None); ``step`` an Assign (or None).
    """

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Block = field(default_factory=Block)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# OpenMP constructs
# ---------------------------------------------------------------------------


@dataclass
class OmpStmt(Stmt):
    """Base class for OpenMP constructs."""


@dataclass
class OmpParallel(OmpStmt):
    body: Block = field(default_factory=Block)
    num_threads: Optional[Expr] = None
    private: List[str] = field(default_factory=list)
    shared: List[str] = field(default_factory=list)


@dataclass
class OmpSingle(OmpStmt):
    body: Block = field(default_factory=Block)
    nowait: bool = False


@dataclass
class OmpMaster(OmpStmt):
    body: Block = field(default_factory=Block)


@dataclass
class OmpCritical(OmpStmt):
    body: Block = field(default_factory=Block)
    name: str = ""


@dataclass
class OmpBarrier(OmpStmt):
    pass


@dataclass
class OmpFor(OmpStmt):
    loop: For = field(default_factory=For)
    nowait: bool = False
    schedule: str = "static"


@dataclass
class OmpSections(OmpStmt):
    sections: List[Block] = field(default_factory=list)
    nowait: bool = False


@dataclass
class OmpTask(OmpStmt):
    """Explicit task — parsed and executed, flagged by the nesting checker
    when it contains MPI collectives (outside the paper's fork/join model)."""

    body: Block = field(default_factory=Block)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    type_name: str = "int"
    name: str = ""


@dataclass
class FuncDef(Node):
    ret_type: str = "void"
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Block = field(default_factory=Block)


@dataclass
class Program(Node):
    funcs: List[FuncDef] = field(default_factory=list)
    filename: str = "<string>"

    def func(self, name: str) -> FuncDef:
        """Return the function definition named ``name`` (KeyError if absent)."""
        for f in self.funcs:
            if f.name == name:
                return f
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Structural equality (ignoring positions and uids)
# ---------------------------------------------------------------------------


def ast_equal(a: object, b: object) -> bool:
    """Structural AST equality that ignores line/col/uid metadata."""
    if isinstance(a, Node) and isinstance(b, Node):
        if type(a) is not type(b):
            return False
        for f in fields(a):
            if f.name in ("line", "col", "uid", "filename"):
                continue
            if not ast_equal(getattr(a, f.name), getattr(b, f.name)):
                return False
        return True
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(ast_equal(x, y) for x, y in zip(a, b))
    return a == b


def collect(node: Node, node_type: type) -> List[Node]:
    """All descendants of ``node`` (inclusive) that are instances of ``node_type``."""
    return [n for n in node.walk() if isinstance(n, node_type)]


def shift_lines(node: Node, delta: int) -> None:
    """Shift the ``line`` of ``node`` and every descendant by ``delta``.

    The one sanctioned whole-subtree position edit: a source edit that moves
    a function down or up without touching its text (a line inserted above
    it) produces exactly this transformation of the re-parsed tree.  Uids
    and structure are untouched, so every uid-keyed artifact map stays
    valid; only consumers of line-addressed state (diagnostics, collective
    sites, CFG block lines) need patching, which
    :meth:`repro.core.engine.AnalysisEngine.patch_function_lines` does in
    lock-step with re-keying the content-addressed store."""
    if delta == 0:
        return
    for n in node.walk():
        n.line += delta
