"""Recursive-descent parser for minilang.

Grammar sketch::

    program   := funcdef*
    funcdef   := type IDENT '(' [param (',' param)*] ')' block
    block     := '{' stmt* '}'
    stmt      := vardecl ';' | simple ';' | if | while | for | return ';'
               | break ';' | continue ';' | block | omp
    omp       := '#' 'pragma' 'omp' directive clauses NEWLINE [stmt]

OpenMP directives understood: ``parallel``, ``single``, ``master``,
``critical``, ``barrier``, ``for``, ``sections``/``section``, ``task`` and the
combined ``parallel for``.  Clauses: ``num_threads(e)``, ``private(ids)``,
``shared(ids)``, ``nowait``, ``schedule(kind)``.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as A
from .lexer import tokenize
from .tokens import Token, TokenType


class ParseError(Exception):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{token.line}:{token.col}: {message} (got {token.type.name} {token.value!r})")
        self.message = message
        self.token = token


_TYPE_TOKENS = {
    TokenType.KW_INT: "int",
    TokenType.KW_FLOAT: "float",
    TokenType.KW_BOOL: "bool",
    TokenType.KW_VOID: "void",
}

_ASSIGN_OPS = {
    TokenType.ASSIGN: "=",
    TokenType.PLUSEQ: "+=",
    TokenType.MINUSEQ: "-=",
    TokenType.STAREQ: "*=",
    TokenType.SLASHEQ: "/=",
}


class Parser:
    def __init__(self, tokens: List[Token], filename: str = "<string>") -> None:
        self.tokens = tokens
        self.pos = 0
        self.filename = filename

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return tok

    def _check(self, ttype: TokenType) -> bool:
        return self._peek().type is ttype

    def _match(self, *ttypes: TokenType) -> Optional[Token]:
        if self._peek().type in ttypes:
            return self._advance()
        return None

    def _expect(self, ttype: TokenType, what: str = "") -> Token:
        if self._peek().type is ttype:
            return self._advance()
        raise ParseError(what or f"expected {ttype.value!r}", self._peek())

    # -- program / functions -------------------------------------------------

    def parse_program(self) -> A.Program:
        funcs: List[A.FuncDef] = []
        first = self._peek()
        while not self._check(TokenType.EOF):
            funcs.append(self.parse_funcdef())
        return A.Program(funcs=funcs, filename=self.filename, line=first.line, col=first.col)

    def parse_funcdef(self) -> A.FuncDef:
        start = self._peek()
        if start.type not in _TYPE_TOKENS:
            raise ParseError("expected a type to start a function definition", start)
        ret_type = _TYPE_TOKENS[self._advance().type]
        name = self._expect(TokenType.IDENT, "expected function name").value
        self._expect(TokenType.LPAREN)
        params: List[A.Param] = []
        if not self._check(TokenType.RPAREN):
            while True:
                ptok = self._peek()
                if ptok.type not in _TYPE_TOKENS:
                    raise ParseError("expected parameter type", ptok)
                ptype = _TYPE_TOKENS[self._advance().type]
                pname = self._expect(TokenType.IDENT, "expected parameter name").value
                params.append(A.Param(type_name=ptype, name=pname, line=ptok.line, col=ptok.col))
                if not self._match(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN)
        body = self.parse_block()
        return A.FuncDef(
            ret_type=ret_type, name=name, params=params, body=body,
            line=start.line, col=start.col,
        )

    # -- statements -----------------------------------------------------------

    def parse_block(self) -> A.Block:
        lb = self._expect(TokenType.LBRACE, "expected '{'")
        stmts: List[A.Stmt] = []
        while not self._check(TokenType.RBRACE):
            if self._check(TokenType.EOF):
                raise ParseError("unterminated block", self._peek())
            stmts.append(self.parse_stmt())
        self._expect(TokenType.RBRACE)
        return A.Block(stmts=stmts, line=lb.line, col=lb.col)

    def _stmt_or_block(self) -> A.Block:
        """Parse a statement; wrap a bare statement into a Block."""
        if self._check(TokenType.LBRACE):
            return self.parse_block()
        stmt = self.parse_stmt()
        return A.Block(stmts=[stmt], line=stmt.line, col=stmt.col)

    def parse_stmt(self) -> A.Stmt:
        tok = self._peek()
        if tok.type is TokenType.HASH:
            return self.parse_pragma()
        if tok.type in _TYPE_TOKENS:
            decl = self.parse_vardecl()
            self._expect(TokenType.SEMI, "expected ';' after declaration")
            return decl
        if tok.type is TokenType.KW_IF:
            return self.parse_if()
        if tok.type is TokenType.KW_WHILE:
            return self.parse_while()
        if tok.type is TokenType.KW_FOR:
            return self.parse_for()
        if tok.type is TokenType.KW_RETURN:
            self._advance()
            value = None
            if not self._check(TokenType.SEMI):
                value = self.parse_expr()
            self._expect(TokenType.SEMI, "expected ';' after return")
            return A.Return(value=value, line=tok.line, col=tok.col)
        if tok.type is TokenType.KW_BREAK:
            self._advance()
            self._expect(TokenType.SEMI)
            return A.Break(line=tok.line, col=tok.col)
        if tok.type is TokenType.KW_CONTINUE:
            self._advance()
            self._expect(TokenType.SEMI)
            return A.Continue(line=tok.line, col=tok.col)
        if tok.type is TokenType.LBRACE:
            return self.parse_block()
        stmt = self.parse_simple_stmt()
        self._expect(TokenType.SEMI, "expected ';'")
        return stmt

    def parse_vardecl(self) -> A.VarDecl:
        tok = self._peek()
        type_name = _TYPE_TOKENS[self._advance().type]
        name = self._expect(TokenType.IDENT, "expected variable name").value
        array_size = None
        if self._match(TokenType.LBRACKET):
            array_size = self.parse_expr()
            self._expect(TokenType.RBRACKET)
        init = None
        if self._match(TokenType.ASSIGN):
            init = self.parse_expr()
        return A.VarDecl(
            type_name=type_name, name=name, init=init, array_size=array_size,
            line=tok.line, col=tok.col,
        )

    def parse_simple_stmt(self) -> A.Stmt:
        """Assignment, increment, or expression-statement (typically a call)."""
        tok = self._peek()
        expr = self.parse_expr()
        nxt = self._peek()
        if nxt.type in _ASSIGN_OPS:
            if not isinstance(expr, (A.VarRef, A.ArrayRef)):
                raise ParseError("assignment target must be a variable or array element", nxt)
            op = _ASSIGN_OPS[self._advance().type]
            value = self.parse_expr()
            return A.Assign(target=expr, op=op, value=value, line=tok.line, col=tok.col)
        if nxt.type in (TokenType.PLUSPLUS, TokenType.MINUSMINUS):
            if not isinstance(expr, (A.VarRef, A.ArrayRef)):
                raise ParseError("increment target must be a variable or array element", nxt)
            self._advance()
            op = "+=" if nxt.type is TokenType.PLUSPLUS else "-="
            return A.Assign(
                target=expr, op=op, value=A.IntLit(value=1, line=nxt.line, col=nxt.col),
                line=tok.line, col=tok.col,
            )
        return A.ExprStmt(expr=expr, line=tok.line, col=tok.col)

    def parse_if(self) -> A.If:
        tok = self._expect(TokenType.KW_IF)
        self._expect(TokenType.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenType.RPAREN)
        then_body = self._stmt_or_block()
        else_body = None
        if self._match(TokenType.KW_ELSE):
            else_body = self._stmt_or_block()
        return A.If(cond=cond, then_body=then_body, else_body=else_body,
                    line=tok.line, col=tok.col)

    def parse_while(self) -> A.While:
        tok = self._expect(TokenType.KW_WHILE)
        self._expect(TokenType.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenType.RPAREN)
        body = self._stmt_or_block()
        return A.While(cond=cond, body=body, line=tok.line, col=tok.col)

    def parse_for(self) -> A.For:
        tok = self._expect(TokenType.KW_FOR)
        self._expect(TokenType.LPAREN)
        init: Optional[A.Stmt] = None
        if not self._check(TokenType.SEMI):
            if self._peek().type in _TYPE_TOKENS:
                init = self.parse_vardecl()
            else:
                init = self.parse_simple_stmt()
        self._expect(TokenType.SEMI, "expected ';' in for")
        cond = None
        if not self._check(TokenType.SEMI):
            cond = self.parse_expr()
        self._expect(TokenType.SEMI, "expected second ';' in for")
        step: Optional[A.Stmt] = None
        if not self._check(TokenType.RPAREN):
            step = self.parse_simple_stmt()
        self._expect(TokenType.RPAREN)
        body = self._stmt_or_block()
        return A.For(init=init, cond=cond, step=step, body=body,
                     line=tok.line, col=tok.col)

    # -- OpenMP pragmas -------------------------------------------------------

    def parse_pragma(self) -> A.Stmt:
        hash_tok = self._expect(TokenType.HASH)
        self._expect(TokenType.KW_PRAGMA, "expected 'pragma' after '#'")
        omp = self._expect(TokenType.IDENT, "expected 'omp'")
        if omp.value != "omp":
            raise ParseError("only 'omp' pragmas are supported", omp)
        directive = self._peek()
        if directive.type in (TokenType.IDENT, TokenType.KW_FOR):
            self._advance()
        else:
            raise ParseError("expected an OpenMP directive", directive)
        name = "for" if directive.type is TokenType.KW_FOR else directive.value
        if name == "parallel" and self._check(TokenType.KW_FOR):
            self._advance()
            name = "parallel for"
        if name == "parallel" and self._check(TokenType.IDENT) and self._peek().value == "sections":
            self._advance()
            name = "parallel sections"

        clauses = self._parse_clauses()
        self._expect(TokenType.NEWLINE, "expected end of pragma line")

        line, col = hash_tok.line, hash_tok.col
        if name == "barrier":
            return A.OmpBarrier(line=line, col=col)
        if name == "parallel":
            body = self._stmt_or_block()
            return A.OmpParallel(
                body=body, num_threads=clauses.get("num_threads"),
                private=clauses.get("private", []), shared=clauses.get("shared", []),
                line=line, col=col,
            )
        if name == "single":
            body = self._stmt_or_block()
            return A.OmpSingle(body=body, nowait=clauses.get("nowait", False),
                               line=line, col=col)
        if name == "master":
            body = self._stmt_or_block()
            return A.OmpMaster(body=body, line=line, col=col)
        if name == "critical":
            body = self._stmt_or_block()
            return A.OmpCritical(body=body, name=clauses.get("critical_name", ""),
                                 line=line, col=col)
        if name == "task":
            body = self._stmt_or_block()
            return A.OmpTask(body=body, line=line, col=col)
        if name == "for":
            loop = self.parse_for()
            return A.OmpFor(loop=loop, nowait=clauses.get("nowait", False),
                            schedule=clauses.get("schedule", "static"),
                            line=line, col=col)
        if name == "parallel for":
            loop = self.parse_for()
            omp_for = A.OmpFor(loop=loop, schedule=clauses.get("schedule", "static"),
                               line=line, col=col)
            return A.OmpParallel(
                body=A.Block(stmts=[omp_for], line=line, col=col),
                num_threads=clauses.get("num_threads"),
                private=clauses.get("private", []), shared=clauses.get("shared", []),
                line=line, col=col,
            )
        if name == "sections":
            sections = self._parse_sections_body()
            return A.OmpSections(sections=sections, nowait=clauses.get("nowait", False),
                                 line=line, col=col)
        if name == "parallel sections":
            sections = self._parse_sections_body()
            inner = A.OmpSections(sections=sections, line=line, col=col)
            return A.OmpParallel(
                body=A.Block(stmts=[inner], line=line, col=col),
                num_threads=clauses.get("num_threads"),
                private=clauses.get("private", []), shared=clauses.get("shared", []),
                line=line, col=col,
            )
        raise ParseError(f"unknown OpenMP directive {name!r}", directive)

    def _parse_sections_body(self) -> List[A.Block]:
        self._expect(TokenType.LBRACE, "sections construct requires a '{' block")
        sections: List[A.Block] = []
        while not self._check(TokenType.RBRACE):
            hash_tok = self._expect(TokenType.HASH, "expected '#pragma omp section'")
            self._expect(TokenType.KW_PRAGMA)
            omp = self._expect(TokenType.IDENT)
            if omp.value != "omp":
                raise ParseError("expected 'omp'", omp)
            sec = self._expect(TokenType.IDENT)
            if sec.value != "section":
                raise ParseError("expected 'section' inside sections", sec)
            self._expect(TokenType.NEWLINE)
            sections.append(self._stmt_or_block())
        self._expect(TokenType.RBRACE)
        return sections

    def _parse_clauses(self) -> dict:
        clauses: dict = {}
        while self._check(TokenType.IDENT) or self._check(TokenType.LPAREN):
            if self._check(TokenType.LPAREN):
                # critical(name) — the name comes as a parenthesised ident.
                self._advance()
                cname = self._expect(TokenType.IDENT, "expected critical section name").value
                self._expect(TokenType.RPAREN)
                clauses["critical_name"] = cname
                continue
            clause = self._advance().value
            if clause == "nowait":
                clauses["nowait"] = True
            elif clause == "num_threads":
                self._expect(TokenType.LPAREN)
                clauses["num_threads"] = self.parse_expr()
                self._expect(TokenType.RPAREN)
            elif clause in ("private", "shared", "firstprivate"):
                self._expect(TokenType.LPAREN)
                names = [self._expect(TokenType.IDENT).value]
                while self._match(TokenType.COMMA):
                    names.append(self._expect(TokenType.IDENT).value)
                self._expect(TokenType.RPAREN)
                key = "private" if clause == "firstprivate" else clause
                clauses.setdefault(key, []).extend(names)
            elif clause == "schedule":
                self._expect(TokenType.LPAREN)
                kind = self._expect(TokenType.IDENT).value
                if self._match(TokenType.COMMA):
                    self.parse_expr()  # chunk size accepted, ignored
                self._expect(TokenType.RPAREN)
                clauses["schedule"] = kind
            elif clause == "default":
                self._expect(TokenType.LPAREN)
                self._expect(TokenType.IDENT)
                self._expect(TokenType.RPAREN)
            else:
                raise ParseError(f"unknown OpenMP clause {clause!r}", self._peek())
        return clauses

    # -- expressions ------------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self._parse_or()

    def _parse_or(self) -> A.Expr:
        left = self._parse_and()
        while self._check(TokenType.OR):
            tok = self._advance()
            right = self._parse_and()
            left = A.BinOp(op="||", left=left, right=right, line=tok.line, col=tok.col)
        return left

    def _parse_and(self) -> A.Expr:
        left = self._parse_equality()
        while self._check(TokenType.AND):
            tok = self._advance()
            right = self._parse_equality()
            left = A.BinOp(op="&&", left=left, right=right, line=tok.line, col=tok.col)
        return left

    def _parse_equality(self) -> A.Expr:
        left = self._parse_relational()
        while self._peek().type in (TokenType.EQ, TokenType.NE):
            tok = self._advance()
            right = self._parse_relational()
            left = A.BinOp(op=tok.value, left=left, right=right, line=tok.line, col=tok.col)
        return left

    def _parse_relational(self) -> A.Expr:
        left = self._parse_additive()
        while self._peek().type in (TokenType.LT, TokenType.GT, TokenType.LE, TokenType.GE):
            tok = self._advance()
            right = self._parse_additive()
            left = A.BinOp(op=tok.value, left=left, right=right, line=tok.line, col=tok.col)
        return left

    def _parse_additive(self) -> A.Expr:
        left = self._parse_multiplicative()
        while self._peek().type in (TokenType.PLUS, TokenType.MINUS):
            tok = self._advance()
            right = self._parse_multiplicative()
            left = A.BinOp(op=tok.value, left=left, right=right, line=tok.line, col=tok.col)
        return left

    def _parse_multiplicative(self) -> A.Expr:
        left = self._parse_unary()
        while self._peek().type in (TokenType.STAR, TokenType.SLASH, TokenType.PERCENT):
            tok = self._advance()
            right = self._parse_unary()
            left = A.BinOp(op=tok.value, left=left, right=right, line=tok.line, col=tok.col)
        return left

    def _parse_unary(self) -> A.Expr:
        tok = self._peek()
        if tok.type in (TokenType.MINUS, TokenType.NOT):
            self._advance()
            operand = self._parse_unary()
            return A.UnaryOp(op=tok.value, operand=operand, line=tok.line, col=tok.col)
        if tok.type is TokenType.PLUS:
            self._advance()
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            if self._check(TokenType.LPAREN) and isinstance(expr, A.VarRef):
                self._advance()
                args: List[A.Expr] = []
                if not self._check(TokenType.RPAREN):
                    args.append(self.parse_expr())
                    while self._match(TokenType.COMMA):
                        args.append(self.parse_expr())
                self._expect(TokenType.RPAREN)
                expr = A.Call(name=expr.name, args=args, line=expr.line, col=expr.col)
            elif self._check(TokenType.LBRACKET) and isinstance(expr, A.VarRef):
                self._advance()
                index = self.parse_expr()
                self._expect(TokenType.RBRACKET)
                expr = A.ArrayRef(name=expr.name, index=index, line=expr.line, col=expr.col)
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        tok = self._peek()
        if tok.type is TokenType.INT:
            self._advance()
            return A.IntLit(value=int(tok.value), line=tok.line, col=tok.col)
        if tok.type is TokenType.FLOAT:
            self._advance()
            return A.FloatLit(value=float(tok.value), line=tok.line, col=tok.col)
        if tok.type is TokenType.STRING:
            self._advance()
            return A.StringLit(value=tok.value, line=tok.line, col=tok.col)
        if tok.type is TokenType.KW_TRUE:
            self._advance()
            return A.BoolLit(value=True, line=tok.line, col=tok.col)
        if tok.type is TokenType.KW_FALSE:
            self._advance()
            return A.BoolLit(value=False, line=tok.line, col=tok.col)
        if tok.type is TokenType.IDENT:
            self._advance()
            return A.VarRef(name=tok.value, line=tok.line, col=tok.col)
        if tok.type is TokenType.LPAREN:
            self._advance()
            expr = self.parse_expr()
            self._expect(TokenType.RPAREN)
            return expr
        raise ParseError("expected an expression", tok)


def parse_program(source: str, filename: str = "<string>") -> A.Program:
    """Parse minilang source text into a :class:`~repro.minilang.ast_nodes.Program`."""
    return Parser(tokenize(source, filename), filename).parse_program()


def parse_function(source: str, filename: str = "<string>") -> A.FuncDef:
    """Parse a single function definition (convenience for tests)."""
    prog = parse_program(source, filename)
    if len(prog.funcs) != 1:
        raise ValueError(f"expected exactly one function, got {len(prog.funcs)}")
    return prog.funcs[0]
