"""Counterexample reduction: ddmin over statements/regions of a program.

Shrinks a program while preserving an arbitrary predicate over its source
(for the fuzzer: "the differential oracle still classifies it the same
way").  Granularity is the *statement*, which subsumes regions — an
``omp parallel`` block, a loop or a guard is one removable unit, and
removing it removes everything nested inside.

The candidate space is the pre-order statement index list of the original
program; :func:`repro.util.ddmin.ddmin` (shared with schedule-trace
minimization) deletes chunks, and each survivor set is rendered back to
source.  Candidates that no longer parse or semantically check simply fail
the predicate, so ddmin backs away from them automatically — no grammar
knowledge is needed here.

Reduced counterexamples are persisted as ``<name>.mini`` + ``<name>.json``
pairs (source + oracle verdict + reproduction metadata) — the checked-in
``tests/corpus/`` regression directory that ``tests/test_fuzz.py`` replays.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Optional, Tuple

from ..minilang import ast_nodes as A
from ..minilang.parser import parse_program
from ..minilang.pretty import pretty
from ..util.ddmin import ddmin
from .oracle import OracleConfig, OracleVerdict, run_oracle

CORPUS_SUFFIX_SOURCE = ".mini"
CORPUS_SUFFIX_VERDICT = ".json"


# ---------------------------------------------------------------------------
# Statement enumeration / subsetting
# ---------------------------------------------------------------------------


def _stmt_blocks(stmt: A.Stmt) -> List[A.Block]:
    """The nested blocks of one statement whose direct statements are
    independently removable."""
    if isinstance(stmt, A.If):
        return [stmt.then_body] + ([stmt.else_body] if stmt.else_body else [])
    if isinstance(stmt, (A.While, A.OmpParallel, A.OmpSingle, A.OmpMaster,
                         A.OmpCritical, A.OmpTask)):
        return [stmt.body]
    if isinstance(stmt, A.For):
        return [stmt.body]
    if isinstance(stmt, A.OmpFor):
        return [stmt.loop.body]
    if isinstance(stmt, A.OmpSections):
        return list(stmt.sections)
    if isinstance(stmt, A.Block):
        return [stmt]
    return []


def _enumerate(program: A.Program) -> int:
    """Count removable statement positions (pre-order over all functions)."""
    count = 0

    def walk_block(block: A.Block) -> None:
        nonlocal count
        for stmt in block.stmts:
            count += 1
            for inner in _stmt_blocks(stmt):
                walk_block(inner)

    for func in program.funcs:
        walk_block(func.body)
    return count


def _subset_source(program: A.Program, keep: frozenset) -> str:
    """Source text of the program restricted to statement positions in
    ``keep`` (children of dropped statements vanish with their parent)."""
    counter = [0]

    def filter_block(block: A.Block) -> A.Block:
        kept: List[A.Stmt] = []
        for stmt in block.stmts:
            index = counter[0]
            counter[0] += 1
            filtered = filter_stmt(stmt)
            if index in keep:
                kept.append(filtered)
        return A.Block(stmts=kept)

    def filter_stmt(stmt: A.Stmt) -> A.Stmt:
        if isinstance(stmt, A.If):
            return A.If(cond=stmt.cond, then_body=filter_block(stmt.then_body),
                        else_body=(filter_block(stmt.else_body)
                                   if stmt.else_body else None))
        if isinstance(stmt, A.While):
            return A.While(cond=stmt.cond, body=filter_block(stmt.body))
        if isinstance(stmt, A.For):
            return A.For(init=stmt.init, cond=stmt.cond, step=stmt.step,
                         body=filter_block(stmt.body))
        if isinstance(stmt, A.OmpParallel):
            return A.OmpParallel(body=filter_block(stmt.body),
                                 num_threads=stmt.num_threads,
                                 private=list(stmt.private),
                                 shared=list(stmt.shared))
        if isinstance(stmt, A.OmpSingle):
            return A.OmpSingle(body=filter_block(stmt.body), nowait=stmt.nowait)
        if isinstance(stmt, A.OmpMaster):
            return A.OmpMaster(body=filter_block(stmt.body))
        if isinstance(stmt, A.OmpCritical):
            return A.OmpCritical(body=filter_block(stmt.body), name=stmt.name)
        if isinstance(stmt, A.OmpTask):
            return A.OmpTask(body=filter_block(stmt.body))
        if isinstance(stmt, A.OmpFor):
            loop = A.For(init=stmt.loop.init, cond=stmt.loop.cond,
                         step=stmt.loop.step,
                         body=filter_block(stmt.loop.body))
            return A.OmpFor(loop=loop, nowait=stmt.nowait,
                            schedule=stmt.schedule)
        if isinstance(stmt, A.OmpSections):
            return A.OmpSections(sections=[filter_block(s)
                                           for s in stmt.sections],
                                 nowait=stmt.nowait)
        if isinstance(stmt, A.Block):
            return filter_block(stmt)
        return stmt

    funcs = [A.FuncDef(ret_type=f.ret_type, name=f.name, params=list(f.params),
                       body=filter_block(f.body))
             for f in program.funcs]
    return pretty(A.Program(funcs=funcs, filename=program.filename))


# ---------------------------------------------------------------------------
# Reduction driver
# ---------------------------------------------------------------------------


def reduce_source(
    source: str,
    predicate: Callable[[str], bool],
    budget: int = 250,
) -> str:
    """ddmin-shrink ``source`` at statement/region granularity while
    ``predicate(candidate_source)`` holds.  ``predicate(source)`` must be
    True on entry; the returned program still satisfies it.  Candidates
    that fail to parse/check should make the predicate return False (the
    oracle-based predicates do — they classify such candidates ``crash``).
    """
    program = parse_program(source, "<reduce>")
    total = _enumerate(program)
    if total == 0:
        return source

    def failing(kept: List[int]) -> bool:
        return predicate(_subset_source(program, frozenset(kept)))

    minimal = ddmin(failing, list(range(total)), budget=budget)
    reduced = _subset_source(program, frozenset(minimal))
    return reduced if predicate(reduced) else source


def classification_predicate(
    target: OracleVerdict,
    config: OracleConfig = OracleConfig(),
) -> Callable[[str], bool]:
    """The standard disagreement-preserving predicate: the candidate's
    oracle classification matches the original finding's."""

    def predicate(candidate: str) -> bool:
        return run_oracle(candidate, config).classification == target.classification

    return predicate


def reduce_counterexample(
    source: str,
    verdict: OracleVerdict,
    config: OracleConfig = OracleConfig(),
    budget: int = 250,
) -> str:
    """Shrink a disagreeing program while its classification is preserved."""
    return reduce_source(source, classification_predicate(verdict, config),
                         budget=budget)


# ---------------------------------------------------------------------------
# Corpus persistence
# ---------------------------------------------------------------------------


def write_counterexample(
    corpus_dir: str,
    name: str,
    source: str,
    verdict: OracleVerdict,
    config: OracleConfig = OracleConfig(),
    seed: Optional[int] = None,
    note: str = "",
    xfail: str = "",
) -> Tuple[str, str]:
    """Persist ``source`` + its oracle verdict as a corpus entry; returns the
    ``(source_path, verdict_path)`` pair."""
    os.makedirs(corpus_dir, exist_ok=True)
    src_path = os.path.join(corpus_dir, name + CORPUS_SUFFIX_SOURCE)
    meta_path = os.path.join(corpus_dir, name + CORPUS_SUFFIX_VERDICT)
    with open(src_path, "w", encoding="utf-8") as handle:
        handle.write(source)
    meta: Dict[str, object] = {
        "name": name,
        "seed": seed,
        "oracle_config": config.as_dict(),
        "verdict": verdict.as_dict(),
    }
    if note:
        meta["note"] = note
    if xfail:
        meta["xfail"] = xfail
    with open(meta_path, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2)
        handle.write("\n")
    return src_path, meta_path


def load_corpus(corpus_dir: str) -> List[Dict[str, object]]:
    """Load every corpus entry: the verdict JSON plus its ``source`` text,
    sorted by name for deterministic replay order."""
    entries: List[Dict[str, object]] = []
    if not os.path.isdir(corpus_dir):
        return entries
    for fname in sorted(os.listdir(corpus_dir)):
        if not fname.endswith(CORPUS_SUFFIX_VERDICT):
            continue
        with open(os.path.join(corpus_dir, fname), encoding="utf-8") as handle:
            meta = json.load(handle)
        src_path = os.path.join(
            corpus_dir, fname[:-len(CORPUS_SUFFIX_VERDICT)] + CORPUS_SUFFIX_SOURCE)
        with open(src_path, encoding="utf-8") as handle:
            meta["source"] = handle.read()
        entries.append(meta)
    return entries
