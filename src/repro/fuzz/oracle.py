"""Differential oracle: static verdicts vs. deterministic dynamic runs.

For one program source, the oracle collects every verdict source the
system has:

* **static, interprocedural** — ``analyze_program(interprocedural=True)``
  (context propagation + expression-call points);
* **static, intraprocedural** — the paper's per-function mode;
* **dynamic, raw** — one deterministic scheduled run of the original
  program (structural deadlock detection, no wall-clock timeouts);
* **dynamic, instrumented** — the same run of the selectively
  instrumented program (CC / thread-check verdicts fire *before* the
  deadlock);
* **dynamic, explored** — a bounded-preemption DPOR sweep (race-reversal
  backtracking + sleep sets, see :mod:`repro.explore.dpor`) of thread
  interleavings of the instrumented program, catching schedule-sensitive
  bugs the default interleaving misses at a fraction of the raw DFS cost.

and classifies their agreement:

``agree``
    both sides clean, or the static side warned and some dynamic run
    failed (true positive).
``static-miss``
    a dynamic run failed but *neither* static mode warned — a soundness
    bug, the fuzzer's headline finding.
``static-overapprox``
    a static warning with every explored schedule clean — allowed (the
    analysis is a conservative over-approximation) but tracked, because
    the rate is the paper's precision metric.
``crash``
    any phase raised an internal error (parse/semantic failure of a
    supposedly well-formed input, an analysis exception, or an
    interpreter bug surfacing as a bare ``ValidationError``).

Every dynamic run is scheduled (virtual clock), so the whole oracle is
deterministic: same source ⇒ same :class:`OracleVerdict`, across
processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import analyze_program, instrument_program
from ..explore import DefaultStrategy, ExploreConfig, explore_config, run_scheduled
from ..explore.trace import verdict_line
from ..minilang.parser import parse_program
from ..minilang.semantics import check_program
from ..mpi.thread_levels import ThreadLevel
from ..runtime.errors import ValidationError
from ..util.faultinject import fault_site

#: Classification labels (stable strings — they appear in corpus JSON).
AGREE = "agree"
STATIC_MISS = "static-miss"
STATIC_OVERAPPROX = "static-overapprox"
CRASH = "crash"
CLASSIFICATIONS = (AGREE, STATIC_MISS, STATIC_OVERAPPROX, CRASH)


@dataclass(frozen=True)
class OracleConfig:
    """Execution parameters of the differential oracle."""

    nprocs: int = 2
    num_threads: int = 2
    thread_level: ThreadLevel = ThreadLevel.MULTIPLE
    #: Bounded DPOR sweep size (schedules) and preemption bound.
    explore_runs: int = 12
    explore_preemptions: int = 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "nprocs": self.nprocs,
            "num_threads": self.num_threads,
            "thread_level": self.thread_level.name.lower(),
            "explore_runs": self.explore_runs,
            "explore_preemptions": self.explore_preemptions,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OracleConfig":
        return cls(
            nprocs=int(data.get("nprocs", 2)),
            num_threads=int(data.get("num_threads", 2)),
            thread_level=ThreadLevel[
                str(data.get("thread_level", "multiple")).upper()],
            explore_runs=int(data.get("explore_runs", 12)),
            explore_preemptions=int(data.get("explore_preemptions", 1)),
        )


@dataclass
class OracleVerdict:
    """Everything both phases said about one program, plus the agreement
    classification."""

    classification: str
    #: Sorted diagnostic codes per static mode (duplicates collapsed).
    static_interproc: Tuple[str, ...] = ()
    static_intraproc: Tuple[str, ...] = ()
    #: Canonical verdict lines of the two deterministic default-schedule runs.
    raw_verdict: str = "clean"
    instrumented_verdict: str = "clean"
    #: Bounded DPOR sweep: schedules explored / failed, distinct error classes.
    explored: int = 0
    explored_failed: int = 0
    explored_classes: Tuple[str, ...] = ()
    #: Non-empty for ``crash``: which phase and what it raised.
    crash_detail: str = ""

    @property
    def static_warned(self) -> bool:
        return bool(self.static_interproc or self.static_intraproc)

    @property
    def dynamic_failed(self) -> bool:
        return (self.raw_verdict != "clean"
                or self.instrumented_verdict != "clean"
                or self.explored_failed > 0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "classification": self.classification,
            "static": {"interproc": list(self.static_interproc),
                       "intraproc": list(self.static_intraproc)},
            "dynamic": {"raw": self.raw_verdict,
                        "instrumented": self.instrumented_verdict,
                        "explored": self.explored,
                        "explored_failed": self.explored_failed,
                        "explored_classes": list(self.explored_classes)},
            "crash_detail": self.crash_detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OracleVerdict":
        static = data.get("static", {})
        dynamic = data.get("dynamic", {})
        return cls(
            classification=str(data.get("classification", "")),
            static_interproc=tuple(static.get("interproc", ())),
            static_intraproc=tuple(static.get("intraproc", ())),
            raw_verdict=str(dynamic.get("raw", "clean")),
            instrumented_verdict=str(dynamic.get("instrumented", "clean")),
            explored=int(dynamic.get("explored", 0)),
            explored_failed=int(dynamic.get("explored_failed", 0)),
            explored_classes=tuple(dynamic.get("explored_classes", ())),
            crash_detail=str(data.get("crash_detail", "")),
        )

    def describe(self) -> str:
        bits = [self.classification,
                f"static={','.join(self.static_interproc) or 'clean'}"]
        if tuple(self.static_intraproc) != tuple(self.static_interproc):
            bits.append(f"intra={','.join(self.static_intraproc) or 'clean'}")
        bits.append(f"raw={self.raw_verdict.split('[')[0]}")
        bits.append(f"inst={self.instrumented_verdict.split('[')[0]}")
        if self.explored:
            bits.append(f"explore={self.explored_failed}/{self.explored}")
        if self.crash_detail:
            bits.append(f"crash={self.crash_detail}")
        return " ".join(bits)


def _is_internal(line: str) -> bool:
    """A bare ``ValidationError`` verdict means the interpreter blew up —
    an internal error, never a legitimate program verdict."""
    return line.startswith("ValidationError[")


def _diag_codes(diags) -> Tuple[str, ...]:
    return tuple(sorted({d.code.value for d in diags}))


def run_oracle(source: str,
               config: OracleConfig = OracleConfig(),
               name: str = "<fuzz>") -> OracleVerdict:
    """Run every verdict source over ``source`` and classify the agreement.

    Never raises for program-level problems: anything unexpected comes back
    as a ``crash`` verdict with ``crash_detail`` naming the phase."""
    fault_site("fuzz.oracle")
    # -- front end -----------------------------------------------------------
    try:
        program = parse_program(source, name)
        issues = check_program(program)
    except Exception as exc:  # noqa: BLE001 - classified, not propagated
        return OracleVerdict(classification=CRASH,
                             crash_detail=f"parse: {exc!r}")
    errors = [i for i in issues if i.severity == "error"]
    if errors:
        return OracleVerdict(classification=CRASH,
                             crash_detail=f"semantic: {errors[0]}")

    # -- static phase --------------------------------------------------------
    try:
        inter = analyze_program(program, interprocedural=True)
        intra = analyze_program(program, interprocedural=False)
    except Exception as exc:  # noqa: BLE001
        return OracleVerdict(classification=CRASH,
                             crash_detail=f"static: {exc!r}")
    verdict = OracleVerdict(
        classification=AGREE,
        static_interproc=_diag_codes(inter.diagnostics),
        static_intraproc=_diag_codes(intra.diagnostics),
    )

    # -- dynamic phase -------------------------------------------------------
    run_cfg = ExploreConfig(nprocs=config.nprocs,
                            num_threads=config.num_threads,
                            thread_level=config.thread_level)
    try:
        raw_result, _ = run_scheduled(program, run_cfg, DefaultStrategy())
        verdict.raw_verdict = verdict_line(raw_result)

        instrumented, _report = instrument_program(inter)
        inst_cfg = ExploreConfig(nprocs=config.nprocs,
                                 num_threads=config.num_threads,
                                 thread_level=config.thread_level,
                                 instrument=True)
        inst_result, _ = run_scheduled(instrumented, inst_cfg,
                                       DefaultStrategy(),
                                       group_kinds=inter.group_kinds)
        verdict.instrumented_verdict = verdict_line(inst_result)

        if config.explore_runs > 0:
            report = explore_config(
                instrumented, inst_cfg, strategy="dpor",
                runs=config.explore_runs,
                preemptions=config.explore_preemptions,
                group_kinds=inter.group_kinds, minimize=False)
            verdict.explored = report.schedules
            verdict.explored_failed = report.failed
            verdict.explored_classes = tuple(sorted(
                cls for cls in report.verdict_counts if cls != "clean"))
    except Exception as exc:  # noqa: BLE001
        verdict.classification = CRASH
        verdict.crash_detail = f"dynamic: {exc!r}"
        return verdict

    # -- classification ------------------------------------------------------
    internal = [line for line in
                (verdict.raw_verdict, verdict.instrumented_verdict)
                if _is_internal(line)]
    internal.extend(c for c in verdict.explored_classes
                    if c == "ValidationError")
    if internal:
        verdict.classification = CRASH
        verdict.crash_detail = f"internal: {internal[0]}"
    elif verdict.dynamic_failed and not verdict.static_warned:
        verdict.classification = STATIC_MISS
    elif verdict.static_warned and not verdict.dynamic_failed:
        verdict.classification = STATIC_OVERAPPROX
    else:
        verdict.classification = AGREE
    return verdict
