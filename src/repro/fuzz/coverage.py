"""Coverage signatures, the coverage map, and mutant-seed encoding.

The open-loop generator treats seed 10_000 exactly like seed 10; this
module gives the campaign a feedback channel.  Each fuzzed seed produces a
deterministic **coverage signature**: the union of

* **generator probes** — grammar productions fired while building the
  program (``gen:*`` / ``mut:*`` counters from
  :mod:`repro.util.probe`, collected inside the seed body thread),
* **static-analysis probes** — driver/call-graph path counters
  (``drv:*`` / ``cg:*``),
* **structural source features** — a parse-and-walk of the final source
  (collective × region context, OpenMP nesting pairs, guard shapes, call
  shapes; :func:`source_features`), which also covers *mutants*, whose
  bodies never re-ran the generator,
* the **oracle class** reached (``oracle:agree`` etc.).

Counters are AFL-style log2-bucketed (:func:`repro.util.probe.bucket`)
before becoming features, so counter jitter does not mint fake coverage.
The :class:`CoverageMap` folds signatures into a global feature→hits table
plus the set of distinct signature digests; a seed whose signature adds
features earns mutation **energy** (:func:`energy_for`) and enters the
campaign's mutation queue.

Mutant seeds stay inside the absolute-seed reproduction contract via an
arithmetic encoding: ``mutant_seed(parent, slot) = MUTANT_BASE +
parent * MUTANT_SLOTS + slot``.  Any tool that sees such a seed (the CLI's
``parcoach fuzz --seeds 1 --seed S``) can :func:`decode_mutant` it —
recursively, since a parent may itself be a mutant — and rebuild the exact
program from public pieces (``program_for_seed`` in
:mod:`repro.fuzz.campaign`).  No corpus file or queue state is needed to
reproduce a finding.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..minilang import ast_nodes as A
from ..minilang.parser import parse_program
from ..mpi.collectives import is_collective
from ..util.probe import bucket

#: Seeds at or above this value are mutant encodings, not fresh seeds.
#: ``1 << 62`` leaves the entire practical fresh-seed range (and every
#: CLI ``--seed`` anyone would type) untouched below it.
MUTANT_BASE = 1 << 62

#: Maximum mutation slots per parent — the energy ceiling.
MUTANT_SLOTS = 16


def mutant_seed(parent: int, slot: int) -> int:
    """Encode mutation ``slot`` (0-based) of ``parent`` as one integer
    seed.  ``parent`` may itself be a mutant seed (mutants of mutants)."""
    if not 0 <= slot < MUTANT_SLOTS:
        raise ValueError(f"mutation slot {slot} out of range "
                         f"[0, {MUTANT_SLOTS})")
    if parent < 0:
        raise ValueError(f"negative parent seed {parent}")
    return MUTANT_BASE + parent * MUTANT_SLOTS + slot


def is_mutant_seed(seed: int) -> bool:
    return seed >= MUTANT_BASE


def decode_mutant(seed: int) -> Tuple[int, int]:
    """Inverse of :func:`mutant_seed` → ``(parent, slot)``."""
    if not is_mutant_seed(seed):
        raise ValueError(f"{seed} is not a mutant seed")
    offset = seed - MUTANT_BASE
    return offset // MUTANT_SLOTS, offset % MUTANT_SLOTS


def mutation_rounds(slot: int) -> int:
    """How many mutation rounds slot ``slot`` applies (1–3): low slots
    stay close to the parent, higher slots perturb harder."""
    return 1 + slot % 3


def mutation_seed(parent: int, slot: int) -> int:
    """The RNG seed handed to ``mutate()`` for ``(parent, slot)`` —
    decorrelated from the parent's own generation stream."""
    return (parent * 2_654_435_761 + slot * 40_503 + 0x9E3779B9) & ((1 << 63) - 1)


# ---------------------------------------------------------------------------
# Signatures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoverageSignature:
    """A seed's deterministic coverage fingerprint: the sorted feature
    tuple plus its digest (what the checkpoint and dedupe store)."""

    features: Tuple[str, ...]

    @property
    def digest(self) -> str:
        h = hashlib.sha256("\n".join(self.features).encode("utf-8"))
        return h.hexdigest()[:16]

    def __len__(self) -> int:
        return len(self.features)


def probe_features(counts: Dict[str, int]) -> List[str]:
    """Bucket raw probe counters into coverage features
    (``name#b<bucket>``)."""
    return [f"{name}#b{bucket(n)}" for name, n in counts.items() if n > 0]


def signature_for(counts: Dict[str, int],
                  source: Optional[str] = None,
                  classification: Optional[str] = None) -> CoverageSignature:
    """Fold probe counters, structural source features and the oracle
    class into one signature."""
    feats: Set[str] = set(probe_features(counts))
    if source is not None:
        feats.update(source_features(source))
    if classification is not None:
        feats.add("oracle:" + classification)
    return CoverageSignature(features=tuple(sorted(feats)))


# ---------------------------------------------------------------------------
# Structural source features
# ---------------------------------------------------------------------------

def source_features(source: str) -> List[str]:
    """Parse ``source`` and walk it into structural coverage features.

    This is the half of the signature that works for *any* program text —
    mutants in particular, which never re-ran the instrumented generator.
    Unparseable sources collapse to a single feature (the parse failure is
    itself one behaviour class)."""
    try:
        program = parse_program(source, "<coverage>")
    except Exception:  # noqa: BLE001 - one bucket for all parse failures
        return ["src:unparsed"]

    feats: Set[str] = set()
    counts: Dict[str, int] = {}

    def tick(name: str) -> None:
        counts[name] = counts.get(name, 0) + 1

    def region_tag(stack: Tuple[str, ...]) -> str:
        return ".".join(stack) if stack else "top"

    def walk_expr(expr: A.Expr, stack: Tuple[str, ...]) -> None:
        if isinstance(expr, A.Call):
            if is_collective(expr.name):
                feats.add(f"src:coll:{expr.name}@{region_tag(stack)}")
                tick("coll")
            else:
                tick("call-expr")
            if expr.name == "MPI_Init_thread" and expr.args:
                arg = expr.args[0]
                if isinstance(arg, A.IntLit):
                    feats.add(f"src:init-level:{arg.value}")
            for arg in expr.args:
                walk_expr(arg, stack)
        elif isinstance(expr, A.BinOp):
            feats.add(f"src:op:{expr.op}")
            walk_expr(expr.left, stack)
            walk_expr(expr.right, stack)
        elif isinstance(expr, A.UnaryOp):
            walk_expr(expr.operand, stack)
        elif isinstance(expr, A.ArrayRef):
            walk_expr(expr.index, stack)

    def enter(stack: Tuple[str, ...], tag: str) -> Tuple[str, ...]:
        if stack:
            feats.add(f"src:nest:{stack[-1]}>{tag}")
        # Keep the last three region tags: deep stacks collapse instead of
        # minting unbounded features.
        return (stack + (tag,))[-3:]

    def walk_stmt(stmt: A.Stmt, stack: Tuple[str, ...]) -> None:
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                walk_stmt(s, stack)
        elif isinstance(stmt, (A.VarDecl, A.Assign, A.ExprStmt, A.Return)):
            tick(type(stmt).__name__.lower())
            for attr in ("init", "value", "expr"):
                sub = getattr(stmt, attr, None)
                if isinstance(sub, A.Expr):
                    walk_expr(sub, stack)
            if isinstance(stmt, A.ExprStmt) and isinstance(stmt.expr, A.Call):
                if not is_collective(stmt.expr.name):
                    tick("call-stmt")
        elif isinstance(stmt, A.If):
            tick("if")
            feats.add("src:guard" + ("+else" if stmt.else_body else ""))
            walk_expr(stmt.cond, stack)
            walk_stmt(stmt.then_body, enter(stack, "if"))
            if stmt.else_body is not None:
                walk_stmt(stmt.else_body, enter(stack, "if"))
        elif isinstance(stmt, (A.While, A.For)):
            tick("loop")
            if isinstance(stmt, A.For) and stmt.init is not None:
                walk_stmt(stmt.init, stack)
            if stmt.cond is not None:
                walk_expr(stmt.cond, stack)
            walk_stmt(stmt.body, enter(stack, "loop"))
        elif isinstance(stmt, (A.Break, A.Continue)):
            tick(type(stmt).__name__.lower())
        elif isinstance(stmt, A.OmpParallel):
            tick("parallel")
            walk_stmt(stmt.body, enter(stack, "par"))
        elif isinstance(stmt, A.OmpSingle):
            tick("single")
            walk_stmt(stmt.body, enter(stack, "single"))
        elif isinstance(stmt, A.OmpMaster):
            tick("master")
            walk_stmt(stmt.body, enter(stack, "master"))
        elif isinstance(stmt, A.OmpCritical):
            tick("critical")
            walk_stmt(stmt.body, enter(stack, "critical"))
        elif isinstance(stmt, A.OmpBarrier):
            tick("omp-barrier")
            feats.add(f"src:ompbar@{region_tag(stack)}")
        elif isinstance(stmt, A.OmpFor):
            tick("omp-for")
            walk_stmt(stmt.loop.body, enter(stack, "ws"))
        elif isinstance(stmt, A.OmpSections):
            tick("sections")
            for sec in stmt.sections:
                walk_stmt(sec, enter(stack, "ws"))
        elif isinstance(stmt, A.OmpTask):
            tick("task")
            walk_stmt(stmt.body, enter(stack, "task"))

    for func in program.funcs:
        walk_stmt(func.body, ())
    feats.add(f"src:funcs#b{bucket(len(program.funcs))}")
    for name, n in counts.items():
        feats.add(f"src:{name}#b{bucket(n)}")
    return sorted(feats)


# ---------------------------------------------------------------------------
# The campaign-global coverage map
# ---------------------------------------------------------------------------


@dataclass
class CoverageMap:
    """Accumulated coverage over a campaign: feature → number of seeds
    that exhibited it, plus the set of distinct signature digests."""

    features: Dict[str, int] = field(default_factory=dict)
    signatures: Set[str] = field(default_factory=set)

    def observe(self, sig: CoverageSignature) -> int:
        """Fold one signature in; returns how many *new* features it
        contributed (the seed's coverage gain → its mutation energy)."""
        new = 0
        for feat in sig.features:
            if feat not in self.features:
                new += 1
            self.features[feat] = self.features.get(feat, 0) + 1
        self.signatures.add(sig.digest)
        return new

    @property
    def feature_count(self) -> int:
        return len(self.features)

    @property
    def distinct_signatures(self) -> int:
        return len(self.signatures)

    def as_dict(self) -> Dict[str, object]:
        return {
            "features": dict(sorted(self.features.items())),
            "signatures": sorted(self.signatures),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CoverageMap":
        return cls(features=dict(data.get("features", {})),
                   signatures=set(data.get("signatures", ())))


def energy_for(new_features: int, new_signature: bool = False) -> int:
    """Mutation slots earned by one seed — AFL's "interesting inputs get
    more fuzz time".  New *features* scale energy up to
    :data:`MUTANT_SLOTS`; a merely new feature *combination* (a fresh
    signature over known features) earns a small constant so the queue
    keeps probing recombinations after the feature space saturates."""
    if new_features > 0:
        return min(MUTANT_SLOTS, 1 + new_features // 2)
    if new_signature:
        return 2
    return 0


def normalize_finding(classification: str, verdict) -> Dict[str, object]:
    """Project an :class:`~repro.fuzz.oracle.OracleVerdict` onto its
    *behaviour*, dropping seed-specific noise, so two seeds hitting the
    same bug fingerprint identically.

    Kept: the classification, the static diagnostic codes per mode, the
    dynamic verdict *classes* (text before any ``[`` detail payload), the
    explored failure classes, and a digit-stripped crash detail (line
    numbers, uids and pointers vary per seed; the exception shape does
    not)."""
    def verdict_class(text: object) -> str:
        return str(text or "").split("[", 1)[0].strip()

    def strip_noise(text: object) -> str:
        out: List[str] = []
        for ch in str(text or ""):
            if ch.isdigit():
                if out and out[-1] == "#":
                    continue
                out.append("#")
            else:
                out.append(ch)
        return "".join(out)

    return {
        "classification": classification,
        "static_interproc": sorted(verdict.static_interproc),
        "static_intraproc": sorted(verdict.static_intraproc),
        "raw": verdict_class(verdict.raw_verdict),
        "instrumented": verdict_class(verdict.instrumented_verdict),
        "explored_classes": sorted(
            {verdict_class(c) for c in verdict.explored_classes}),
        "crash": strip_noise(verdict.crash_detail),
    }


def finding_fingerprint_for(classification: str, verdict) -> str:
    """Deduplication key: the Report-IR style fingerprint (sha256[:16] of
    canonical JSON) of the normalized finding."""
    payload = normalize_finding(classification, verdict)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


__all__ = [
    "MUTANT_BASE",
    "MUTANT_SLOTS",
    "CoverageMap",
    "CoverageSignature",
    "decode_mutant",
    "energy_for",
    "finding_fingerprint_for",
    "is_mutant_seed",
    "mutant_seed",
    "mutation_rounds",
    "mutation_seed",
    "normalize_finding",
    "probe_features",
    "signature_for",
    "source_features",
]
