"""Fuzz campaign driver: seeds → programs → oracle verdicts → report.

One *seed* is one reproducible experiment: seed ``s`` deterministically
yields a generated program (and, for every fourth seed, a mutant of it —
the mutator is part of the tested surface), whose differential-oracle
verdict depends only on ``(s, GenConfig, OracleConfig)``.  A campaign runs
a seed range, optionally fans seeds out to worker processes (results are
merged in seed order, so the report is identical for any ``jobs``), stops
at a wall-clock budget, and can ddmin-shrink every disagreement into a
corpus directory.

Reproduction contract: any finding of
``parcoach fuzz --seeds N --seed S`` is reproducible alone via
``parcoach fuzz --seeds 1 --seed <failing seed>`` — generation is keyed on
the absolute seed value, never on the position inside the campaign.
Coverage-guided mutants keep the contract through the arithmetic seed
encoding of :mod:`repro.fuzz.coverage` (``seed >= MUTANT_BASE`` decodes to
``(parent, slot)``), so a mutant finding is still one integer.

Coverage mode (``--coverage``, see ``docs/fuzzing.md``): every seed body
collects a deterministic coverage signature; seeds whose signature adds
new features to the campaign's :class:`~repro.fuzz.coverage.CoverageMap`
earn energy and their mutants enter a bounded queue.  Scheduling is
wave-based with a *constant* wave width (independent of ``jobs``), waves
interleave queue drains with fresh seeds, and results are folded in wave
order — so serial and parallel campaigns produce byte-identical reports,
and a mid-wave kill resumes exactly (the checkpoint stores the in-flight
wave).  Findings are deduplicated by normalized-verdict fingerprint: a
campaign reports *distinct* bugs, not distinct seeds.

Survivability (see ``docs/resilience.md``): ``seed_timeout`` caps one
seed's wall clock — a hung seed is classified ``crash`` with a ``timeout``
detail and the campaign continues, while the abandoned body thread is
*quarantined* (its fault-site activity suppressed) so a zombie cannot
poison later seeds sharing its process; ``checkpoint``/``resume`` persist
the running tally (schema v2: tally + coverage map + mutation queue +
dedupe set + accumulated elapsed) after every completed seed, so a killed
campaign restarts exactly where it stopped and ends with the identical
final tally *and* elapsed accounting.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..util.faultinject import fault_site, quarantine_thread, release_quarantine
from ..util.probe import collecting
from .coverage import (
    CoverageMap,
    CoverageSignature,
    decode_mutant,
    energy_for,
    finding_fingerprint_for,
    is_mutant_seed,
    mutant_seed,
    mutation_rounds,
    mutation_seed,
    signature_for,
)
from .generator import GenConfig, GeneratorError, generate_program, mutate
from .oracle import (
    AGREE,
    CRASH,
    STATIC_MISS,
    STATIC_OVERAPPROX,
    OracleConfig,
    OracleVerdict,
    run_oracle,
)
from .reduce import reduce_counterexample, write_counterexample

#: Every fourth seed fuzzes the mutator too: the generated program is
#: perturbed once before being fed to the oracle.
MUTANT_STRIDE = 4

#: Coverage-mode wave width.  Deliberately constant (never derived from
#: ``jobs``): the wave is the scheduling quantum, and keeping it fixed
#: makes serial and parallel campaigns byte-identical.
WAVE_WIDTH = 8

#: At most this many queued mutants per wave — the rest of the wave is
#: fresh seeds, so the queue can never starve exploration.
WAVE_QUEUE_SHARE = WAVE_WIDTH // 2

#: Mutation-queue bound; beyond it, earned energy is dropped (counted in
#: ``queue_overflow``) instead of growing the checkpoint without limit.
QUEUE_LIMIT = 512


def program_for_seed(seed: int, config: GenConfig = GenConfig()) -> str:
    """The deterministic program text for one absolute seed value.

    Mutant-encoded seeds (``seed >= MUTANT_BASE``) decode to
    ``(parent, slot)`` — recursively, a parent may itself be a mutant —
    and apply slot-derived mutation rounds to the parent's program, so the
    CLI reproduces coverage-queue mutants from the integer alone."""
    if is_mutant_seed(seed):
        parent, slot = decode_mutant(seed)
        base = program_for_seed(parent, config)
        return mutate(base, mutation_seed(parent, slot),
                      rounds=mutation_rounds(slot))
    source = generate_program(seed, config)
    if seed % MUTANT_STRIDE == MUTANT_STRIDE - 1:
        source = mutate(source, seed)
    return source


@dataclass
class SeedOutcome:
    """One seed's program + verdict (kept only for non-``agree`` seeds and
    for statistics)."""

    seed: int
    classification: str
    verdict: OracleVerdict
    source: str
    #: Coverage-mode only: the seed's deterministic coverage signature.
    signature: Optional[CoverageSignature] = None

    @property
    def repro(self) -> str:
        return f"parcoach fuzz --seeds 1 --seed {self.seed}"


@dataclass
class FuzzReport:
    """Aggregate of one campaign."""

    requested: int
    base_seed: int
    completed: int = 0
    counts: Counter = field(default_factory=Counter)
    #: static-miss / crash outcomes (the disagreements; coverage mode keeps
    #: one representative per distinct finding fingerprint).
    disagreements: List[SeedOutcome] = field(default_factory=list)
    #: static-overapprox seeds (allowed, tracked for the precision metric).
    overapprox_seeds: List[int] = field(default_factory=list)
    elapsed: float = 0.0
    budget_hit: bool = False
    #: (corpus name, path) pairs written by --shrink.
    reduced: List[Tuple[str, str]] = field(default_factory=list)
    # -- coverage mode state (None / empty in classic mode) ----------------
    coverage_map: Optional[CoverageMap] = None
    #: fingerprint -> {"seed", "classification", "count"} (first seed wins).
    dedupe: Dict[str, dict] = field(default_factory=dict)
    #: Disagreement outcomes suppressed as duplicates of a known finding.
    duplicates: int = 0
    #: Pending mutant seeds (already encoded), FIFO.
    queue: List[int] = field(default_factory=list)
    #: The in-flight wave and how many of its results were folded in —
    #: persisted so a mid-wave kill resumes with the identical schedule.
    wave: List[int] = field(default_factory=list)
    wave_done: int = 0
    #: Next fresh (non-mutant) seed value to schedule.
    next_fresh: Optional[int] = None
    #: Energy discarded because the mutation queue was full.
    queue_overflow: int = 0

    @property
    def ok(self) -> bool:
        return not self.disagreements

    @property
    def distinct_findings(self) -> int:
        return len(self.dedupe)

    def exit_code(self) -> int:
        """CLI contract: 2 for internal errors (crash), 1 for findings
        (static-miss), 0 otherwise."""
        if self.counts.get(CRASH, 0):
            return 2
        if self.counts.get(STATIC_MISS, 0):
            return 1
        return 0

    def summary(self) -> str:
        rate = self.completed / self.elapsed if self.elapsed > 0 else 0.0
        parts = [f"{self.completed}/{self.requested} seeds"
                 + (" (budget hit)" if self.budget_hit else "")
                 + f" from seed {self.base_seed}:"]
        for cls in (AGREE, STATIC_OVERAPPROX, STATIC_MISS, CRASH):
            if self.counts.get(cls, 0):
                parts.append(f"{cls} {self.counts[cls]}")
        parts.append(f"({rate:.1f} programs/s)")
        if self.coverage_map is not None:
            parts.append(
                f"[coverage: {self.coverage_map.feature_count} features, "
                f"{self.coverage_map.distinct_signatures} signatures, "
                f"{self.distinct_findings} distinct findings"
                + (f", {self.duplicates} duplicates" if self.duplicates
                   else "") + "]")
        return " ".join(parts)


def _call_with_timeout(fn, timeout: Optional[float]):
    """Run ``fn()`` under a wall-clock cap.  Returns ``(result, False)``, or
    ``(None, True)`` on timeout.  The body runs in a daemon thread so a
    genuinely hung body (livelock, injected ``hang``) cannot keep the
    process alive — the same mechanism works serially and inside pool
    workers, where per-task process kills are not available.

    A timed-out body thread cannot be killed: it keeps running until its
    hang resolves, sharing the process (and its fault-injection plan) with
    every later seed on this worker.  The timeout path therefore
    *quarantines* the zombie's thread ident — its ``fault_site`` calls
    become no-ops, so it can neither advance the shared hit counters nor
    trigger faults scheduled for live seeds.  A fresh body thread that
    happens to reuse a quarantined ident (idents are recycled once the
    zombie finally exits) lifts the quarantine on entry."""
    if timeout is None:
        return fn(), False
    box: dict = {}

    def body() -> None:
        release_quarantine(threading.get_ident())
        try:
            box["result"] = fn()
        except BaseException as exc:  # re-raised on the caller's thread
            box["error"] = exc

    worker = threading.Thread(target=body, daemon=True)
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        quarantine_thread(worker.ident)
        return None, True
    if "error" in box:
        raise box["error"]
    return box["result"], False


def fuzz_one(seed: int,
             gen_config: GenConfig = GenConfig(),
             oracle_config: OracleConfig = OracleConfig(),
             seed_timeout: Optional[float] = None,
             coverage: bool = False,
             dry_run: bool = False) -> SeedOutcome:
    """Generate + cross-check one seed (the worker body).

    Any failure mode of the seed body — generator error, internal
    exception, or exceeding ``seed_timeout`` — is classified ``crash``
    with a detail string; one bad seed never kills the campaign.

    ``coverage`` collects the seed's coverage signature: a probe sink is
    installed *inside the body thread* (sinks are thread-local, so probes
    from rank threads or an earlier zombie can never leak in), generation
    and analysis probes are folded with structural source features and the
    oracle class.  ``dry_run`` skips the oracle (stub ``agree`` verdict) —
    the campaign scheduler runs at generator speed, which is what the
    coverage-vs-open-loop acceptance test measures."""

    def run_body() -> Tuple[str, OracleVerdict]:
        fault_site("fuzz.seed")
        source = program_for_seed(seed, gen_config)
        if dry_run:
            return source, OracleVerdict(classification=AGREE)
        return source, run_oracle(source, oracle_config,
                                  name=f"<fuzz seed={seed}>")

    def body():
        if not coverage:
            return run_body() + (None,)
        with collecting() as counts:
            source, verdict = run_body()
        sig = signature_for(counts, source=source,
                            classification=verdict.classification)
        return source, verdict, sig

    def crash_outcome(detail: str) -> SeedOutcome:
        verdict = OracleVerdict(classification=CRASH, crash_detail=detail)
        sig = (signature_for({}, classification=CRASH)
               if coverage else None)
        return SeedOutcome(seed=seed, classification=CRASH, verdict=verdict,
                           source="", signature=sig)

    try:
        result, timed_out = _call_with_timeout(body, seed_timeout)
    except GeneratorError as exc:
        return crash_outcome(f"generator: {exc}")
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        return crash_outcome(f"seed body: {type(exc).__name__}: {exc}")
    if timed_out:
        return crash_outcome(f"timeout: seed exceeded {seed_timeout:g}s")
    source, verdict, sig = result
    return SeedOutcome(seed=seed, classification=verdict.classification,
                       verdict=verdict, source=source, signature=sig)


def _fuzz_seed_task(payload: Tuple[int, GenConfig, OracleConfig,
                                   Optional[float], bool, bool]
                    ) -> Tuple[int, str, dict, str, Optional[List[str]]]:
    """Process-pool entry point (top level so it pickles).  The signature
    travels as its sorted feature list — workers never see the campaign's
    coverage map, so their results are position-independent."""
    seed, gen_config, oracle_config, seed_timeout, coverage, dry_run = payload
    outcome = fuzz_one(seed, gen_config, oracle_config,
                       seed_timeout=seed_timeout, coverage=coverage,
                       dry_run=dry_run)
    features = (list(outcome.signature.features)
                if outcome.signature is not None else None)
    return (outcome.seed, outcome.classification, outcome.verdict.as_dict(),
            outcome.source, features)


#: Checkpoint file schema version (bump on incompatible change).
#: v1 (pre-coverage) stored only the tally; v2 adds accumulated elapsed,
#: the coverage map, the mutation queue + in-flight wave, and the dedupe
#: set.  v1 files are rejected with a clear message — their elapsed
#: accounting was wrong anyway (the resumed-elapsed bug this version
#: fixes), so silently upgrading would persist a lie.
CHECKPOINT_VERSION = 2


def _checkpoint_doc(report: FuzzReport) -> dict:
    return {
        "version": CHECKPOINT_VERSION,
        "base_seed": report.base_seed,
        "requested": report.requested,
        "completed": report.completed,
        "counts": dict(report.counts),
        "disagreements": [
            {"seed": o.seed, "classification": o.classification,
             "verdict": o.verdict.as_dict(), "has_source": bool(o.source)}
            for o in report.disagreements
        ],
        "overapprox_seeds": list(report.overapprox_seeds),
        "elapsed": report.elapsed,
        "coverage": (report.coverage_map.as_dict()
                     if report.coverage_map is not None else None),
        "dedupe": report.dedupe,
        "duplicates": report.duplicates,
        "queue": list(report.queue),
        "wave": list(report.wave),
        "wave_done": report.wave_done,
        "next_fresh": report.next_fresh,
        "queue_overflow": report.queue_overflow,
    }


def write_checkpoint(path: str, report: FuzzReport) -> None:
    """Atomically persist the campaign tally (write-temp + rename, so a
    kill mid-write leaves the previous checkpoint intact)."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(_checkpoint_doc(report), handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def load_checkpoint(path: str, seeds: int, base_seed: int,
                    gen_config: GenConfig = GenConfig()) -> FuzzReport:
    """Rebuild a partial :class:`FuzzReport` from a checkpoint.

    Disagreement *sources* are not stored — they are regenerated from the
    absolute seed, which is the reproduction contract anyway (and decodes
    mutant seeds).  Raises ``ValueError`` when the checkpoint belongs to a
    different campaign (seed range mismatch) or an older schema version —
    resuming it would silently mix tallies."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    version = doc.get("version")
    if version != CHECKPOINT_VERSION:
        hint = ""
        if version == 1:
            hint = (" (schema v1 predates coverage-guided campaigns and "
                    "carries no accumulated elapsed; delete the file and "
                    "restart the campaign — see docs/fuzzing.md)")
        raise ValueError(f"checkpoint {path}: unsupported version "
                         f"{version!r}, expected {CHECKPOINT_VERSION}{hint}")
    if doc.get("base_seed") != base_seed or doc.get("requested") != seeds:
        raise ValueError(
            f"checkpoint {path} is for seeds {doc.get('base_seed')}+"
            f"{doc.get('requested')}, not {base_seed}+{seeds}")
    report = FuzzReport(requested=seeds, base_seed=base_seed)
    report.completed = int(doc.get("completed", 0))
    report.counts = Counter({str(k): int(v)
                             for k, v in doc.get("counts", {}).items()})
    report.overapprox_seeds = [int(s)
                               for s in doc.get("overapprox_seeds", [])]
    report.elapsed = float(doc.get("elapsed", 0.0))
    if doc.get("coverage") is not None:
        report.coverage_map = CoverageMap.from_dict(doc["coverage"])
    report.dedupe = {str(k): dict(v)
                     for k, v in (doc.get("dedupe") or {}).items()}
    report.duplicates = int(doc.get("duplicates", 0))
    report.queue = [int(s) for s in doc.get("queue", [])]
    report.wave = [int(s) for s in doc.get("wave", [])]
    report.wave_done = int(doc.get("wave_done", 0))
    nf = doc.get("next_fresh")
    report.next_fresh = int(nf) if nf is not None else None
    report.queue_overflow = int(doc.get("queue_overflow", 0))
    for entry in doc.get("disagreements", []):
        source = ""
        if entry.get("has_source"):
            try:
                source = program_for_seed(int(entry["seed"]), gen_config)
            except Exception:
                source = ""
        report.disagreements.append(SeedOutcome(
            seed=int(entry["seed"]),
            classification=str(entry["classification"]),
            verdict=OracleVerdict.from_dict(entry["verdict"]),
            source=source))
    return report


def run_fuzz(
    seeds: int,
    base_seed: int = 0,
    gen_config: GenConfig = GenConfig(),
    oracle_config: OracleConfig = OracleConfig(),
    budget: Optional[float] = None,
    jobs: int = 1,
    shrink: bool = False,
    corpus_dir: Optional[str] = None,
    shrink_budget: int = 250,
    progress=None,
    seed_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    coverage: bool = False,
    dry_run: bool = False,
) -> FuzzReport:
    """Run the campaign: ``seeds`` seed bodies starting at ``base_seed``.

    Classic (open-loop) mode runs exactly the seeds ``base_seed ..
    base_seed + seeds - 1``.  Coverage mode (``coverage=True``) runs the
    same *number* of seed bodies, but interleaves fresh seeds with
    mutation-queue drains (energy earned by coverage gain, see
    :mod:`repro.fuzz.coverage`); mutants carry encoded seeds ≥
    ``MUTANT_BASE`` and remain individually reproducible.

    ``budget`` caps wall-clock seconds (checked between seeds; with
    ``jobs > 1`` the queued work is cancelled and only in-flight chunks
    finish).  ``jobs > 1`` fans seeds out to worker processes;
    ``corpus_dir`` implies ``shrink`` — each disagreement is ddmin-reduced
    and the ``.mini``/``.json`` pair persisted there.  ``progress`` is an
    optional callable receiving each :class:`SeedOutcome` as it completes
    (CLI verbose mode); it fires at most once per seed even across the
    broken-pool fallback.

    ``seed_timeout`` caps one seed's wall clock (timed-out seeds classify
    ``crash`` with a ``timeout`` detail, their zombie body thread is
    quarantined, and the campaign continues).  ``checkpoint`` persists the
    tally after every completed seed; ``resume`` restores it and runs only
    the remaining seeds — because outcomes are seed-deterministic and the
    schedule state (queue, in-flight wave, next fresh seed) is persisted,
    a resumed campaign's final tally *and accumulated elapsed* are
    identical to an uninterrupted one's.  ``dry_run`` stubs the oracle
    (every seed classifies ``agree``) for scheduler-speed experiments."""
    if corpus_dir is not None:
        shrink = True

    def fresh_report() -> FuzzReport:
        if resume and checkpoint is not None and os.path.exists(checkpoint):
            loaded = load_checkpoint(checkpoint, seeds, base_seed, gen_config)
            if coverage != (loaded.coverage_map is not None):
                have = "with" if loaded.coverage_map is not None else "without"
                want = "with" if coverage else "without"
                raise ValueError(
                    f"checkpoint {checkpoint} was written {have} --coverage; "
                    f"this campaign runs {want} it")
            return loaded
        report = FuzzReport(requested=seeds, base_seed=base_seed)
        if coverage:
            report.coverage_map = CoverageMap()
            report.next_fresh = base_seed
        return report

    report = fresh_report()
    prior_elapsed = report.elapsed
    start = time.monotonic()
    reported: set = set()

    def note(outcome: SeedOutcome) -> None:
        report.completed += 1
        report.counts[outcome.classification] += 1
        if report.wave:
            report.wave_done += 1
        keep = True
        if outcome.classification in (STATIC_MISS, CRASH,
                                      STATIC_OVERAPPROX):
            if report.coverage_map is not None:
                fp = finding_fingerprint_for(outcome.classification,
                                             outcome.verdict)
                known = report.dedupe.get(fp)
                if known is not None:
                    known["count"] = int(known.get("count", 1)) + 1
                    report.duplicates += 1
                    keep = False
                else:
                    report.dedupe[fp] = {
                        "seed": outcome.seed,
                        "classification": outcome.classification,
                        "count": 1,
                    }
        if outcome.classification in (STATIC_MISS, CRASH):
            if keep:
                report.disagreements.append(outcome)
        elif outcome.classification == STATIC_OVERAPPROX:
            report.overapprox_seeds.append(outcome.seed)
        if report.coverage_map is not None and outcome.signature is not None:
            new_sig = (outcome.signature.digest
                       not in report.coverage_map.signatures)
            new = report.coverage_map.observe(outcome.signature)
            for slot in range(energy_for(new, new_sig)):
                if len(report.queue) >= QUEUE_LIMIT:
                    report.queue_overflow += 1
                    continue
                report.queue.append(mutant_seed(outcome.seed, slot))
        report.elapsed = prior_elapsed + (time.monotonic() - start)
        if checkpoint is not None:
            write_checkpoint(checkpoint, report)
        if progress is not None and outcome.seed not in reported:
            reported.add(outcome.seed)
            progress(outcome)

    def out_of_budget() -> bool:
        return budget is not None and time.monotonic() - start >= budget

    if coverage:
        _run_coverage_waves(report, seeds, jobs, gen_config, oracle_config,
                            seed_timeout, dry_run, note, out_of_budget)
    elif jobs > 1 and seeds - report.completed > 1:
        seed_list = list(range(base_seed + report.completed,
                               base_seed + seeds))
        chunk = max(1, min(8, len(seed_list) // (jobs * 4) or 1))
        pool = ProcessPoolExecutor(max_workers=jobs)
        try:
            payloads = [(s, gen_config, oracle_config, seed_timeout,
                         False, dry_run)
                        for s in seed_list]
            for seed, cls, verdict_dict, source, _feats in pool.map(
                    _fuzz_seed_task, payloads, chunksize=chunk):
                note(SeedOutcome(
                    seed=seed, classification=cls,
                    verdict=OracleVerdict.from_dict(verdict_dict),
                    source=source))
                if out_of_budget():
                    report.budget_hit = True
                    break
        except (BrokenProcessPool, OSError):
            # No usable pool on this platform: restart serially (seed
            # outcomes are deterministic, so a clean restart is cheapest;
            # `reported` keeps progress from firing twice per seed).  The
            # restart re-reads the checkpoint, which the pool attempt may
            # have advanced — continue from *its* tally, never re-counting.
            # Its stored elapsed already covers the pool segment, so the
            # segment clock restarts too (no double counting).
            report = fresh_report()
            prior_elapsed = report.elapsed
            if checkpoint is not None:
                start = time.monotonic()
            for seed in range(base_seed + report.completed,
                              base_seed + seeds):
                note(fuzz_one(seed, gen_config, oracle_config,
                              seed_timeout=seed_timeout, dry_run=dry_run))
                if out_of_budget():
                    report.budget_hit = True
                    break
        finally:
            # cancel_futures drops the queued chunks, so a budget break
            # returns after the in-flight work only instead of silently
            # running the whole campaign to completion.
            pool.shutdown(wait=False, cancel_futures=True)
    else:
        # Completed seeds are always a prefix of the range (serial order),
        # so resuming = skipping them.
        for seed in range(base_seed + report.completed, base_seed + seeds):
            note(fuzz_one(seed, gen_config, oracle_config,
                          seed_timeout=seed_timeout, dry_run=dry_run))
            if out_of_budget():
                report.budget_hit = True
                break

    # Deterministic ordering regardless of resume/fallback history.
    report.disagreements.sort(key=lambda o: o.seed)
    report.overapprox_seeds.sort()

    if shrink and report.disagreements:
        for outcome in report.disagreements:
            if not outcome.source:
                continue
            reduced = reduce_counterexample(
                outcome.source, outcome.verdict, oracle_config,
                budget=shrink_budget)
            outcome.source = reduced
            if corpus_dir is not None:
                name = f"seed{outcome.seed}_{outcome.classification}"
                paths = write_counterexample(
                    corpus_dir, name, reduced, outcome.verdict,
                    config=oracle_config, seed=outcome.seed,
                    note=f"reduced from {outcome.repro}")
                report.reduced.append((name, paths[0]))

    report.elapsed = prior_elapsed + (time.monotonic() - start)
    if checkpoint is not None:
        write_checkpoint(checkpoint, report)
    return report


def _run_coverage_waves(report: FuzzReport, seeds: int, jobs: int,
                        gen_config: GenConfig, oracle_config: OracleConfig,
                        seed_timeout: Optional[float], dry_run: bool,
                        note, out_of_budget) -> None:
    """The coverage-mode scheduler: fixed-width waves of queue mutants +
    fresh seeds, run serially or over a process pool, folded in wave
    order.  Mutates ``report`` only through ``note`` plus the schedule
    fields (queue/wave/next_fresh), which ``note`` checkpoints."""

    def form_wave() -> List[int]:
        room = seeds - report.completed
        if room <= 0:
            return []
        size = min(WAVE_WIDTH, room)
        wave: List[int] = []
        take = min(len(report.queue), WAVE_QUEUE_SHARE, size)
        for _ in range(take):
            wave.append(report.queue.pop(0))
        while len(wave) < size:
            wave.append(report.next_fresh)
            report.next_fresh += 1
        return wave

    def run_wave_serial(pending: List[int]) -> bool:
        for seed in pending:
            note(fuzz_one(seed, gen_config, oracle_config,
                          seed_timeout=seed_timeout, coverage=True,
                          dry_run=dry_run))
            if out_of_budget():
                report.budget_hit = True
                return False
        return True

    pool: Optional[ProcessPoolExecutor] = None

    def run_wave_pool(pending: List[int]) -> bool:
        nonlocal pool
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=jobs)
        saw_timeout = False
        payloads = [(s, gen_config, oracle_config, seed_timeout, True,
                     dry_run) for s in pending]
        for seed, cls, verdict_dict, source, feats in pool.map(
                _fuzz_seed_task, payloads, chunksize=1):
            sig = (CoverageSignature(features=tuple(feats))
                   if feats is not None else None)
            verdict = OracleVerdict.from_dict(verdict_dict)
            if verdict.crash_detail.startswith("timeout:"):
                saw_timeout = True
            note(SeedOutcome(seed=seed, classification=cls, verdict=verdict,
                             source=source, signature=sig))
            if out_of_budget():
                report.budget_hit = True
                return False
        if saw_timeout:
            # A timed-out seed left a quarantined zombie thread inside
            # some worker; the quarantine keeps it harmless, but recycling
            # the pool between waves sheds the busy-waiting thread too.
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None
        return True

    use_pool = jobs > 1
    try:
        while True:
            # Resume path: finish the persisted in-flight wave first.
            pending = report.wave[report.wave_done:]
            if not pending:
                report.wave = form_wave()
                report.wave_done = 0
                pending = report.wave
            if not pending:
                break
            if use_pool:
                try:
                    if not run_wave_pool(pending):
                        return
                except (BrokenProcessPool, OSError):
                    # Same fallback contract as classic mode: the noted
                    # prefix is checkpointed; rerun the remainder of this
                    # wave serially and stay serial from here on.
                    use_pool = False
                    if pool is not None:
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = None
                    if not run_wave_serial(report.wave[report.wave_done:]):
                        return
            else:
                if not run_wave_serial(pending):
                    return
            if out_of_budget():
                report.budget_hit = True
                return
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
