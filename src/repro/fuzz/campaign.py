"""Fuzz campaign driver: seeds → programs → oracle verdicts → report.

One *seed* is one reproducible experiment: seed ``s`` deterministically
yields a generated program (and, for every fourth seed, a mutant of it —
the mutator is part of the tested surface), whose differential-oracle
verdict depends only on ``(s, GenConfig, OracleConfig)``.  A campaign runs
a seed range, optionally fans seeds out to worker processes (results are
merged in seed order, so the report is identical for any ``jobs``), stops
at a wall-clock budget, and can ddmin-shrink every disagreement into a
corpus directory.

Reproduction contract: any finding of
``parcoach fuzz --seeds N --seed S`` is reproducible alone via
``parcoach fuzz --seeds 1 --seed <failing seed>`` — generation is keyed on
the absolute seed value, never on the position inside the campaign.
"""

from __future__ import annotations

import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .generator import GenConfig, GeneratorError, generate_program, mutate
from .oracle import (
    AGREE,
    CRASH,
    STATIC_MISS,
    STATIC_OVERAPPROX,
    OracleConfig,
    OracleVerdict,
    run_oracle,
)
from .reduce import reduce_counterexample, write_counterexample

#: Every fourth seed fuzzes the mutator too: the generated program is
#: perturbed once before being fed to the oracle.
MUTANT_STRIDE = 4


def program_for_seed(seed: int, config: GenConfig = GenConfig()) -> str:
    """The deterministic program text for one absolute seed value."""
    source = generate_program(seed, config)
    if seed % MUTANT_STRIDE == MUTANT_STRIDE - 1:
        source = mutate(source, seed)
    return source


@dataclass
class SeedOutcome:
    """One seed's program + verdict (kept only for non-``agree`` seeds and
    for statistics)."""

    seed: int
    classification: str
    verdict: OracleVerdict
    source: str

    @property
    def repro(self) -> str:
        return f"parcoach fuzz --seeds 1 --seed {self.seed}"


@dataclass
class FuzzReport:
    """Aggregate of one campaign."""

    requested: int
    base_seed: int
    completed: int = 0
    counts: Counter = field(default_factory=Counter)
    #: static-miss / crash outcomes (the disagreements).
    disagreements: List[SeedOutcome] = field(default_factory=list)
    #: static-overapprox seeds (allowed, tracked for the precision metric).
    overapprox_seeds: List[int] = field(default_factory=list)
    elapsed: float = 0.0
    budget_hit: bool = False
    #: (corpus name, path) pairs written by --shrink.
    reduced: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def exit_code(self) -> int:
        """CLI contract: 2 for internal errors (crash), 1 for findings
        (static-miss), 0 otherwise."""
        if self.counts.get(CRASH, 0):
            return 2
        if self.counts.get(STATIC_MISS, 0):
            return 1
        return 0

    def summary(self) -> str:
        rate = self.completed / self.elapsed if self.elapsed > 0 else 0.0
        parts = [f"{self.completed}/{self.requested} seeds"
                 + (" (budget hit)" if self.budget_hit else "")
                 + f" from seed {self.base_seed}:"]
        for cls in (AGREE, STATIC_OVERAPPROX, STATIC_MISS, CRASH):
            if self.counts.get(cls, 0):
                parts.append(f"{cls} {self.counts[cls]}")
        parts.append(f"({rate:.1f} programs/s)")
        return " ".join(parts)


def fuzz_one(seed: int,
             gen_config: GenConfig = GenConfig(),
             oracle_config: OracleConfig = OracleConfig()) -> SeedOutcome:
    """Generate + cross-check one seed (the worker body)."""
    try:
        source = program_for_seed(seed, gen_config)
    except GeneratorError as exc:
        verdict = OracleVerdict(classification=CRASH,
                                crash_detail=f"generator: {exc}")
        return SeedOutcome(seed=seed, classification=CRASH, verdict=verdict,
                           source="")
    verdict = run_oracle(source, oracle_config, name=f"<fuzz seed={seed}>")
    return SeedOutcome(seed=seed, classification=verdict.classification,
                       verdict=verdict, source=source)


def _fuzz_seed_task(payload: Tuple[int, GenConfig, OracleConfig]) -> Tuple[int, str, dict, str]:
    """Process-pool entry point (top level so it pickles)."""
    seed, gen_config, oracle_config = payload
    outcome = fuzz_one(seed, gen_config, oracle_config)
    return (outcome.seed, outcome.classification, outcome.verdict.as_dict(),
            outcome.source)


def run_fuzz(
    seeds: int,
    base_seed: int = 0,
    gen_config: GenConfig = GenConfig(),
    oracle_config: OracleConfig = OracleConfig(),
    budget: Optional[float] = None,
    jobs: int = 1,
    shrink: bool = False,
    corpus_dir: Optional[str] = None,
    shrink_budget: int = 250,
    progress=None,
) -> FuzzReport:
    """Run the campaign over seeds ``base_seed .. base_seed + seeds - 1``.

    ``budget`` caps wall-clock seconds (checked between seeds; with
    ``jobs > 1`` the queued work is cancelled and only in-flight chunks
    finish).  ``jobs > 1`` fans seeds out to worker processes;
    ``corpus_dir`` implies ``shrink`` — each disagreement is ddmin-reduced
    and the ``.mini``/``.json`` pair persisted there.  ``progress`` is an
    optional callable receiving each :class:`SeedOutcome` as it completes
    (CLI verbose mode); it fires at most once per seed even across the
    broken-pool fallback."""
    if corpus_dir is not None:
        shrink = True
    report = FuzzReport(requested=seeds, base_seed=base_seed)
    start = time.monotonic()
    seed_list = list(range(base_seed, base_seed + seeds))
    reported: set = set()

    def note(outcome: SeedOutcome) -> None:
        report.completed += 1
        report.counts[outcome.classification] += 1
        if outcome.classification in (STATIC_MISS, CRASH):
            report.disagreements.append(outcome)
        elif outcome.classification == STATIC_OVERAPPROX:
            report.overapprox_seeds.append(outcome.seed)
        if progress is not None and outcome.seed not in reported:
            reported.add(outcome.seed)
            progress(outcome)

    def out_of_budget() -> bool:
        return budget is not None and time.monotonic() - start >= budget

    if jobs > 1 and len(seed_list) > 1:
        chunk = max(1, min(8, len(seed_list) // (jobs * 4) or 1))
        pool = ProcessPoolExecutor(max_workers=jobs)
        try:
            payloads = [(s, gen_config, oracle_config) for s in seed_list]
            for seed, cls, verdict_dict, source in pool.map(
                    _fuzz_seed_task, payloads, chunksize=chunk):
                note(SeedOutcome(
                    seed=seed, classification=cls,
                    verdict=OracleVerdict.from_dict(verdict_dict),
                    source=source))
                if out_of_budget():
                    report.budget_hit = True
                    break
        except (BrokenProcessPool, OSError):
            # No usable pool on this platform: restart serially (seed
            # outcomes are deterministic, so a clean restart is cheapest;
            # `reported` keeps progress from firing twice per seed).
            report = FuzzReport(requested=seeds, base_seed=base_seed)
            for seed in seed_list:
                note(fuzz_one(seed, gen_config, oracle_config))
                if out_of_budget():
                    report.budget_hit = True
                    break
        finally:
            # cancel_futures drops the queued chunks, so a budget break
            # returns after the in-flight work only instead of silently
            # running the whole campaign to completion.
            pool.shutdown(wait=False, cancel_futures=True)
    else:
        for seed in seed_list:
            note(fuzz_one(seed, gen_config, oracle_config))
            if out_of_budget():
                report.budget_hit = True
                break

    if shrink and report.disagreements:
        for outcome in report.disagreements:
            if not outcome.source:
                continue
            reduced = reduce_counterexample(
                outcome.source, outcome.verdict, oracle_config,
                budget=shrink_budget)
            outcome.source = reduced
            if corpus_dir is not None:
                name = f"seed{outcome.seed}_{outcome.classification}"
                paths = write_counterexample(
                    corpus_dir, name, reduced, outcome.verdict,
                    config=oracle_config, seed=outcome.seed,
                    note=f"reduced from {outcome.repro}")
                report.reduced.append((name, paths[0]))

    report.elapsed = time.monotonic() - start
    return report
