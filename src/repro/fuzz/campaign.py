"""Fuzz campaign driver: seeds → programs → oracle verdicts → report.

One *seed* is one reproducible experiment: seed ``s`` deterministically
yields a generated program (and, for every fourth seed, a mutant of it —
the mutator is part of the tested surface), whose differential-oracle
verdict depends only on ``(s, GenConfig, OracleConfig)``.  A campaign runs
a seed range, optionally fans seeds out to worker processes (results are
merged in seed order, so the report is identical for any ``jobs``), stops
at a wall-clock budget, and can ddmin-shrink every disagreement into a
corpus directory.

Reproduction contract: any finding of
``parcoach fuzz --seeds N --seed S`` is reproducible alone via
``parcoach fuzz --seeds 1 --seed <failing seed>`` — generation is keyed on
the absolute seed value, never on the position inside the campaign.

Survivability (see ``docs/resilience.md``): ``seed_timeout`` caps one
seed's wall clock — a hung seed is classified ``crash`` with a ``timeout``
detail and the campaign continues; ``checkpoint``/``resume`` persist the
running tally after every completed seed, so a killed campaign restarts
exactly where it stopped and ends with the identical final tally (seed
outcomes are deterministic, so nothing needs to be re-verified).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..util.faultinject import fault_site
from .generator import GenConfig, GeneratorError, generate_program, mutate
from .oracle import (
    AGREE,
    CRASH,
    STATIC_MISS,
    STATIC_OVERAPPROX,
    OracleConfig,
    OracleVerdict,
    run_oracle,
)
from .reduce import reduce_counterexample, write_counterexample

#: Every fourth seed fuzzes the mutator too: the generated program is
#: perturbed once before being fed to the oracle.
MUTANT_STRIDE = 4


def program_for_seed(seed: int, config: GenConfig = GenConfig()) -> str:
    """The deterministic program text for one absolute seed value."""
    source = generate_program(seed, config)
    if seed % MUTANT_STRIDE == MUTANT_STRIDE - 1:
        source = mutate(source, seed)
    return source


@dataclass
class SeedOutcome:
    """One seed's program + verdict (kept only for non-``agree`` seeds and
    for statistics)."""

    seed: int
    classification: str
    verdict: OracleVerdict
    source: str

    @property
    def repro(self) -> str:
        return f"parcoach fuzz --seeds 1 --seed {self.seed}"


@dataclass
class FuzzReport:
    """Aggregate of one campaign."""

    requested: int
    base_seed: int
    completed: int = 0
    counts: Counter = field(default_factory=Counter)
    #: static-miss / crash outcomes (the disagreements).
    disagreements: List[SeedOutcome] = field(default_factory=list)
    #: static-overapprox seeds (allowed, tracked for the precision metric).
    overapprox_seeds: List[int] = field(default_factory=list)
    elapsed: float = 0.0
    budget_hit: bool = False
    #: (corpus name, path) pairs written by --shrink.
    reduced: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def exit_code(self) -> int:
        """CLI contract: 2 for internal errors (crash), 1 for findings
        (static-miss), 0 otherwise."""
        if self.counts.get(CRASH, 0):
            return 2
        if self.counts.get(STATIC_MISS, 0):
            return 1
        return 0

    def summary(self) -> str:
        rate = self.completed / self.elapsed if self.elapsed > 0 else 0.0
        parts = [f"{self.completed}/{self.requested} seeds"
                 + (" (budget hit)" if self.budget_hit else "")
                 + f" from seed {self.base_seed}:"]
        for cls in (AGREE, STATIC_OVERAPPROX, STATIC_MISS, CRASH):
            if self.counts.get(cls, 0):
                parts.append(f"{cls} {self.counts[cls]}")
        parts.append(f"({rate:.1f} programs/s)")
        return " ".join(parts)


def _call_with_timeout(fn, timeout: Optional[float]):
    """Run ``fn()`` under a wall-clock cap.  Returns ``(result, False)``, or
    ``(None, True)`` on timeout.  The body runs in a daemon thread so a
    genuinely hung body (livelock, injected ``hang``) cannot keep the
    process alive — the same mechanism works serially and inside pool
    workers, where per-task process kills are not available."""
    if timeout is None:
        return fn(), False
    box: dict = {}

    def body() -> None:
        try:
            box["result"] = fn()
        except BaseException as exc:  # re-raised on the caller's thread
            box["error"] = exc

    worker = threading.Thread(target=body, daemon=True)
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        return None, True
    if "error" in box:
        raise box["error"]
    return box["result"], False


def fuzz_one(seed: int,
             gen_config: GenConfig = GenConfig(),
             oracle_config: OracleConfig = OracleConfig(),
             seed_timeout: Optional[float] = None) -> SeedOutcome:
    """Generate + cross-check one seed (the worker body).

    Any failure mode of the seed body — generator error, internal
    exception, or exceeding ``seed_timeout`` — is classified ``crash``
    with a detail string; one bad seed never kills the campaign."""

    def body() -> Tuple[str, OracleVerdict]:
        fault_site("fuzz.seed")
        source = program_for_seed(seed, gen_config)
        return source, run_oracle(source, oracle_config,
                                  name=f"<fuzz seed={seed}>")

    try:
        result, timed_out = _call_with_timeout(body, seed_timeout)
    except GeneratorError as exc:
        verdict = OracleVerdict(classification=CRASH,
                                crash_detail=f"generator: {exc}")
        return SeedOutcome(seed=seed, classification=CRASH, verdict=verdict,
                           source="")
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        verdict = OracleVerdict(
            classification=CRASH,
            crash_detail=f"seed body: {type(exc).__name__}: {exc}")
        return SeedOutcome(seed=seed, classification=CRASH, verdict=verdict,
                           source="")
    if timed_out:
        verdict = OracleVerdict(
            classification=CRASH,
            crash_detail=f"timeout: seed exceeded {seed_timeout:g}s")
        return SeedOutcome(seed=seed, classification=CRASH, verdict=verdict,
                           source="")
    source, verdict = result
    return SeedOutcome(seed=seed, classification=verdict.classification,
                       verdict=verdict, source=source)


def _fuzz_seed_task(payload: Tuple[int, GenConfig, OracleConfig,
                                   Optional[float]]) -> Tuple[int, str, dict, str]:
    """Process-pool entry point (top level so it pickles)."""
    seed, gen_config, oracle_config, seed_timeout = payload
    outcome = fuzz_one(seed, gen_config, oracle_config,
                       seed_timeout=seed_timeout)
    return (outcome.seed, outcome.classification, outcome.verdict.as_dict(),
            outcome.source)


#: Checkpoint file schema version (bump on incompatible change).
CHECKPOINT_VERSION = 1


def _checkpoint_doc(report: FuzzReport) -> dict:
    return {
        "version": CHECKPOINT_VERSION,
        "base_seed": report.base_seed,
        "requested": report.requested,
        "completed": report.completed,
        "counts": dict(report.counts),
        "disagreements": [
            {"seed": o.seed, "classification": o.classification,
             "verdict": o.verdict.as_dict(), "has_source": bool(o.source)}
            for o in report.disagreements
        ],
        "overapprox_seeds": list(report.overapprox_seeds),
    }


def write_checkpoint(path: str, report: FuzzReport) -> None:
    """Atomically persist the campaign tally (write-temp + rename, so a
    kill mid-write leaves the previous checkpoint intact)."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(_checkpoint_doc(report), handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def load_checkpoint(path: str, seeds: int, base_seed: int,
                    gen_config: GenConfig = GenConfig()) -> FuzzReport:
    """Rebuild a partial :class:`FuzzReport` from a checkpoint.

    Disagreement *sources* are not stored — they are regenerated from the
    absolute seed, which is the reproduction contract anyway.  Raises
    ``ValueError`` when the checkpoint belongs to a different campaign
    (seed range mismatch) — resuming it would silently mix tallies."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("version") != CHECKPOINT_VERSION:
        raise ValueError(f"checkpoint {path}: unsupported version "
                         f"{doc.get('version')!r}")
    if doc.get("base_seed") != base_seed or doc.get("requested") != seeds:
        raise ValueError(
            f"checkpoint {path} is for seeds {doc.get('base_seed')}+"
            f"{doc.get('requested')}, not {base_seed}+{seeds}")
    report = FuzzReport(requested=seeds, base_seed=base_seed)
    report.completed = int(doc.get("completed", 0))
    report.counts = Counter({str(k): int(v)
                             for k, v in doc.get("counts", {}).items()})
    report.overapprox_seeds = [int(s)
                               for s in doc.get("overapprox_seeds", [])]
    for entry in doc.get("disagreements", []):
        source = ""
        if entry.get("has_source"):
            try:
                source = program_for_seed(int(entry["seed"]), gen_config)
            except Exception:
                source = ""
        report.disagreements.append(SeedOutcome(
            seed=int(entry["seed"]),
            classification=str(entry["classification"]),
            verdict=OracleVerdict.from_dict(entry["verdict"]),
            source=source))
    return report


def run_fuzz(
    seeds: int,
    base_seed: int = 0,
    gen_config: GenConfig = GenConfig(),
    oracle_config: OracleConfig = OracleConfig(),
    budget: Optional[float] = None,
    jobs: int = 1,
    shrink: bool = False,
    corpus_dir: Optional[str] = None,
    shrink_budget: int = 250,
    progress=None,
    seed_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> FuzzReport:
    """Run the campaign over seeds ``base_seed .. base_seed + seeds - 1``.

    ``budget`` caps wall-clock seconds (checked between seeds; with
    ``jobs > 1`` the queued work is cancelled and only in-flight chunks
    finish).  ``jobs > 1`` fans seeds out to worker processes;
    ``corpus_dir`` implies ``shrink`` — each disagreement is ddmin-reduced
    and the ``.mini``/``.json`` pair persisted there.  ``progress`` is an
    optional callable receiving each :class:`SeedOutcome` as it completes
    (CLI verbose mode); it fires at most once per seed even across the
    broken-pool fallback.

    ``seed_timeout`` caps one seed's wall clock (timed-out seeds classify
    ``crash`` with a ``timeout`` detail and the campaign continues).
    ``checkpoint`` persists the tally after every completed seed;
    ``resume`` restores it and runs only the remaining seeds — because
    outcomes are seed-deterministic, a resumed campaign's final tally is
    identical to an uninterrupted one's."""
    if corpus_dir is not None:
        shrink = True

    def fresh_report() -> FuzzReport:
        if resume and checkpoint is not None and os.path.exists(checkpoint):
            return load_checkpoint(checkpoint, seeds, base_seed, gen_config)
        return FuzzReport(requested=seeds, base_seed=base_seed)

    report = fresh_report()
    start = time.monotonic()
    # Completed seeds are always a prefix of the range (serial order, and
    # pool.map yields in submission order), so resuming = skipping them.
    seed_list = list(range(base_seed + report.completed, base_seed + seeds))
    reported: set = set()

    def note(outcome: SeedOutcome) -> None:
        report.completed += 1
        report.counts[outcome.classification] += 1
        if outcome.classification in (STATIC_MISS, CRASH):
            report.disagreements.append(outcome)
        elif outcome.classification == STATIC_OVERAPPROX:
            report.overapprox_seeds.append(outcome.seed)
        if checkpoint is not None:
            write_checkpoint(checkpoint, report)
        if progress is not None and outcome.seed not in reported:
            reported.add(outcome.seed)
            progress(outcome)

    def out_of_budget() -> bool:
        return budget is not None and time.monotonic() - start >= budget

    if jobs > 1 and len(seed_list) > 1:
        chunk = max(1, min(8, len(seed_list) // (jobs * 4) or 1))
        pool = ProcessPoolExecutor(max_workers=jobs)
        try:
            payloads = [(s, gen_config, oracle_config, seed_timeout)
                        for s in seed_list]
            for seed, cls, verdict_dict, source in pool.map(
                    _fuzz_seed_task, payloads, chunksize=chunk):
                note(SeedOutcome(
                    seed=seed, classification=cls,
                    verdict=OracleVerdict.from_dict(verdict_dict),
                    source=source))
                if out_of_budget():
                    report.budget_hit = True
                    break
        except (BrokenProcessPool, OSError):
            # No usable pool on this platform: restart serially (seed
            # outcomes are deterministic, so a clean restart is cheapest;
            # `reported` keeps progress from firing twice per seed).  The
            # restart re-reads the checkpoint, which the pool attempt may
            # have advanced — continue from *its* tally, never re-counting.
            report = fresh_report()
            for seed in range(base_seed + report.completed,
                              base_seed + seeds):
                note(fuzz_one(seed, gen_config, oracle_config,
                              seed_timeout=seed_timeout))
                if out_of_budget():
                    report.budget_hit = True
                    break
        finally:
            # cancel_futures drops the queued chunks, so a budget break
            # returns after the in-flight work only instead of silently
            # running the whole campaign to completion.
            pool.shutdown(wait=False, cancel_futures=True)
    else:
        for seed in seed_list:
            note(fuzz_one(seed, gen_config, oracle_config,
                          seed_timeout=seed_timeout))
            if out_of_budget():
                report.budget_hit = True
                break

    # Deterministic ordering regardless of resume/fallback history.
    report.disagreements.sort(key=lambda o: o.seed)
    report.overapprox_seeds.sort()

    if shrink and report.disagreements:
        for outcome in report.disagreements:
            if not outcome.source:
                continue
            reduced = reduce_counterexample(
                outcome.source, outcome.verdict, oracle_config,
                budget=shrink_budget)
            outcome.source = reduced
            if corpus_dir is not None:
                name = f"seed{outcome.seed}_{outcome.classification}"
                paths = write_counterexample(
                    corpus_dir, name, reduced, outcome.verdict,
                    config=oracle_config, seed=outcome.seed,
                    note=f"reduced from {outcome.repro}")
                report.reduced.append((name, paths[0]))

    report.elapsed = time.monotonic() - start
    return report
