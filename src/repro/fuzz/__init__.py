"""repro.fuzz — differential fuzzing of the static/dynamic pipeline.

A standing adversarial workload: a seeded weighted-grammar generator
produces thousands of well-formed hybrid MPI+OpenMP minilang programs, a
differential oracle cross-checks every verdict source the system has
(intra- and interprocedural static analysis, deterministic raw /
instrumented scheduled runs, bounded DFS schedule exploration), and any
disagreement is ddmin-reduced into the checked-in ``tests/corpus/``
regression directory.  Surfaced as ``parcoach fuzz``.
"""

from .campaign import (
    CHECKPOINT_VERSION,
    MUTANT_STRIDE,
    QUEUE_LIMIT,
    WAVE_WIDTH,
    FuzzReport,
    SeedOutcome,
    fuzz_one,
    load_checkpoint,
    program_for_seed,
    run_fuzz,
    write_checkpoint,
)
from .coverage import (
    MUTANT_BASE,
    MUTANT_SLOTS,
    CoverageMap,
    CoverageSignature,
    decode_mutant,
    energy_for,
    finding_fingerprint_for,
    is_mutant_seed,
    mutant_seed,
    signature_for,
    source_features,
)
from .generator import (
    GenConfig,
    GeneratorError,
    build_program,
    generate_program,
    mutate,
)
from .oracle import (
    AGREE,
    CLASSIFICATIONS,
    CRASH,
    STATIC_MISS,
    STATIC_OVERAPPROX,
    OracleConfig,
    OracleVerdict,
    run_oracle,
)
from .reduce import (
    classification_predicate,
    load_corpus,
    reduce_counterexample,
    reduce_source,
    write_counterexample,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "MUTANT_BASE",
    "MUTANT_SLOTS",
    "MUTANT_STRIDE",
    "QUEUE_LIMIT",
    "WAVE_WIDTH",
    "CoverageMap",
    "CoverageSignature",
    "decode_mutant",
    "energy_for",
    "finding_fingerprint_for",
    "is_mutant_seed",
    "mutant_seed",
    "signature_for",
    "source_features",
    "FuzzReport",
    "SeedOutcome",
    "fuzz_one",
    "load_checkpoint",
    "program_for_seed",
    "run_fuzz",
    "write_checkpoint",
    "GenConfig",
    "GeneratorError",
    "build_program",
    "generate_program",
    "mutate",
    "AGREE",
    "CLASSIFICATIONS",
    "CRASH",
    "STATIC_MISS",
    "STATIC_OVERAPPROX",
    "OracleConfig",
    "OracleVerdict",
    "run_oracle",
    "classification_predicate",
    "load_corpus",
    "reduce_counterexample",
    "reduce_source",
    "write_counterexample",
]
