"""Seeded random minilang program generator (weighted grammar) + mutator.

``generate_program(seed)`` produces a *well-formed* hybrid MPI+OpenMP
program from a weighted grammar: rank-guarded collectives, ``omp
parallel``/``single``/``master``/``critical`` regions (respecting the
closely-nested legality rules the semantic checker enforces), bounded
loops with ``break``/``return``, and helper functions reached both through
statement calls and through *expression-level* calls (``x = helper(x);`` —
the sites only the interprocedural layer sees).

Determinism contract: the program text is a pure function of
``(seed, GenConfig)``.  All randomness flows through one
``random.Random(seed)``; no iteration over sets or ``id()``-keyed
containers happens anywhere, so two processes produce byte-identical
output for the same seed (``tests/test_fuzz.py`` enforces this
cross-process).

``mutate(source, seed)`` perturbs an existing program — flipping guard
operators and constants, swapping collective names within an
arity-compatible family, wrapping/unwrapping rank guards and
``single``/``master`` regions — and only returns mutants that still pass
the semantic checker (each candidate is re-checked; illegal mutants are
skipped deterministically).

Every generated program is re-parsed and semantically checked before it is
returned; a failure there is a *generator bug* and raises
:class:`GeneratorError` (the fuzz campaign classifies it as a crash).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..minilang import ast_nodes as A
from ..minilang.parser import parse_program
from ..minilang.pretty import pretty
from ..minilang.semantics import check_program
from ..util.probe import probe


class GeneratorError(Exception):
    """The generator produced an ill-formed program (a bug in the grammar)."""


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GenConfig:
    """Weighted-grammar knobs.  Weights are relative integers; a weight of 0
    disables the production entirely."""

    max_helpers: int = 2
    #: Statements per block: ``rng.randint(1, max_stmts)``.
    max_stmts: int = 4
    #: Nesting depth budget (guards, loops and regions all consume it).
    max_depth: int = 3
    #: Probability (percent) that main ends with ``MPI_Finalize()``.
    finalize_pct: int = 90

    # -- statement weights --------------------------------------------------
    w_assign: int = 6
    w_print: int = 2
    w_collective: int = 5
    w_guard: int = 4          # if/if-else, rank-dependent or not
    w_loop: int = 3           # bounded for loop
    w_parallel: int = 3       # omp parallel (only outside one)
    w_single: int = 3         # omp single   (parallel ctx, workshare legal)
    w_master: int = 2         # omp master   (parallel ctx, workshare legal)
    w_critical: int = 2       # omp critical (parallel ctx)
    w_barrier: int = 2        # omp barrier  (parallel ctx, workshare legal)
    w_call: int = 3           # helper(x); statement call
    w_expr_call: int = 2      # x = helper(x); expression-level call
    w_return: int = 1
    w_break: int = 2          # only inside loops


#: Collectives the generator emits, with a callback building the argument
#: list from the in-scope variable names (int x / float s, g are always
#: declared).  Restricted to array-free signatures so every generated call
#: is executable.
_COLLECTIVES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("MPI_Barrier", ()),
    ("MPI_Bcast", ("x", "0")),
    ("MPI_Allreduce", ("s", "g", '"sum"')),
    ("MPI_Reduce", ("s", "g", '"sum"', "0")),
    ("MPI_Scan", ("s", "g", '"sum"')),
)

#: Arity-compatible collective families ``mutate`` swaps within.
_SWAP_FAMILIES: Tuple[Tuple[str, ...], ...] = (
    ("MPI_Allreduce", "MPI_Scan"),
    ("MPI_Barrier",),
)

_GUARD_OPS = ("==", "!=", ">", "<", ">=", "<=")


def _lit(value: int) -> A.IntLit:
    return A.IntLit(value=value)


def _var(name: str) -> A.VarRef:
    return A.VarRef(name=name)


@dataclass
class _Ctx:
    """Grammar context threaded through the recursive descent."""

    depth: int
    in_parallel: bool = False
    #: Inside single/master/critical: barrier + worksharing are illegal.
    no_workshare: bool = False
    in_loop: bool = False
    #: Inside any OpenMP structured block: ``return`` may not branch out.
    in_omp: bool = False
    #: Names of helper functions callable from here (acyclic by index).
    callable_helpers: Tuple[str, ...] = ()
    ret_type: str = "void"


class _Gen:
    def __init__(self, rng: random.Random, config: GenConfig) -> None:
        self.rng = rng
        self.config = config
        self.loop_counter = 0

    # -- helpers -------------------------------------------------------------

    def _weighted(self, options: List[Tuple[str, int]]) -> str:
        total = sum(w for _, w in options)
        pick = self.rng.randrange(total)
        for name, weight in options:
            pick -= weight
            if pick < 0:
                return name
        return options[-1][0]

    def _guard_cond(self) -> A.Expr:
        """A branch condition — usually rank-dependent, sometimes not."""
        roll = self.rng.randrange(10)
        if roll < 5:
            op = self.rng.choice(_GUARD_OPS)
            return A.BinOp(op=op, left=_var("r"),
                           right=_lit(self.rng.randrange(3)))
        if roll < 7:
            return A.BinOp(op="==",
                           left=A.BinOp(op="%", left=_var("r"), right=_lit(2)),
                           right=_lit(self.rng.randrange(2)))
        if roll < 9:
            return A.BinOp(op=self.rng.choice((">", "<=")),
                           left=_var("x"), right=_lit(self.rng.randrange(4)))
        return A.BinOp(op=">", left=_var("n"), right=_lit(1))

    def _int_expr(self) -> A.Expr:
        """A small side-effect-free int expression (no division by variables,
        so no runtime arithmetic faults)."""
        roll = self.rng.randrange(8)
        if roll < 3:
            return _lit(self.rng.randrange(7))
        if roll < 5:
            return A.BinOp(op=self.rng.choice(("+", "-", "*")),
                           left=_var("x"), right=_lit(self.rng.randrange(1, 4)))
        if roll < 6:
            return A.BinOp(op="+", left=_var("r"), right=_lit(1))
        if roll < 7:
            return A.BinOp(op="%", left=_var("x"), right=_lit(self.rng.choice((2, 3))))
        return A.BinOp(op="/", left=_var("x"), right=_lit(2))

    def _collective_stmt(self) -> A.ExprStmt:
        name, argspec = _COLLECTIVES[self.rng.randrange(len(_COLLECTIVES))]
        args: List[A.Expr] = []
        for spec in argspec:
            if spec.startswith('"'):
                args.append(A.StringLit(value=spec.strip('"')))
            elif spec.isdigit():
                args.append(_lit(int(spec)))
            else:
                args.append(_var(spec))
        return A.ExprStmt(expr=A.Call(name=name, args=args))

    # -- statement grammar ----------------------------------------------------

    def _options(self, ctx: _Ctx) -> List[Tuple[str, int]]:
        c = self.config
        options = [("assign", c.w_assign), ("print", c.w_print),
                   ("collective", c.w_collective)]
        if ctx.depth > 0:
            options.append(("guard", c.w_guard))
            options.append(("loop", c.w_loop))
            if not ctx.in_parallel:
                options.append(("parallel", c.w_parallel))
            if ctx.in_parallel and not ctx.no_workshare:
                options.extend([("single", c.w_single),
                                ("master", c.w_master),
                                ("barrier", c.w_barrier)])
            if ctx.in_parallel:
                options.append(("critical", c.w_critical))
        if ctx.callable_helpers:
            options.extend([("call", c.w_call), ("expr_call", c.w_expr_call)])
        if not ctx.in_omp:
            options.append(("return", c.w_return))
        if ctx.in_loop:
            options.append(("break", c.w_break))
        return [(name, weight) for name, weight in options if weight > 0]

    def stmt(self, ctx: _Ctx) -> A.Stmt:
        kind = self._weighted(self._options(ctx))
        rng = self.rng
        # Coverage probe: which production fired, and in which grammar
        # context (the _Ctx descent state) — observation only, never part
        # of the rng stream, so generation stays a pure function of
        # (seed, GenConfig) whether or not a sink is installed.
        probe("gen:" + kind
              + (":par" if ctx.in_parallel else "")
              + (":ws" if ctx.no_workshare else "")
              + (":loop" if ctx.in_loop else ""))
        if kind == "assign":
            target = rng.choice(("x", "x", "s"))
            if target == "s":
                return A.Assign(target=_var("s"), op="=",
                                value=A.BinOp(op="+", left=_var("s"),
                                              right=A.FloatLit(value=1.0)))
            op = rng.choice(("=", "+=", "*="))
            return A.Assign(target=_var("x"), op=op, value=self._int_expr())
        if kind == "print":
            return A.ExprStmt(expr=A.Call(
                name="print",
                args=[A.StringLit(value=f"t{rng.randrange(10)}"), _var("x")]))
        if kind == "collective":
            return self._collective_stmt()
        if kind == "guard":
            inner = replace(ctx, depth=ctx.depth - 1)
            node = A.If(cond=self._guard_cond(), then_body=self.block(inner))
            if rng.randrange(3) == 0:
                node.else_body = self.block(inner)
            return node
        if kind == "loop":
            self.loop_counter += 1
            name = f"i{self.loop_counter}"
            inner = replace(ctx, depth=ctx.depth - 1, in_loop=True)
            return A.For(
                init=A.VarDecl(type_name="int", name=name, init=_lit(0)),
                cond=A.BinOp(op="<", left=_var(name),
                             right=_lit(rng.randrange(2, 4))),
                step=A.Assign(target=_var(name), op="+=", value=_lit(1)),
                body=self.block(inner),
            )
        if kind == "parallel":
            inner = replace(ctx, depth=ctx.depth - 1, in_parallel=True,
                            no_workshare=False, in_loop=False, in_omp=True)
            num = _lit(2) if rng.randrange(3) == 0 else None
            return A.OmpParallel(body=self.block(inner), num_threads=num)
        if kind == "single":
            inner = replace(ctx, depth=ctx.depth - 1, no_workshare=True,
                            in_loop=False, in_omp=True)
            return A.OmpSingle(body=self.block(inner),
                               nowait=rng.randrange(4) == 0)
        if kind == "master":
            inner = replace(ctx, depth=ctx.depth - 1, no_workshare=True,
                            in_loop=False, in_omp=True)
            return A.OmpMaster(body=self.block(inner))
        if kind == "critical":
            inner = replace(ctx, depth=ctx.depth - 1, no_workshare=True,
                            in_loop=False, in_omp=True)
            return A.OmpCritical(body=self.block(inner))
        if kind == "barrier":
            return A.OmpBarrier()
        if kind == "call":
            helper = rng.choice(ctx.callable_helpers)
            return A.ExprStmt(expr=A.Call(name=helper, args=[_var("x")]))
        if kind == "expr_call":
            helper = rng.choice(ctx.callable_helpers)
            return A.Assign(target=_var("x"), op="=",
                            value=A.Call(name=helper, args=[_var("x")]))
        if kind == "return":
            value = _var("x") if ctx.ret_type == "int" else None
            return A.Return(value=value)
        if kind == "break":
            return A.Break()
        raise AssertionError(f"unhandled production {kind}")

    def block(self, ctx: _Ctx) -> A.Block:
        count = self.rng.randint(1, self.config.max_stmts)
        return A.Block(stmts=[self.stmt(ctx) for _ in range(count)])

    # -- functions ------------------------------------------------------------

    def helper(self, name: str, callable_helpers: Tuple[str, ...]) -> A.FuncDef:
        """``int NAME(int a)`` with the generic body grammar; ``r``/``n``/
        ``x``/``s``/``g`` are locals so the body productions stay valid."""
        ctx = _Ctx(depth=self.config.max_depth - 1, ret_type="int",
                   callable_helpers=callable_helpers)
        prologue: List[A.Stmt] = [
            A.VarDecl(type_name="int", name="r",
                      init=A.Call(name="MPI_Comm_rank", args=[])),
            A.VarDecl(type_name="int", name="n",
                      init=A.Call(name="MPI_Comm_size", args=[])),
            A.VarDecl(type_name="int", name="x", init=_var("a")),
            A.VarDecl(type_name="float", name="s", init=A.FloatLit(value=1.0)),
            A.VarDecl(type_name="float", name="g", init=A.FloatLit(value=0.0)),
        ]
        body = A.Block(stmts=prologue + self.block(ctx).stmts
                       + [A.Return(value=_var("x"))])
        return A.FuncDef(ret_type="int", name=name,
                         params=[A.Param(type_name="int", name="a")],
                         body=body)

    def main(self, callable_helpers: Tuple[str, ...]) -> A.FuncDef:
        ctx = _Ctx(depth=self.config.max_depth,
                   callable_helpers=callable_helpers)
        level = self.rng.choice((0, 1, 2, 3, 3))  # bias toward MULTIPLE
        probe(f"gen:level:{level}")
        prologue: List[A.Stmt] = [
            A.ExprStmt(expr=A.Call(name="MPI_Init_thread",
                                   args=[_lit(level)])),
            A.VarDecl(type_name="int", name="r",
                      init=A.Call(name="MPI_Comm_rank", args=[])),
            A.VarDecl(type_name="int", name="n",
                      init=A.Call(name="MPI_Comm_size", args=[])),
            A.VarDecl(type_name="int", name="x",
                      init=_lit(self.rng.randrange(5))),
            A.VarDecl(type_name="float", name="s", init=A.FloatLit(value=1.0)),
            A.VarDecl(type_name="float", name="g", init=A.FloatLit(value=0.0)),
        ]
        stmts = prologue + self.block(ctx).stmts
        if self.rng.randrange(100) < self.config.finalize_pct:
            stmts.append(A.ExprStmt(expr=A.Call(name="MPI_Finalize", args=[])))
        return A.FuncDef(ret_type="void", name="main", body=A.Block(stmts=stmts))


def build_program(seed: int, config: GenConfig = GenConfig()) -> A.Program:
    """The generated AST for ``seed`` (before pretty-printing)."""
    rng = random.Random(seed)
    gen = _Gen(rng, config)
    n_helpers = rng.randint(0, config.max_helpers)
    probe(f"gen:helpers:{n_helpers}")
    names = [f"helper{i}" for i in range(n_helpers)]
    helpers: List[A.FuncDef] = []
    # helper i may call helpers i+1.. — acyclic, so no unbounded recursion.
    for i, name in enumerate(names):
        helpers.append(gen.helper(name, tuple(names[i + 1:])))
    funcs = helpers + [gen.main(tuple(names))]
    return A.Program(funcs=funcs, filename=f"<fuzz seed={seed}>")


def generate_program(seed: int, config: GenConfig = GenConfig()) -> str:
    """Deterministic well-formed program text for ``seed``.

    Raises :class:`GeneratorError` when the emitted text does not re-parse
    and semantically check cleanly (a grammar bug, not a fuzz finding)."""
    source = pretty(build_program(seed, config))
    _well_formed_or_raise(source, f"seed {seed}")
    return source


def _well_formed_or_raise(source: str, what: str) -> None:
    try:
        program = parse_program(source, what)
    except Exception as exc:  # noqa: BLE001 - reported as a generator bug
        raise GeneratorError(f"{what}: generated text does not parse: {exc}")
    errors = [i for i in check_program(program) if i.severity == "error"]
    if errors:
        raise GeneratorError(f"{what}: generated program is ill-formed: "
                             + "; ".join(str(e) for e in errors))


def _is_well_formed(source: str) -> bool:
    try:
        _well_formed_or_raise(source, "<mutant>")
    except GeneratorError:
        return False
    return True


# ---------------------------------------------------------------------------
# Mutation
# ---------------------------------------------------------------------------


def _mutation_sites(program: A.Program) -> List[Tuple[str, A.Node]]:
    """Deterministic (pre-order) list of perturbation opportunities."""
    sites: List[Tuple[str, A.Node]] = []
    for node in program.walk():
        if isinstance(node, A.If) and isinstance(node.cond, A.BinOp):
            sites.append(("flip-guard-op", node))
            if isinstance(node.cond.right, A.IntLit):
                sites.append(("bump-guard-const", node))
        if isinstance(node, A.ExprStmt) and isinstance(node.expr, A.Call):
            for family in _SWAP_FAMILIES:
                if node.expr.name in family and len(family) > 1:
                    sites.append(("swap-collective", node))
            if node.expr.name.startswith("MPI_") or node.expr.name.startswith("helper"):
                sites.append(("wrap-rank-guard", node))
        if isinstance(node, A.Block):
            for child in node.stmts:
                if isinstance(child, A.If):
                    sites.append(("unwrap-guard", node))
                    break
        if isinstance(node, (A.OmpSingle, A.OmpMaster)):
            sites.append(("toggle-region", node))
    return sites


def _apply_mutation(kind: str, node: A.Node, rng: random.Random,
                    pending: List[Tuple[A.Stmt, A.Stmt]]) -> None:
    """Apply one mutation in place.  Mutations that must *replace* the node
    (rather than edit it) append an ``(old, new)`` pair to ``pending``; the
    caller splices them via :func:`_splice`."""
    if kind == "flip-guard-op":
        cond = node.cond  # type: ignore[attr-defined]
        others = [op for op in _GUARD_OPS if op != cond.op]
        cond.op = rng.choice(others)
    elif kind == "bump-guard-const":
        lit = node.cond.right  # type: ignore[attr-defined]
        lit.value = (lit.value + rng.choice((1, -1))) % 3
    elif kind == "swap-collective":
        call = node.expr  # type: ignore[attr-defined]
        for family in _SWAP_FAMILIES:
            if call.name in family and len(family) > 1:
                call.name = rng.choice([n for n in family if n != call.name])
                return
    elif kind == "wrap-rank-guard":
        guard = A.If(
            cond=A.BinOp(op=rng.choice(("==", "!=")), left=A.VarRef(name="r"),
                         right=A.IntLit(value=rng.randrange(2))),
            then_body=A.Block(stmts=[node]),  # type: ignore[list-item]
        )
        pending.append((node, guard))
    elif kind == "unwrap-guard":
        block = node
        for i, child in enumerate(block.stmts):  # type: ignore[attr-defined]
            if isinstance(child, A.If):
                repl = list(child.then_body.stmts)
                if child.else_body is not None:
                    repl += list(child.else_body.stmts)
                block.stmts[i:i + 1] = repl  # type: ignore[attr-defined]
                return
    elif kind == "toggle-region":
        # single <-> master (changes the winner semantics + required level).
        body = node.body  # type: ignore[attr-defined]
        swapped: A.Stmt = (A.OmpMaster(body=body)
                           if isinstance(node, A.OmpSingle)
                           else A.OmpSingle(body=body))
        pending.append((node, swapped))
    else:
        raise AssertionError(f"unhandled mutation {kind}")


def _splice(program: A.Program,
            pending: List[Tuple[A.Stmt, A.Stmt]]) -> None:
    while pending:
        old, new = pending.pop()
        _replace_first(program, old, new)


def _replace_first(program: A.Program, old: A.Stmt, new: A.Stmt) -> None:
    """Swap ``old`` for ``new`` in its parent block (first occurrence only —
    ``new`` may itself contain ``old``, e.g. wrap-rank-guard)."""
    for node in program.walk():
        if isinstance(node, A.Block):
            for i, child in enumerate(node.stmts):
                if child is old:
                    node.stmts[i] = new
                    return


def mutate(source: str, seed: int, rounds: int = 1) -> str:
    """Perturb ``source`` deterministically: pick one mutation site by seed,
    apply it, and return the mutant *iff* it is still well-formed — illegal
    mutants fall through to the next site (in a seed-rotated deterministic
    order).  Returns ``source`` unchanged when no legal mutation exists.

    ``rounds`` is the coverage fuzzer's **energy**: each extra round applies
    one more mutation to the previous round's output (with a derived rng
    seed), compounding perturbations the single-step mutator cannot reach.
    ``rounds=1`` is byte-identical to the historical single-round mutator —
    the checked-in corpus and the every-``MUTANT_STRIDE``-th-seed contract
    depend on that."""
    out = source
    for round_no in range(max(1, rounds)):
        step_seed = seed if round_no == 0 else seed * 1_000_003 + round_no
        nxt = _mutate_once(out, step_seed)
        if nxt == out:
            break
        out = nxt
    return out


def _mutate_once(source: str, seed: int) -> str:
    rng = random.Random(seed)
    try:
        base = parse_program(source, "<mutate>")
    except Exception:  # noqa: BLE001 - not a valid subject
        return source
    sites = _mutation_sites(base)
    if not sites:
        return source
    start = rng.randrange(len(sites))
    for offset in range(len(sites)):
        # Re-parse per attempt: mutations are applied in place.
        program = parse_program(source, "<mutate>")
        attempt_rng = random.Random(seed * 1_000_003 + offset)
        fresh = _mutation_sites(program)
        if len(fresh) != len(sites):  # defensive; walks are deterministic
            return source
        kind, node = fresh[(start + offset) % len(fresh)]
        pending: List[Tuple[A.Stmt, A.Stmt]] = []
        _apply_mutation(kind, node, attempt_rng, pending)
        _splice(program, pending)
        mutant = pretty(program)
        if mutant != source and _is_well_formed(mutant):
            probe("mut:" + kind)
            return mutant
    return source
